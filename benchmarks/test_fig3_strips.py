"""Experiment F3 -- Figure 3: strip double buffering (ablation D2).

The design decision: the input image is transferred in 16-line strips to
alternating ZBT blocks, so the strip in block A is processed while the
next strip streams into block B.  The ablation compares the overlapped
cycle-level run against the serial schedule (transfer everything, then
process, then read back).
"""

import pytest

from repro.addresslib import INTRA_GRAD
from repro.core import AddressEngine, intra_config
from repro.image import ImageFormat, noise_frame
from repro.perf import format_table

FMT = ImageFormat("F3", 96, 96)


def serial_schedule_cycles(run):
    """The no-overlap schedule: input transfer + full processing at the
    pipeline rate + result readback, end to end."""
    input_cycles = run.input_complete_cycle
    processing = -(-FMT.pixels // 2)     # 2 pixel-cycles per clock
    readback = 2 * FMT.pixels
    return input_cycles + processing + readback


def test_fig3_double_buffering_overlap(benchmark, save_report):
    frame = noise_frame(FMT, seed=21)
    engine = AddressEngine()
    config = intra_config(INTRA_GRAD, FMT)

    run = benchmark.pedantic(lambda: engine.run_call(config, frame),
                             rounds=1, iterations=1)
    overlapped = run.cycles
    serial = serial_schedule_cycles(run)
    saving = 1 - overlapped / serial

    # Overlap must hide all of the processing epoch.
    assert overlapped < serial
    assert saving > 0.1

    save_report("fig3_strips", format_table(
        ["schedule", "cycles", "vs serial"],
        [("serial (transfer -> process -> read back)", serial, "1.00"),
         ("double-buffered strips (measured)", overlapped,
          f"{overlapped / serial:.2f}"),
         ("hidden processing", serial - overlapped,
          f"-{saving * 100:.0f}%")],
        title="Figure 3 -- strip double buffering hides the processing "
              "epoch (ablation D2)"))


def test_fig3_processing_starts_before_input_completes(benchmark,
                                                        save_report):
    """'It is possible to start processing although the input image is
    not completely stored in the memory.'"""
    frame = noise_frame(FMT, seed=22)
    run = benchmark.pedantic(
        lambda: AddressEngine().run_call(intra_config(INTRA_GRAD, FMT),
                                         frame),
        rounds=1, iterations=1)
    retired_total = run.plc_stats.retired_pixel_cycles
    # With ~half the cycles spent on input, most pixels retire during it.
    assert run.input_complete_cycle < run.cycles
    assert retired_total == FMT.pixels
    save_report("fig3_early_start", format_table(
        ["event", "cycle"],
        [("input transfer complete", run.input_complete_cycle),
         ("call complete", run.completion_cycle),
         ("total cycles", run.cycles)],
        title="Figure 3 -- processing overlaps the input transfer"))
