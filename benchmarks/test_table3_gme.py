"""Experiment T3 -- Table 3: GME wall times and AddressEngine call counts.

Runs the MPEG-7 GME workload over the four synthetic stand-in sequences
and prices the identical call log on both platforms (software Pentium M
vs AddressEngine behind a Pentium 4 host).  Sequences run at
``REPRO_TABLE3_SCALE`` of their full length (default 5 %) and the rows
are extrapolated linearly; set the variable to 1.0 to run full length.

What must hold (the paper's shape):

* the FPGA platform wins on every sequence, by a factor in the 3.5-6.5
  band around the paper's "average factor of 5";
* intra call counts land within 2 % of the paper (they are structural);
* inter call counts land within 30 % (they depend on convergence);
* Pisa is the long sequence on both platforms.
"""

import pytest

from repro.gme import PAPER_TABLE3, TABLE3_SEQUENCES, evaluate_sequence_dual
from repro.perf import format_seconds, format_table


@pytest.fixture(scope="module")
def table3_rows(table3_scale):
    return [evaluate_sequence_dual(spec, scale=table3_scale).extrapolated()
            for spec in TABLE3_SEQUENCES]


# module-scoped fixture needs the session-scoped scale; re-export it
@pytest.fixture(scope="module")
def table3_scale():
    import os
    return float(os.environ.get("REPRO_TABLE3_SCALE", "0.05"))


def test_table3_rows(table3_rows, save_report, benchmark, table3_scale):
    lines = []
    speedups = []
    for row, paper in zip(table3_rows, PAPER_TABLE3):
        name, pm_paper, fpga_paper, intra_paper, inter_paper = paper
        assert row.name == name
        # Structural intra calls: tight.
        assert row.intra_calls == pytest.approx(intra_paper, rel=0.02)
        # Convergence-dependent inter calls: looser.
        assert row.inter_calls == pytest.approx(inter_paper, rel=0.30)
        # Times: same order and winner; factors within ~2x of the paper.
        assert row.fpga_seconds < row.pm_seconds
        assert row.pm_seconds == pytest.approx(pm_paper, rel=0.45)
        assert row.fpga_seconds == pytest.approx(fpga_paper, rel=0.45)
        speedups.append(row.speedup)
        lines.append((
            name,
            format_seconds(row.pm_seconds), format_seconds(pm_paper),
            format_seconds(row.fpga_seconds), format_seconds(fpga_paper),
            row.intra_calls, intra_paper,
            row.inter_calls, inter_paper,
            f"{row.speedup:.2f}", f"{pm_paper / fpga_paper:.2f}"))

    mean_speedup = sum(speedups) / len(speedups)
    # "our prototype achieves an average speedup factor of 5"
    assert 3.5 < mean_speedup < 6.5

    table = format_table(
        ["video", "PM", "PM paper", "FPGA", "FPGA paper",
         "intra", "intra paper", "inter", "inter paper",
         "speedup", "paper"],
        lines,
        title=(f"Table 3 -- GME on PM 1.6 GHz vs AddressEngine@66 MHz "
               f"(run at scale {table3_scale}, extrapolated to full "
               f"length)"))
    table += (f"\n\nAverage speedup: {mean_speedup:.2f} "
              f"(paper: 'an average factor of 5')")
    save_report("table3_gme", table)

    # Benchmark the per-pair evaluation cost on the shortest sequence.
    from repro.gme import SINGAPORE
    benchmark.pedantic(
        lambda: evaluate_sequence_dual(SINGAPORE, scale=0.01),
        rounds=1, iterations=1)


def test_table3_fpga_time_is_call_dominated(table3_rows, benchmark,
                                             save_report):
    """On the FPGA platform the per-call cost is roughly constant (the
    PCI transfer dominates), so times track call counts."""
    per_call = benchmark(
        lambda: [row.fpga_seconds / (row.intra_calls + row.inter_calls)
                 for row in table3_rows])
    spread = max(per_call) / min(per_call)
    assert spread < 1.15
    paper_per_call = [paper[2] / (paper[3] + paper[4])
                      for paper in PAPER_TABLE3]
    save_report("table3_per_call", format_table(
        ["video", "measured s/call", "paper s/call"],
        [(row.name, f"{m * 1000:.2f} ms", f"{p * 1000:.2f} ms")
         for row, m, p in zip(table3_rows, per_call, paper_per_call)],
        title="Table 3 -- FPGA per-call cost (PCI-bound, near constant)"))
