"""Experiment T3 -- Table 3: GME wall times and AddressEngine call counts.

Runs the MPEG-7 GME workload over the four synthetic stand-in sequences
and prices the identical call log on both platforms (software Pentium M
vs AddressEngine behind a Pentium 4 host).  Sequences run at
``REPRO_TABLE3_SCALE`` of their full length (default 25 %) and the rows
are extrapolated linearly; set the variable to 1.0 to run full length.

What must hold (the paper's shape):

* the FPGA platform wins on every sequence, by a factor in the 3.5-6.5
  band around the paper's "average factor of 5";
* intra call counts land within 2 % of the paper (they are structural);
* inter call counts land within 20 % (they depend on convergence);
* Pisa is the long sequence on both platforms.

The run also emits ``BENCH_table3.json`` at the repo root: per-sequence
wall times, speedups, and simulator throughput (cycles/sec) for both
the batched fast path and the per-cycle reference stepper, so the perf
trajectory is tracked across PRs.
"""

import json
import pathlib
import time

import pytest

from repro.gme import PAPER_TABLE3, TABLE3_SEQUENCES, evaluate_sequence_dual
from repro.perf import format_seconds, format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def table3_rows(table3_scale):
    return [evaluate_sequence_dual(spec, scale=table3_scale).extrapolated()
            for spec in TABLE3_SEQUENCES]


# module-scoped fixture needs the session-scoped scale; re-export it
@pytest.fixture(scope="module")
def table3_scale():
    import os
    return float(os.environ.get("REPRO_TABLE3_SCALE", "0.25"))


def test_table3_rows(table3_rows, save_report, benchmark, table3_scale):
    lines = []
    speedups = []
    for row, paper in zip(table3_rows, PAPER_TABLE3):
        name, pm_paper, fpga_paper, intra_paper, inter_paper = paper
        assert row.name == name
        # Structural intra calls: tight.
        assert row.intra_calls == pytest.approx(intra_paper, rel=0.02)
        # Convergence-dependent inter calls: looser than the structural
        # intra count, but the 25 % default run length keeps the linear
        # extrapolation within 20 %.
        assert row.inter_calls == pytest.approx(inter_paper, rel=0.20)
        # Times: same order and winner; factors within ~2x of the paper.
        assert row.fpga_seconds < row.pm_seconds
        assert row.pm_seconds == pytest.approx(pm_paper, rel=0.45)
        assert row.fpga_seconds == pytest.approx(fpga_paper, rel=0.45)
        speedups.append(row.speedup)
        lines.append((
            name,
            format_seconds(row.pm_seconds), format_seconds(pm_paper),
            format_seconds(row.fpga_seconds), format_seconds(fpga_paper),
            row.intra_calls, intra_paper,
            row.inter_calls, inter_paper,
            f"{row.speedup:.2f}", f"{pm_paper / fpga_paper:.2f}"))

    mean_speedup = sum(speedups) / len(speedups)
    # "our prototype achieves an average speedup factor of 5"
    assert 3.5 < mean_speedup < 6.5

    table = format_table(
        ["video", "PM", "PM paper", "FPGA", "FPGA paper",
         "intra", "intra paper", "inter", "inter paper",
         "speedup", "paper"],
        lines,
        title=(f"Table 3 -- GME on PM 1.6 GHz vs AddressEngine@66 MHz "
               f"(run at scale {table3_scale}, extrapolated to full "
               f"length)"))
    table += (f"\n\nAverage speedup: {mean_speedup:.2f} "
              f"(paper: 'an average factor of 5')")
    save_report("table3_gme", table)

    # Benchmark the per-pair evaluation cost on the shortest sequence.
    from repro.gme import SINGAPORE
    benchmark.pedantic(
        lambda: evaluate_sequence_dual(SINGAPORE, scale=0.01),
        rounds=1, iterations=1)


def test_fastpath_speedup_writes_bench_json(table3_rows, table3_scale,
                                            save_report):
    """The batched fast path must make a CIF inter ``run_call`` at
    least 20x faster wall-clock than the per-cycle reference stepper,
    cycle counts identical.  Results (plus the Table 3 rows) land in
    ``BENCH_table3.json`` at the repo root."""
    from repro.addresslib import INTER_ABSDIFF
    from repro.core import AddressEngine, inter_config
    from repro.image import CIF, noise_frame

    config = inter_config(INTER_ABSDIFF, CIF, reduce_to_scalar=True)
    a = noise_frame(CIF, seed=101)
    b = noise_frame(CIF, seed=102)
    engine = AddressEngine()

    t0 = time.perf_counter()
    fast = engine.run_call(config, a, b, fast_path=True)
    fast_seconds = time.perf_counter() - t0
    assert fast.fast_path_used

    t0 = time.perf_counter()
    slow = engine.run_call(config, a, b, fast_path=False)
    slow_seconds = time.perf_counter() - t0
    assert not slow.fast_path_used

    assert fast.cycles == slow.cycles
    wall_speedup = slow_seconds / fast_seconds
    assert wall_speedup >= 20.0

    payload = {
        "scale": table3_scale,
        "sequences": [
            {
                "name": row.name,
                "pm_seconds": row.pm_seconds,
                "fpga_seconds": row.fpga_seconds,
                "speedup": row.speedup,
                "intra_calls": row.intra_calls,
                "inter_calls": row.inter_calls,
                "fpga_serial_call_seconds": row.fpga_serial_call_seconds,
                "fpga_overlapped_call_seconds":
                    row.fpga_overlapped_call_seconds,
                "overlap_efficiency": row.overlap_efficiency,
            }
            for row in table3_rows
        ],
        "mean_speedup": (sum(row.speedup for row in table3_rows)
                         / len(table3_rows)),
        "fastpath_microbench": {
            "format": "CIF",
            "op": "inter_absdiff+reduce",
            "cycles": slow.cycles,
            "fastpath_wall_seconds": fast_seconds,
            "percycle_wall_seconds": slow_seconds,
            "wall_speedup": wall_speedup,
            "fastpath_cycles_per_second": slow.cycles / fast_seconds,
            "percycle_cycles_per_second": slow.cycles / slow_seconds,
        },
    }
    (REPO_ROOT / "BENCH_table3.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("fastpath_microbench", format_table(
        ["stepper", "wall", "cycles/sec"],
        [("fast path", format_seconds(fast_seconds),
          f"{slow.cycles / fast_seconds:,.0f}"),
         ("per-cycle", format_seconds(slow_seconds),
          f"{slow.cycles / slow_seconds:,.0f}")],
        title=(f"CIF inter run_call -- {slow.cycles} cycles, "
               f"fast path {wall_speedup:.1f}x faster")))


def test_table3_overlap_model(table3_rows, save_report):
    """The block_A/block_B double-buffer model: per sequence, the
    overlapped board time never exceeds the serial (sum) model, and the
    hidden fraction is a sane efficiency in [0, 1)."""
    lines = []
    for row in table3_rows:
        assert row.fpga_serial_call_seconds > 0
        assert (row.fpga_overlapped_call_seconds
                <= row.fpga_serial_call_seconds + 1e-12)
        assert 0.0 <= row.overlap_efficiency < 1.0
        lines.append((
            row.name,
            format_seconds(row.fpga_serial_call_seconds),
            format_seconds(row.fpga_overlapped_call_seconds),
            f"{row.overlap_efficiency * 100:.1f}%"))
    save_report("table3_overlap", format_table(
        ["video", "serial (sum) model", "double-buffered model",
         "hidden"],
        lines,
        title=("Table 3 board time under the strip-pipeline overlap "
               "model (section 4.1 block_A/block_B)")))


def test_table3_fpga_time_is_call_dominated(table3_rows, benchmark,
                                             save_report):
    """On the FPGA platform the per-call cost is roughly constant (the
    PCI transfer dominates), so times track call counts."""
    per_call = benchmark(
        lambda: [row.fpga_seconds / (row.intra_calls + row.inter_calls)
                 for row in table3_rows])
    spread = max(per_call) / min(per_call)
    assert spread < 1.15
    paper_per_call = [paper[2] / (paper[3] + paper[4])
                      for paper in PAPER_TABLE3]
    save_report("table3_per_call", format_table(
        ["video", "measured s/call", "paper s/call"],
        [(row.name, f"{m * 1000:.2f} ms", f"{p * 1000:.2f} ms")
         for row, m, p in zip(table3_rows, per_call, paper_per_call)],
        title="Table 3 -- FPGA per-call cost (PCI-bound, near constant)"))
