"""Experiment COUNTED -- strip-vectorized counted executor speedup.

The counted executor is the reproduction's Table 2 measurement
instrument: a genuine per-pixel serpentine walk whose ``AccessCounter``
tallies become the software column.  The strip-vectorized path computes
the same planes with bulk numpy strips and credits the counters from
the closed-form serpentine read law, so it must be *bit-identical* in
outputs and tallies while removing the per-pixel Python overhead that
capped counted experiments at QCIF.

What must hold:

* scalar and strip runs agree on output planes and access totals at
  both QCIF and CIF (spot-checked here; the exhaustive corpus lives in
  ``tests/addresslib/test_strip_executor.py``);
* the strip path is at least 10x faster than the scalar walk on the
  QCIF intra call -- the headline win, machine-independent in practice
  because both sides run in the same interpreter;
* inter calls also speed up (reported, not gated: they were never the
  bottleneck).

Results land in ``BENCH_counted.json`` at the repo root using the
shared ``base_report_dict`` schema.
"""

import json
import pathlib
import time

import numpy as np

from repro.addresslib import (ChannelSet, INTRA_HOMOGENEITY, INTER_ABSDIFF,
                              SoftwareCostModel, counted_executor,
                              diff_access_snapshots)
from repro.image import (ALL_CHANNELS, CIF, PlanarFrame420, QCIF,
                         noise_frame)
from repro.perf import base_report_dict, format_seconds, format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The strip path must beat the scalar walk by at least this factor on
#: the QCIF intra call (measured ~100x; 10x leaves slack for noisy CI).
TARGET_SPEEDUP = 10.0


def _timed_intra(kind, fmt, frame):
    src = PlanarFrame420.from_frame(frame)
    dst = PlanarFrame420(fmt, src.counter)
    t0 = time.perf_counter()
    counted_executor(kind).intra(INTRA_HOMOGENEITY, src, dst,
                                 ChannelSet.YUV)
    return dst, src.counter.snapshot(), time.perf_counter() - t0


def _timed_inter(kind, fmt, frame_a, frame_b):
    src_a = PlanarFrame420.from_frame(frame_a)
    src_b = PlanarFrame420.from_frame(frame_b, src_a.counter)
    dst = PlanarFrame420(fmt, src_a.counter)
    t0 = time.perf_counter()
    counted_executor(kind).inter(INTER_ABSDIFF, src_a, src_b, dst,
                                 ChannelSet.YUV)
    return dst, src_a.counter.snapshot(), time.perf_counter() - t0


def _assert_equivalent(label, scalar, strip):
    scalar_out, scalar_counts, _ = scalar
    strip_out, strip_counts, _ = strip
    assert scalar_counts == strip_counts, label
    for channel in ALL_CHANNELS:
        assert np.array_equal(strip_out.plane(channel),
                              scalar_out.plane(channel)), label


def test_counted_strip_speedup(save_report):
    rows = []
    results = {}
    for fmt in (QCIF, CIF):
        frame = noise_frame(fmt, seed=11)
        frame_b = noise_frame(fmt, seed=12)

        scalar = _timed_intra("scalar", fmt, frame)
        strip = _timed_intra("strip", fmt, frame)
        _assert_equivalent(f"intra {fmt.name}", scalar, strip)
        intra_speedup = scalar[2] / strip[2]

        scalar_inter = _timed_inter("scalar", fmt, frame, frame_b)
        strip_inter = _timed_inter("strip", fmt, frame, frame_b)
        _assert_equivalent(f"inter {fmt.name}", scalar_inter, strip_inter)
        inter_speedup = scalar_inter[2] / strip_inter[2]

        # The tallies themselves validate against the analytic model.
        expected = SoftwareCostModel().intra_counts_exact(
            INTRA_HOMOGENEITY, fmt, ChannelSet.YUV)
        assert not diff_access_snapshots(expected, strip[1])

        results[fmt.name] = {
            "intra": {"scalar_seconds": scalar[2],
                      "strip_seconds": strip[2],
                      "speedup": intra_speedup},
            "inter": {"scalar_seconds": scalar_inter[2],
                      "strip_seconds": strip_inter[2],
                      "speedup": inter_speedup},
            "accesses_total": strip[1]["total"],
        }
        rows.append((fmt.name, "intra CON_8 YUV",
                     format_seconds(scalar[2]), format_seconds(strip[2]),
                     f"{intra_speedup:.1f}x"))
        rows.append((fmt.name, "inter YUV",
                     format_seconds(scalar_inter[2]),
                     format_seconds(strip_inter[2]),
                     f"{inter_speedup:.1f}x"))

    qcif_speedup = results[QCIF.name]["intra"]["speedup"]
    payload = base_report_dict(
        "counted_speedup",
        calls=len(results) * 4,
        cycles=0.0,
        formats=results,
        gate={"target_speedup": TARGET_SPEEDUP,
              "measured_qcif_intra": qcif_speedup,
              "passed": qcif_speedup >= TARGET_SPEEDUP},
        bit_exact=True)
    (REPO_ROOT / "BENCH_counted.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("counted_speedup", format_table(
        ["format", "call", "scalar walk", "strip path", "speedup"],
        rows, title=("Counted executor -- per-pixel walk vs strip "
                     "vectorization (bit-identical outputs and access "
                     "tallies)")))

    assert qcif_speedup >= TARGET_SPEEDUP, (
        f"strip path only {qcif_speedup:.1f}x over the scalar walk on "
        f"QCIF intra (target {TARGET_SPEEDUP}x)")
