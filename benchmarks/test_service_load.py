"""Experiment SERVICE -- open-loop load sweep through the front end.

A seeded Poisson arrival trace (:mod:`repro.load`) offers QCIF gradient
calls to an :class:`~repro.service.EngineService` at three fractions of
the modeled engine capacity (underload, near-saturation, overload),
replayed through the blessed serial pump
(:func:`repro.load.replay_serial`).  Everything is measured on the
modeled clock, so the sweep is deterministic and machine-independent.

What must hold:

* no request is shed at 0.5x or 0.9x capacity;
* at 1.5x capacity admission control sheds (reject rate > 0) instead of
  letting the queue grow without bound, and the served throughput stays
  pinned at the modeled capacity;
* modeled p95 latency is monotone in offered load.

Results land in ``BENCH_service.json`` at the repo root.
"""

import json
import pathlib

from repro.api import AdmissionPolicy, EngineService, ServicePolicy
from repro.load import (ArrivalTrace, CallFactory, TenantSpec, TraceSpec,
                        replay_serial)
from repro.perf import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REQUESTS = 120
LOAD_LEVELS = (0.5, 0.9, 1.5)
#: Backlog budget for INTERACTIVE, in units of one call's modeled cost
#: (STANDARD requests, which the sweep submits, get 0.75 of it).
BUDGET_CALLS = 20.0
SEED = 0x5E2F


def _base_spec(rate_per_s):
    """QCIF intra-gradient single-tenant trace (the PR-5 sweep mix)."""
    return TraceSpec(
        requests=REQUESTS, rate_per_s=rate_per_s,
        tenants=(TenantSpec("sweep"),), seed=SEED, width=176,
        height=144, frame_pool=16, inter_fraction=0.0,
        intra_ops=("intra_grad",))


def _run_level(base, load, call_cost):
    """Serve the trace re-timed to ``load`` x capacity."""
    service = EngineService(
        policy=ServicePolicy(
            queue_depth=256,
            admission=AdmissionPolicy(
                deadline_budget_seconds=BUDGET_CALLS * call_cost)))
    result = replay_serial(base.scaled(load), service,
                           load_factor=load)
    report = result.service
    return {
        "load": load,
        "offered_rate_per_s": result.offered_rate_per_s,
        "submitted": report.submitted,
        "completed": result.completed,
        "rejected": result.rejected,
        "reject_rate": report.reject_rate,
        "throughput_per_s": result.goodput_per_s,
        "p50_ms": result.modeled_latency.p50 * 1e3,
        "p95_ms": result.modeled_latency.p95 * 1e3,
        "queue_high_water": report.queue_high_water,
        "waves": report.waves,
        "coalesced_requests": report.coalesced_requests,
    }


def test_service_load_sweep(save_report):
    probe = EngineService()
    calibration = ArrivalTrace.synthesize(_base_spec(1.0))
    factory = CallFactory(calibration)
    call_cost = probe.admission.price(
        factory.call(calibration.entries[0]))[1]
    capacity = 1.0 / call_cost
    base = ArrivalTrace.synthesize(_base_spec(capacity))

    levels = [_run_level(base, load, call_cost)
              for load in LOAD_LEVELS]
    under, near, over = levels

    # Everything offered below capacity is served...
    assert under["rejected"] == 0 and near["rejected"] == 0
    assert under["completed"] == near["completed"] == REQUESTS
    # ...while overload is shed at admission, never queued to rot.
    assert over["rejected"] > 0
    assert over["completed"] + over["rejected"] == REQUESTS
    # Served throughput at overload is pinned at the modeled capacity.
    assert over["throughput_per_s"] <= capacity * 1.01
    assert over["throughput_per_s"] >= capacity * 0.80
    # Modeled latency degrades monotonically with offered load.
    assert (under["p95_ms"] <= near["p95_ms"] <= over["p95_ms"])

    payload = {
        "requests_per_level": REQUESTS,
        "mean_call_cost_ms": call_cost * 1e3,
        "capacity_calls_per_s": capacity,
        "budget_calls": BUDGET_CALLS,
        "seed": SEED,
        "levels": levels,
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("service_load", format_table(
        ["load", "offered/s", "served", "shed", "reject", "p50", "p95"],
        [(f"{lvl['load']:.1f}x", f"{lvl['offered_rate_per_s']:.1f}",
          lvl["completed"], lvl["rejected"],
          f"{100 * lvl['reject_rate']:.1f}%",
          f"{lvl['p50_ms']:.2f} ms", f"{lvl['p95_ms']:.2f} ms")
         for lvl in levels],
        title=(f"Open-loop service sweep, {REQUESTS} requests/level, "
               f"modeled capacity {capacity:.1f} calls/s "
               f"(call cost {call_cost * 1e3:.2f} ms)")))
