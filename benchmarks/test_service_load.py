"""Experiment SERVICE -- open-loop load sweep through the front end.

A seeded Poisson arrival process offers QCIF gradient calls to an
:class:`~repro.service.EngineService` at three fractions of the modeled
engine capacity (underload, near-saturation, overload).  Everything is
measured on the modeled clock, so the sweep is deterministic and
machine-independent.

What must hold:

* no request is shed at 0.5x or 0.9x capacity;
* at 1.5x capacity admission control sheds (reject rate > 0) instead of
  letting the queue grow without bound, and the served throughput stays
  pinned at the modeled capacity;
* modeled p95 latency is monotone in offered load.

Results land in ``BENCH_service.json`` at the repo root.
"""

import json
import pathlib
import random

from repro.addresslib import BatchCall, INTRA_GRAD
from repro.api import AdmissionPolicy, EngineService, SubmitOptions
from repro.image import ImageFormat, noise_frame
from repro.perf import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

QCIF = ImageFormat("QCIF", 176, 144)

REQUESTS = 120
LOAD_LEVELS = (0.5, 0.9, 1.5)
#: Backlog budget for INTERACTIVE, in units of one call's modeled cost
#: (STANDARD requests, which the sweep submits, get 0.75 of it).
BUDGET_CALLS = 20.0
SEED = 0x5E2F


def _sweep_call(rng):
    return BatchCall.intra(INTRA_GRAD,
                           noise_frame(QCIF, seed=rng.randrange(16)))


def _run_level(load, call_cost):
    """Serve REQUESTS Poisson arrivals at ``load`` x capacity."""
    rng = random.Random(SEED)
    service = EngineService(
        queue_depth=256,
        policy=AdmissionPolicy(
            deadline_budget_seconds=BUDGET_CALLS * call_cost))
    rate = load / call_cost  # capacity is 1/cost calls per second
    arrival = 0.0
    for _ in range(REQUESTS):
        arrival += rng.expovariate(rate)
        service.run_until(arrival)
        service.submit(_sweep_call(rng),
                       SubmitOptions(arrival_seconds=arrival))
    report = service.drain()
    return {
        "load": load,
        "offered_rate_per_s": rate,
        "submitted": report.submitted,
        "completed": report.completed,
        "rejected": report.rejected,
        "reject_rate": report.reject_rate,
        "throughput_per_s": report.completed / report.clock_seconds,
        "p50_ms": report.latency.p50 * 1e3,
        "p95_ms": report.latency.p95 * 1e3,
        "queue_high_water": report.queue_high_water,
        "waves": report.waves,
        "coalesced_requests": report.coalesced_requests,
    }


def test_service_load_sweep(save_report):
    probe = EngineService()
    call_cost = probe.admission.price(
        _sweep_call(random.Random(SEED)))[1]
    capacity = 1.0 / call_cost

    levels = [_run_level(load, call_cost) for load in LOAD_LEVELS]
    under, near, over = levels

    # Everything offered below capacity is served...
    assert under["rejected"] == 0 and near["rejected"] == 0
    assert under["completed"] == near["completed"] == REQUESTS
    # ...while overload is shed at admission, never queued to rot.
    assert over["rejected"] > 0
    assert over["completed"] + over["rejected"] == REQUESTS
    # Served throughput at overload is pinned at the modeled capacity.
    assert over["throughput_per_s"] <= capacity * 1.01
    assert over["throughput_per_s"] >= capacity * 0.80
    # Modeled latency degrades monotonically with offered load.
    assert (under["p95_ms"] <= near["p95_ms"] <= over["p95_ms"])

    payload = {
        "requests_per_level": REQUESTS,
        "mean_call_cost_ms": call_cost * 1e3,
        "capacity_calls_per_s": capacity,
        "budget_calls": BUDGET_CALLS,
        "seed": SEED,
        "levels": levels,
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("service_load", format_table(
        ["load", "offered/s", "served", "shed", "reject", "p50", "p95"],
        [(f"{lvl['load']:.1f}x", f"{lvl['offered_rate_per_s']:.1f}",
          lvl["completed"], lvl["rejected"],
          f"{100 * lvl['reject_rate']:.1f}%",
          f"{lvl['p50_ms']:.2f} ms", f"{lvl['p95_ms']:.2f} ms")
         for lvl in levels],
        title=(f"Open-loop service sweep, {REQUESTS} requests/level, "
               f"modeled capacity {capacity:.1f} calls/s "
               f"(call cost {call_cost * 1e3:.2f} ms)")))
