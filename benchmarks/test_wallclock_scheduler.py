"""Experiment SCHED -- wall-clock sharding of a multi-call GME slice.

A slice of the Table 3 GME workload expressed as one batch of
independent AddressLib calls (per-frame Sobel/box/homogeneity intra
work plus inter SAD reduces between consecutive frames) runs twice:
serially, and sharded across a :class:`CallScheduler` worker pool with
zero-copy shared-memory transport.

What must hold:

* the scheduled results are *bit-exact* with serial execution;
* the modelled dispatch makespan across >= 4 virtual engine workers
  under the block_A/block_B overlap model is at least 2x better than
  the serial (sum) model -- this is machine-independent and always
  asserted;
* the real wall clock never *regresses*: on any host the scheduled run
  stays within 10% of serial (``>= 0.9x`` -- the cost-model bypass
  keeps small hosts inline), and on hosts with >= 4 CPUs the
  shared-memory transport must deliver ``>= 1.5x``.

Results land in ``BENCH_wallclock.json`` at the repo root, including a
``wall.regression`` flag and the per-phase ship/compute/gather split CI
uses to triage a slow run.
"""

import json
import os
import pathlib
import time

from repro.addresslib import (AddressLib, BatchCall, INTER_ABSDIFF,
                              INTRA_BOX3, INTRA_HOMOGENEITY,
                              INTRA_SOBEL_X, INTRA_SOBEL_Y,
                              SoftwareBackend)
from repro.gme import SINGAPORE, SyntheticSequence
from repro.host import CallScheduler
from repro.perf import format_seconds, format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FRAMES = 12
WORKERS = 4

#: The scheduled run must never fall below this fraction of serial
#: wall time on *any* host: the inline bypass guarantees it.
FLOOR_SPEEDUP = 0.9
#: With >= 4 real CPUs the zero-copy transport must win outright.
TARGET_SPEEDUP = 1.5
TARGET_CPUS = 4


def _gme_slice_calls():
    """One batch of independent calls over a CIF sequence slice."""
    sequence = SyntheticSequence(SINGAPORE, frames_override=FRAMES)
    frames = [sequence.frame(i) for i in range(FRAMES)]
    calls = []
    for frame in frames:
        calls.append(BatchCall.intra(INTRA_BOX3, frame))
        calls.append(BatchCall.intra(INTRA_SOBEL_X, frame))
        calls.append(BatchCall.intra(INTRA_SOBEL_Y, frame))
        calls.append(BatchCall.intra(INTRA_HOMOGENEITY, frame))
    for previous, current in zip(frames, frames[1:]):
        calls.append(BatchCall.inter_reduce(INTER_ABSDIFF, previous,
                                            current))
    return calls


def _run(calls, scheduler=None):
    lib = AddressLib(SoftwareBackend())
    t0 = time.perf_counter()
    results = lib.run_batch(calls, scheduler=scheduler)
    return results, time.perf_counter() - t0


def test_scheduler_wallclock(save_report):
    calls = _gme_slice_calls()

    serial_results, serial_seconds = _run(calls)

    with CallScheduler(max_workers=WORKERS) as scheduler:
        # Warm the worker pool outside the timed region (process
        # start-up is a one-off cost a long-running host amortises);
        # this also pre-registers the frames in the plane store, the
        # steady state of a host that re-batches over a sequence.
        _run(calls[:WORKERS], scheduler=scheduler)
        scheduled_results, scheduled_seconds = _run(
            calls, scheduler=scheduler)
        report = scheduler.last_report
        transport = scheduler.transport_stats()

    # Bit-exactness: the sharded batch is indistinguishable from serial.
    assert len(scheduled_results) == len(serial_results)
    for got, want in zip(scheduled_results, serial_results):
        if isinstance(want, int):
            assert got == want
        else:
            assert got.equals(want)

    # The modelled dispatch makespan across >= 4 engine workers:
    # machine-independent, always asserted.
    assert report is not None
    assert report.workers >= 4
    modeled_speedup = report.modeled_speedup
    assert modeled_speedup >= 2.0, (
        f"modelled {report.workers}-worker makespan speedup "
        f"{modeled_speedup:.2f}x below 2x")

    cpus = os.cpu_count() or 1
    wall_speedup = serial_seconds / scheduled_seconds
    regression = wall_speedup < FLOOR_SPEEDUP
    target_asserted = cpus >= TARGET_CPUS

    payload = {
        "cpus": cpus,
        "workers": WORKERS,
        "calls": len(calls),
        "frames": FRAMES,
        "pool_calls": report.pool_calls,
        "inline_calls": report.inline_calls,
        "bypass_calls": report.bypass_calls,
        "shm_calls": report.shm_calls,
        "pickle_calls": report.pickle_calls,
        "wall": {
            "serial_seconds": serial_seconds,
            "scheduled_seconds": scheduled_seconds,
            "speedup": wall_speedup,
            "regression": regression,
            "floor": FLOOR_SPEEDUP,
            "target": TARGET_SPEEDUP,
            "target_asserted": target_asserted,
        },
        "phases": {
            "ship_seconds": report.ship_seconds,
            "compute_seconds": report.compute_seconds,
            "gather_seconds": report.gather_seconds,
        },
        "transport": transport,
        "modeled": {
            "serial_seconds": report.modeled_serial_seconds,
            "pipelined_seconds": report.modeled_pipelined_seconds,
            "speedup": modeled_speedup,
        },
        "bit_exact": True,
    }
    (REPO_ROOT / "BENCH_wallclock.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("wallclock_scheduler", format_table(
        ["execution", "wall", "modelled board time"],
        [("serial", format_seconds(serial_seconds),
          format_seconds(report.modeled_serial_seconds)),
         (f"scheduled x{WORKERS}", format_seconds(scheduled_seconds),
          format_seconds(report.modeled_pipelined_seconds))],
        title=(f"GME slice, {len(calls)} independent calls -- wall "
               f"{wall_speedup:.2f}x ({cpus} CPUs, "
               f"{'target' if target_asserted else 'floor'} gate), "
               f"modelled {modeled_speedup:.2f}x across "
               f"{report.workers} engine workers; phases "
               f"ship {format_seconds(report.ship_seconds)} / "
               f"compute {format_seconds(report.compute_seconds)} / "
               f"gather {format_seconds(report.gather_seconds)}")))

    # Wall-clock gates: the floor holds everywhere (inline bypass),
    # the 1.5x target holds wherever there are CPUs to shard onto.
    assert not regression, (
        f"wall-clock regression: {wall_speedup:.2f}x below "
        f"{FLOOR_SPEEDUP}x floor on {cpus} CPUs "
        f"(phases: ship {report.ship_seconds:.3f}s, "
        f"compute {report.compute_seconds:.3f}s, "
        f"gather {report.gather_seconds:.3f}s)")
    if target_asserted:
        assert wall_speedup >= TARGET_SPEEDUP, (
            f"wall-clock speedup {wall_speedup:.2f}x below "
            f"{TARGET_SPEEDUP}x target on {cpus} CPUs "
            f"(phases: ship {report.ship_seconds:.3f}s, "
            f"compute {report.compute_seconds:.3f}s, "
            f"gather {report.gather_seconds:.3f}s)")
