"""Experiment SCHED -- wall-clock sharding of a multi-call GME slice.

A slice of the Table 3 GME workload expressed as one batch of
independent AddressLib calls (per-frame Sobel/box/homogeneity intra
work plus inter SAD reduces between consecutive frames) runs twice:
serially, and sharded across a :class:`CallScheduler` worker pool.

What must hold:

* the scheduled results are *bit-exact* with serial execution;
* the modelled dispatch makespan across >= 4 virtual engine workers
  under the block_A/block_B overlap model is at least 2x better than
  the serial (sum) model -- this is machine-independent and always
  asserted;
* on hosts with >= 4 CPUs the real wall clock is also >= 2x better
  (skipped on smaller hosts and when ``REPRO_WALLCLOCK_RELAXED`` is
  set, e.g. in CI containers with one core).

Results land in ``BENCH_wallclock.json`` at the repo root.
"""

import json
import os
import pathlib
import time

from repro.addresslib import (AddressLib, BatchCall, INTER_ABSDIFF,
                              INTRA_BOX3, INTRA_HOMOGENEITY,
                              INTRA_SOBEL_X, INTRA_SOBEL_Y,
                              SoftwareBackend)
from repro.gme import SINGAPORE, SyntheticSequence
from repro.host import CallScheduler
from repro.perf import format_seconds, format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FRAMES = 12
WORKERS = 4


def _gme_slice_calls():
    """One batch of independent calls over a CIF sequence slice."""
    sequence = SyntheticSequence(SINGAPORE, frames_override=FRAMES)
    frames = [sequence.frame(i) for i in range(FRAMES)]
    calls = []
    for frame in frames:
        calls.append(BatchCall.intra(INTRA_BOX3, frame))
        calls.append(BatchCall.intra(INTRA_SOBEL_X, frame))
        calls.append(BatchCall.intra(INTRA_SOBEL_Y, frame))
        calls.append(BatchCall.intra(INTRA_HOMOGENEITY, frame))
    for previous, current in zip(frames, frames[1:]):
        calls.append(BatchCall.inter_reduce(INTER_ABSDIFF, previous,
                                            current))
    return calls


def _run(calls, scheduler=None):
    lib = AddressLib(SoftwareBackend())
    t0 = time.perf_counter()
    results = lib.run_batch(calls, scheduler=scheduler)
    return results, time.perf_counter() - t0


def test_scheduler_wallclock(save_report):
    calls = _gme_slice_calls()

    serial_results, serial_seconds = _run(calls)

    with CallScheduler(max_workers=WORKERS) as scheduler:
        # Warm the worker pool outside the timed region (process
        # start-up is a one-off cost a long-running host amortises).
        _run(calls[:WORKERS], scheduler=scheduler)
        scheduled_results, scheduled_seconds = _run(
            calls, scheduler=scheduler)
        report = scheduler.last_report

    # Bit-exactness: the sharded batch is indistinguishable from serial.
    assert len(scheduled_results) == len(serial_results)
    for got, want in zip(scheduled_results, serial_results):
        if isinstance(want, int):
            assert got == want
        else:
            assert got.equals(want)

    # The modelled dispatch makespan across >= 4 engine workers:
    # machine-independent, always asserted.
    assert report is not None
    assert report.workers >= 4
    modeled_speedup = report.modeled_speedup
    assert modeled_speedup >= 2.0, (
        f"modelled {report.workers}-worker makespan speedup "
        f"{modeled_speedup:.2f}x below 2x")

    # Real wall clock: only meaningful with enough CPUs to shard onto.
    cpus = os.cpu_count() or 1
    wall_speedup = serial_seconds / scheduled_seconds
    wall_asserted = (cpus >= 4
                     and not os.environ.get("REPRO_WALLCLOCK_RELAXED"))
    if wall_asserted:
        assert wall_speedup >= 2.0, (
            f"wall-clock speedup {wall_speedup:.2f}x below 2x on "
            f"{cpus} CPUs")

    payload = {
        "cpus": cpus,
        "workers": WORKERS,
        "calls": len(calls),
        "frames": FRAMES,
        "pool_calls": report.pool_calls,
        "inline_calls": report.inline_calls,
        "wall": {
            "serial_seconds": serial_seconds,
            "scheduled_seconds": scheduled_seconds,
            "speedup": wall_speedup,
            "asserted": wall_asserted,
        },
        "modeled": {
            "serial_seconds": report.modeled_serial_seconds,
            "pipelined_seconds": report.modeled_pipelined_seconds,
            "speedup": modeled_speedup,
        },
        "bit_exact": True,
    }
    (REPO_ROOT / "BENCH_wallclock.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("wallclock_scheduler", format_table(
        ["execution", "wall", "modelled board time"],
        [("serial", format_seconds(serial_seconds),
          format_seconds(report.modeled_serial_seconds)),
         (f"scheduled x{WORKERS}", format_seconds(scheduled_seconds),
          format_seconds(report.modeled_pipelined_seconds))],
        title=(f"GME slice, {len(calls)} independent calls -- wall "
               f"{wall_speedup:.2f}x ({cpus} CPUs, "
               f"{'asserted' if wall_asserted else 'informational'}), "
               f"modelled {modeled_speedup:.2f}x across "
               f"{report.workers} engine workers")))
