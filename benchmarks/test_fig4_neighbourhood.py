"""Experiment F4 -- Figure 4: the one-cycle neighbourhood fetch
(ablations D1/D3) and the startpipeline (ablation D5).

The IIM's parallel line stores make even the worst case -- a 9-line
neighbourhood perpendicular to the scan -- a single stage-2 fetch.  A
serial-fetch design would pay one cycle per neighbourhood pixel.
"""

import pytest

from repro.addresslib import COLUMN_9, CON_0, CON_8, INTRA_COPY, fir_op
from repro.core import AddressEngine, intra_config
from repro.image import ImageFormat, noise_frame
from repro.perf import format_table

FMT = ImageFormat("F4", 64, 64)


@pytest.fixture(scope="module")
def frame():
    return noise_frame(FMT, seed=31)


def test_fig4_one_cycle_fetch_across_neighbourhoods(benchmark,
                                                    save_report, frame):
    """Cycle counts are identical for CON_0, CON_8 and the 9-line
    perpendicular column: neighbourhood size never serialises fetches."""
    engine = AddressEngine()
    configs = {
        "CON_0 (1 pixel)": intra_config(INTRA_COPY, FMT),
        "CON_8 (3x3)": intra_config(
            fir_op("f4_box3", CON_8, [1] * 9, shift=3), FMT),
        "COLUMN_9 (9 lines, perpendicular)": intra_config(
            fir_op("f4_col9", COLUMN_9, [1] * 9, shift=3), FMT),
    }
    runs = {name: engine.run_call(config, frame)
            for name, config in configs.items()}
    cycles = {name: run.cycles for name, run in runs.items()}
    assert len(set(cycles.values())) == 1

    # Serial-fetch ablation: stage 2 would take one cycle per pixel of
    # the neighbourhood; the extra cycles cannot hide behind the DMA
    # once fetch demand exceeds the transfer rate.
    rows = []
    for name, run in runs.items():
        size = {"CON_0 (1 pixel)": 1, "CON_8 (3x3)": 9,
                "COLUMN_9 (9 lines, perpendicular)": 9}[name]
        fetches = run.matrix_pixels_fetched
        serial_stage2 = fetches  # one cycle per fetched pixel
        parallel_stage2 = run.plc_stats.loads + run.plc_stats.shifts
        rows.append((name, size, run.cycles, parallel_stage2,
                     serial_stage2,
                     f"{serial_stage2 / parallel_stage2:.1f}x"))
    save_report("fig4_neighbourhood", format_table(
        ["neighbourhood", "pixels", "call cycles", "stage-2 fetch ops",
         "serial-fetch ops (ablation)", "fetch blowup"],
        rows,
        title="Figure 4 -- one-cycle neighbourhood fetch vs serial "
              "fetching (ablations D1/D3)"))

    benchmark.pedantic(
        lambda: engine.run_call(configs["COLUMN_9 (9 lines, "
                                        "perpendicular)"], frame),
        rounds=1, iterations=1)


def test_fig4_worst_case_refetches_everything(frame, benchmark,
                                              save_report):
    """Perpendicular to the scan, no pixel is reusable: the matrix
    register refetches all nine pixels each step, yet the IIM supplies
    them in one cycle."""
    engine = AddressEngine()
    col9 = benchmark.pedantic(
        lambda: engine.run_call(intra_config(
            fir_op("f4_col9b", COLUMN_9, [1] * 9, shift=3), FMT), frame),
        rounds=1, iterations=1)
    box3 = engine.run_call(intra_config(
        fir_op("f4_box3b", CON_8, [1] * 9, shift=3), FMT), frame)
    assert col9.matrix_pixels_fetched == 9 * FMT.pixels
    assert box3.matrix_pixels_fetched < 0.5 * col9.matrix_pixels_fetched
    save_report("fig4_reuse", format_table(
        ["neighbourhood", "pixels fetched", "reuse"],
        [("CON_8 along scan", box3.matrix_pixels_fetched,
          f"{1 - box3.matrix_pixels_fetched / (9 * FMT.pixels):.2f}"),
         ("COLUMN_9 perpendicular", col9.matrix_pixels_fetched, "0.00")],
        title="Figure 4 -- pixel reuse collapses in the perpendicular "
              "worst case"))


def test_fig4_startpipeline_ablation(frame, benchmark, save_report):
    """Ablation D5: a PLC that issues one pixel-cycle per clock (no
    startpipeline overlap) slows the drain phases; the full design's
    special-inter tail would double."""
    fast = AddressEngine(plc_ticks_per_cycle=2)
    slow = AddressEngine(plc_ticks_per_cycle=1)
    from repro.addresslib import INTER_ABSDIFF
    from repro.core import inter_config
    config = inter_config(INTER_ABSDIFF, FMT, reduce_to_scalar=True,
                          requires_full_frames=True)
    b = noise_frame(FMT, seed=32)
    run_fast = benchmark.pedantic(
        lambda: fast.run_call(config, frame, b), rounds=1, iterations=1)
    run_slow = slow.run_call(config, frame, b)
    tail_fast = run_fast.cycles - run_fast.input_complete_cycle
    tail_slow = run_slow.cycles - run_slow.input_complete_cycle
    assert tail_slow > 1.7 * tail_fast
    save_report("fig4_startpipeline", format_table(
        ["design", "post-input tail (cycles)", "non-PCI fraction"],
        [("startpipeline (2 pixel-cycles/clock)", tail_fast,
          f"{run_fast.non_pci_fraction_of_input:.3f}"),
         ("ablation: single issue", tail_slow,
          f"{run_slow.non_pci_fraction_of_input:.3f}")],
        title="Ablation D5 -- the startpipeline halves the exposed "
              "processing tail"))
