"""Experiments O1/O2 -- section 5's outlook, quantified.

The paper closes with two directions: (1) segment addressing on the same
board, (2) exploiting dynamically reconfigurable FPGAs with a static
addressing block and a dynamic pixel-processing block.  Both are
modelled here, so the extension's costs/benefits become numbers.
"""

import pytest

from repro.addresslib import (AddressLib, INTRA_BOX3, INTRA_GRAD,
                              INTRA_MEDIAN3, luma_delta_criterion)
from repro.core import (ReconfigurableEngine, ReconfigurationModel,
                        SegmentCallConfig, SegmentUnit, intra_config,
                        v1_utilization_report, v2_utilization_report)
from repro.host import EngineBackendV2
from repro.image import CIF, QCIF, blob_frame
from repro.perf import PENTIUM_M_1600, format_table


def test_outlook_segment_unit_vs_software(benchmark, save_report):
    """O1: the v2 segment unit against both software stacks.

    The finding mirrors Table 3's structure: against the tight
    AddressLib C library the unit roughly breaks even (the PCI transfer
    eats the expansion speedup; residency recovers it), while against
    the XM-accessor-style code the paper's baseline actually ran, the
    unit wins by an order of magnitude.
    """
    from repro.image import Frame
    frame = Frame(QCIF)
    frame.y[:] = 100          # whole-frame expansion: 25344 pixels
    seeds = [(88, 72)]
    criterion = luma_delta_criterion(12)

    # Software cost on the Pentium M: the tight AddressLib C profile,
    # and the same access pattern through XM-style accessors.
    from repro.gme import xm_cost_model
    sw_lib = AddressLib()
    sw_result = sw_lib.segment(frame, seeds, criterion)
    profile = sw_lib.log.records[-1].profile
    sw_seconds = PENTIUM_M_1600.seconds(profile)
    from repro.addresslib import OpProfile
    xm_extra = OpProfile()
    xm_extra.add_cost(xm_cost_model().per_access_overhead,
                      profile.counts["load"] + profile.counts["store"])
    xm_seconds = sw_seconds + PENTIUM_M_1600.seconds(xm_extra)

    # Hardware: the modelled unit, cold (with DMA) and resident.
    unit = SegmentUnit()
    cold = benchmark.pedantic(
        lambda: unit.run_call(SegmentCallConfig(QCIF, 12), frame, seeds),
        rounds=1, iterations=1)
    warm = unit.run_call(
        SegmentCallConfig(QCIF, 12, frame_resident=True), frame, seeds)

    assert cold.pixels_processed == sw_result.pixels_processed
    speedup_cold = sw_seconds / cold.seconds()
    speedup_warm = sw_seconds / warm.seconds()
    assert speedup_warm > speedup_cold > 0.5
    assert speedup_warm > 1.0           # residency beats even tight C
    assert xm_seconds / warm.seconds() > 5.0

    save_report("outlook_segment_unit", format_table(
        ["implementation", "time", "vs AddressLib C", "vs XM style"],
        [("AddressLib C (Pentium M)", f"{sw_seconds * 1e3:.2f} ms",
          "1.0x", "--"),
         ("XM accessors (Pentium M)", f"{xm_seconds * 1e3:.2f} ms",
          f"{sw_seconds / xm_seconds:.2f}x", "1.0x"),
         ("v2 unit, frame shipped over PCI",
          f"{cold.seconds() * 1e3:.2f} ms", f"{speedup_cold:.2f}x",
          f"{xm_seconds / cold.seconds():.1f}x"),
         ("v2 unit, frame already resident",
          f"{warm.seconds() * 1e3:.2f} ms", f"{speedup_warm:.2f}x",
          f"{xm_seconds / warm.seconds():.1f}x")],
        title="Outlook O1 -- segment addressing in hardware "
              f"({cold.pixels_processed} pixels expanded, QCIF)"))


def test_outlook_v2_fits_the_device(benchmark, save_report):
    """'There is enough free memory for a possible extension of the
    design with other addressing schemes.'"""
    v1 = v1_utilization_report()
    v2 = benchmark(v2_utilization_report)
    assert v2.totals.brams <= v2.device.brams
    assert v2.totals.brams - v1.totals.brams == 3
    save_report("outlook_v2_resources", format_table(
        ["design", "slices", "FFs", "LUTs", "BRAMs", "BRAM util"],
        [("v1 (intra + inter)", v1.totals.slices, v1.totals.flip_flops,
          v1.totals.luts, v1.totals.brams,
          f"{100 * v1.totals.brams / 96:.0f}%"),
         ("v2 (+ segment unit)", v2.totals.slices, v2.totals.flip_flops,
          v2.totals.luts, v2.totals.brams,
          f"{100 * v2.totals.brams / 96:.0f}%")],
        title="Outlook O1 -- the extension fits the XC2V3000"))


def test_outlook_dynamic_reconfiguration(benchmark, save_report):
    """O2: a video-analysis phase switching its pixel operation every
    few frames -- partial dynamic reconfiguration vs a static device."""
    ops = [INTRA_GRAD, INTRA_BOX3, INTRA_MEDIAN3]
    schedule = [(intra_config(ops[(i // 4) % 3], CIF),)
                for i in range(48)]

    dynamic = benchmark.pedantic(
        lambda: ReconfigurableEngine(dynamic=True).run_schedule(schedule),
        rounds=1, iterations=1)
    static = ReconfigurableEngine(dynamic=False).run_schedule(schedule)
    model = ReconfigurationModel()

    assert dynamic.reconfigurations == static.reconfigurations == 11
    assert dynamic.reconfig_fraction < 0.02
    assert static.reconfig_fraction > 0.3

    save_report("outlook_reconfig", format_table(
        ["design", "calls", "op switches", "call time", "reconfig time",
         "reconfig share"],
        [("dynamic region (partial bitstreams)", dynamic.calls,
          dynamic.reconfigurations,
          f"{dynamic.call_seconds:.2f} s",
          f"{dynamic.reconfig_seconds * 1e3:.1f} ms",
          f"{dynamic.reconfig_fraction * 100:.1f}%"),
         ("static device (full bitstreams)", static.calls,
          static.reconfigurations,
          f"{static.call_seconds:.2f} s",
          f"{static.reconfig_seconds * 1e3:.1f} ms",
          f"{static.reconfig_fraction * 100:.1f}%")],
        title="Outlook O2 -- dynamic pixel-processing block: 48 CIF "
              "calls, operation change every 4 calls")
        + (f"\n\npartial bitstream {model.partial_bitstream_bytes // 1024}"
           f" KiB vs full {model.full_bitstream_bytes // 1024} KiB: "
           f"{model.speedup:.0f}x faster per switch"))


def test_outlook_chained_gme(benchmark, save_report):
    """What-if: Table 3's FPGA platform with call chaining.

    The GME inner loop reuses one reference frame across its SAD calls
    and Sobel calls; keeping it resident in the ZBT (the chaining
    extension) cuts the per-call PCI traffic and pushes the speedup
    beyond the paper's factor 5.
    """
    from repro.gme import GmeApplication, SINGAPORE, SyntheticSequence
    from repro.host import EngineBackend, engine_platform

    def run(backend):
        runtime = engine_platform(backend=backend)
        app = GmeApplication(runtime)
        sequence = SyntheticSequence(SINGAPORE, frames_override=14)
        return app.run_sequence(sequence)

    plain = run(EngineBackend())
    chained = benchmark.pedantic(
        lambda: run(EngineBackend(chain_frames=True)),
        rounds=1, iterations=1)

    assert chained.intra_calls == plain.intra_calls
    assert chained.inter_calls == plain.inter_calls
    saving = 1 - chained.call_seconds / plain.call_seconds
    assert saving > 0.15
    # Alignment quality is untouched by where the frames live.
    assert chained.mean_translation_error == pytest.approx(
        plain.mean_translation_error)

    save_report("outlook_chained_gme", format_table(
        ["FPGA platform", "AddressLib call time", "saving"],
        [("per-call round trips (paper's v1)",
          f"{plain.call_seconds:.2f} s", "--"),
         ("with frame chaining",
          f"{chained.call_seconds:.2f} s", f"{saving * 100:.0f}%")],
        title="What-if -- Table 3's GME with on-board frame chaining "
              f"(Singapore excerpt, {plain.frames} frames)"))
