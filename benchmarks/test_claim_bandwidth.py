"""Experiment C2 -- the section 4.1 bandwidth and overlap claims.

* 'With this clock frequency a 264 Mbytes/s rate can be achieved between
  every one of the 6 ZBT RAM banks and the FPGA.'
* 'The effect in the timings due to the processing is insignificant
  except for some special inter operations ... Even in this situation
  the time wasted not due to the PCI transferences is a 12.5 % of the
  time needed to transfer the images to the board.'
* The PCI bus is the bottleneck of the system.
"""

import pytest

from repro.addresslib import INTER_ABSDIFF, INTRA_GRAD
from repro.core import AddressEngine, inter_config, intra_config
from repro.image import CIF, ImageFormat, noise_frame
from repro.perf import EngineTimingModel, format_table

MODEL = EngineTimingModel()
PAPER_SPECIAL_FRACTION = 0.125


def test_claim_zbt_bank_bandwidth(benchmark, save_report):
    rate = benchmark(MODEL.zbt_bank_bytes_per_second)
    assert rate == 264_000_000
    save_report("claim_zbt_bandwidth", format_table(
        ["quantity", "measured", "paper"],
        [("per-bank ZBT rate", f"{rate / 1e6:.0f} MB/s", "264 MB/s"),
         ("bus clock", "66 MHz", "66 MHz"),
         ("bus width", "32 bits", "32 bits")],
        title="Claim C2 -- ZBT bank bandwidth at the design clock"))


def test_claim_special_inter_fraction(benchmark, save_report):
    """Cycle-simulated special inter call: the non-PCI share of the
    input transfer time stays at the paper's 12.5 % bound."""
    fmt = ImageFormat("C2", 176, 96)
    a = noise_frame(fmt, seed=11)
    b = noise_frame(fmt, seed=12)
    engine = AddressEngine()
    config = inter_config(INTER_ABSDIFF, fmt, reduce_to_scalar=True,
                          requires_full_frames=True)

    run = benchmark.pedantic(lambda: engine.run_call(config, a, b),
                             rounds=1, iterations=1)
    measured = run.non_pci_fraction_of_input
    analytic_cif = MODEL.non_pci_fraction(
        inter_config(INTER_ABSDIFF, CIF, reduce_to_scalar=True,
                     requires_full_frames=True))
    assert measured == pytest.approx(PAPER_SPECIAL_FRACTION, abs=0.03)
    assert analytic_cif == pytest.approx(PAPER_SPECIAL_FRACTION, abs=0.01)

    # Ordinary calls: the processing effect is 'insignificant'.
    ordinary = engine.run_call(
        inter_config(INTER_ABSDIFF, fmt, reduce_to_scalar=True), a, b)
    assert ordinary.non_pci_fraction_of_input < 0.05

    save_report("claim_special_inter", format_table(
        ["case", "non-PCI fraction of input transfer", "paper"],
        [("special inter (cycle sim, 176x96)", f"{measured:.4f}",
          "0.125"),
         ("special inter (analytic, CIF)", f"{analytic_cif:.4f}",
          "0.125"),
         ("ordinary inter (cycle sim)",
          f"{ordinary.non_pci_fraction_of_input:.4f}",
          "'insignificant'")],
        title="Claim C2 -- time wasted not due to PCI transfers"))


def test_claim_pci_is_the_bottleneck(benchmark, save_report):
    """During an intra call the PCI moves a word nearly every cycle
    while the datapath idles waiting for data: the bus saturates first."""
    fmt = ImageFormat("C2b", 88, 64)
    frame = noise_frame(fmt, seed=13)
    engine = AddressEngine()

    run = benchmark.pedantic(
        lambda: engine.run_call(intra_config(INTRA_GRAD, fmt), frame),
        rounds=1, iterations=1)
    utilization = run.pci.utilization()
    assert utilization > 0.90
    # The PLC spends a large share of its ticks starved for IIM data --
    # the engine could go faster, the bus cannot.
    stats = run.plc_stats
    assert stats.stall_iim_wait > stats.cycles * 0.3
    save_report("claim_pci_bottleneck", format_table(
        ["quantity", "value"],
        [("PCI utilisation over the call", f"{utilization:.3f}"),
         ("PLC cycles stalled on IIM data",
          f"{stats.stall_iim_wait / stats.cycles:.3f}"),
         ("engine fabric headroom (fmax / bus clock)",
          f"{102.208 / 66:.2f}x")],
        title="Claim C2 -- the PCI bus is the system bottleneck"))
