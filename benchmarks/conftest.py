"""Shared benchmark plumbing.

Every experiment bench renders its paper-style table and both prints it
and appends it to ``benchmarks/out/<experiment>.txt``, so the
regenerated rows survive pytest's output capturing.

Environment knobs:

* ``REPRO_TABLE3_SCALE`` -- fraction of each Table 3 sequence to run
  (default 0.25; set to 1.0 for the full-length sequences).
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_report(report_dir):
    """``save_report(name, text)`` -> prints and persists a report."""
    def _save(name: str, text: str) -> None:
        print()
        print(text)
        (report_dir / f"{name}.txt").write_text(text + "\n")
    return _save


@pytest.fixture(scope="session")
def table3_scale() -> float:
    return float(os.environ.get("REPRO_TABLE3_SCALE", "0.25"))
