"""Experiment SLO -- noisy-neighbour fairness under ServicePolicy.

Three tenants share one modeled board through the full tenancy stack
(WFQ drain, per-tenant admission shading, deadline-aware batching):
two *victims* each offer 20% of the stream, steady; one *aggressor*
floods at 60% -- three times its configured fair weight (all three
tenants hold equal ``TenantPolicy`` weights).  The aggregate is offered
at 1.5x the pool's measured capacity, so roughly a third of the
offered load must be shed -- and *who* absorbs that shedding is the
whole point of the policy.

What must hold (the ``BENCH_slo.json`` gates):

* each victim keeps ``goodput_ratio >= 0.95`` -- tenants inside their
  fair share ride out the flood essentially unshed;
* each victim's modeled p95 stays finite and within its configured
  ``p95_target_seconds`` -- the target admission promised to protect;
* the aggressor absorbs at least 90% of all sheds -- the flood pays
  for the flood;
* below saturation, the serial and asyncio replays cut *identical*
  modeled books with fairness enabled (no wall-clock behaviour leaks
  into the modeled domain).

A fairness-disabled replay of the same trace rides along in the JSON
for contrast (no gate): without WFQ + shading the victims eat the
aggressor's backlog.

The main level replays ``REPRO_SLO_REQUESTS`` requests (default
20000; CI's slo-smoke job sets 4000).  Results land in
``BENCH_slo.json`` at the repo root.
"""

import json
import os
import pathlib

from repro.api import (AdmissionPolicy, EnginePool, EngineService,
                       Priority, ServicePolicy, TenantPolicy)
from repro.load import (ArrivalTrace, CallFactory, TenantSpec,
                        TraceSpec, replay_async, replay_serial,
                        sweep_report_dict)
from repro.perf import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REQUESTS = int(os.environ.get("REPRO_SLO_REQUESTS", "20000"))
BOARDS = 1
QUEUE_DEPTH = 256
MAX_BATCH = 8
#: Aggregate offered load as a fraction of measured capacity.
OVERLOAD = 1.5
#: Admission backlog budget, in units of one call's modeled cost.
BUDGET_CALLS = 30.0
#: Victim p95 target, in units of one call's modeled cost.
TARGET_CALLS = 25.0
SEED = 0x510F

VICTIMS = ("victim_a", "victim_b")
AGGRESSOR = "aggressor"

#: Offered-stream shares: the aggressor floods at 3x the victims'
#: rate while every tenant's *policy* weight is equal -- the flood is
#: 3x its fair share by construction.
TRACE_TENANTS = (
    TenantSpec("victim_a", weight=1.0, priority=Priority.STANDARD),
    TenantSpec("victim_b", weight=1.0, priority=Priority.STANDARD),
    TenantSpec("aggressor", weight=3.0, priority=Priority.STANDARD),
)


def _spec(requests, rate_per_s):
    """Uniform-cost QCIF-scale intra mix: every call prices the same,
    so capacity and budgets are exact multiples of one call."""
    return TraceSpec(
        requests=requests, rate_per_s=rate_per_s, seed=SEED,
        tenants=TRACE_TENANTS, width=32, height=24, frame_pool=16,
        inter_fraction=0.0, intra_ops=("intra_grad",))


def _call_cost():
    """The (uniform) modeled overlapped cost of one trace call."""
    probe = EngineService()
    factory = CallFactory(ArrivalTrace.synthesize(_spec(8, 1.0)))
    return probe.admission.price(
        factory.call(factory.trace.entries[0]))[1]


def _policy(call_cost, fair_queueing=True, with_targets=True):
    target = TARGET_CALLS * call_cost if with_targets else None
    return ServicePolicy(
        queue_depth=QUEUE_DEPTH, max_batch=MAX_BATCH,
        admission=AdmissionPolicy(
            deadline_budget_seconds=BUDGET_CALLS * call_cost),
        tenants={
            "victim_a": TenantPolicy(weight=1.0,
                                     p95_target_seconds=target),
            "victim_b": TenantPolicy(weight=1.0,
                                     p95_target_seconds=target),
            "aggressor": TenantPolicy(weight=1.0),
        },
        fair_queueing=fair_queueing,
        deadline_aware_batching=fair_queueing)


def _service(policy):
    return EngineService(pool=EnginePool.of_engines(BOARDS),
                         policy=policy)


def _measured_capacity_per_s(call_cost):
    """Saturated completion rate for this mix (measured, not assumed):
    a policy-free burst offered effectively at once, completed under
    the modeled clock."""
    trace = ArrivalTrace.synthesize(
        _spec(min(REQUESTS, 2048), 1e6))
    service = _service(ServicePolicy(queue_depth=QUEUE_DEPTH,
                                     max_batch=MAX_BATCH))
    report = replay_async(trace, service)
    assert report.completed == len(trace)
    return report.goodput_per_s


def _modeled_books(report):
    """The machine-independent slice of a LoadReport payload."""
    payload = report.to_dict()
    for key in ("mode", "wall_latency", "backpressure_waits",
                "backpressure_wall_seconds", "wall_elapsed_seconds",
                "requests_per_wall_s", "service"):
        payload.pop(key)
    return payload


def test_slo_fairness(save_report):
    call_cost = _call_cost()
    capacity_per_s = _measured_capacity_per_s(call_cost)
    target_seconds = TARGET_CALLS * call_cost

    base = ArrivalTrace.synthesize(
        _spec(REQUESTS, OVERLOAD * capacity_per_s))

    # The gated level: fairness on, aggressor flooding at 3x weight.
    fair = replay_serial(base, _service(_policy(call_cost)),
                         load_factor=OVERLOAD)
    # Contrast level (no gate): same trace, fairness machinery off.
    unfair = replay_serial(
        base, _service(_policy(call_cost, fair_queueing=False,
                               with_targets=False)),
        load_factor=OVERLOAD)

    # Determinism gate: below saturation the serial and async replays
    # cut identical modeled books with fairness enabled.
    calm = ArrivalTrace.synthesize(
        _spec(min(REQUESTS // 4, 4096), 0.6 * capacity_per_s))
    calm_serial = replay_serial(calm, _service(_policy(call_cost)),
                                load_factor=0.6)
    calm_async = replay_async(calm, _service(_policy(call_cost)),
                              load_factor=0.6)
    assert _modeled_books(calm_serial) == _modeled_books(calm_async)

    # Accounting balances at every level.
    for report in (fair, unfair, calm_serial, calm_async):
        assert report.accounted == report.offered_requests

    # -- the fairness gates ---------------------------------------------------
    total_sheds = sum(book.sheds for book in fair.tenants.values())
    aggressor_book = fair.tenants[AGGRESSOR]
    assert total_sheds > 0, "the 1.5x overload level must shed"
    assert aggressor_book.sheds >= 0.90 * total_sheds, (
        f"aggressor absorbed {aggressor_book.sheds}/{total_sheds} "
        f"sheds; the flood must pay for the flood")
    for name in VICTIMS:
        book = fair.tenants[name]
        assert book.completed / book.submitted >= 0.95, (
            f"{name} goodput {book.completed}/{book.submitted} under "
            f"the aggressor flood")
        p95 = book.modeled_latency.p95
        assert p95 is not None
        assert p95 <= target_seconds, (
            f"{name} modeled p95 {p95 * 1e3:.2f} ms over the "
            f"{target_seconds * 1e3:.2f} ms target")

    # -- the JSON payload -----------------------------------------------------
    payload = sweep_report_dict(
        [fair, unfair, calm_serial, calm_async],
        trace_meta={
            "seed": SEED,
            "requests": REQUESTS,
            "boards": BOARDS,
            "overload": OVERLOAD,
            "capacity_per_s": capacity_per_s,
            "call_cost_seconds": call_cost,
            "budget_calls": BUDGET_CALLS,
            "target_calls": TARGET_CALLS,
            "p95_target_seconds": target_seconds,
            "tenants": {t.name: {"trace_weight": t.weight,
                                 "policy_weight": 1.0}
                        for t in TRACE_TENANTS},
            "levels": ["fair", "unfair", "calm_serial", "calm_async"],
        })
    (REPO_ROOT / "BENCH_slo.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    rows = []
    for label, report in (("fair", fair), ("unfair", unfair)):
        for name in (*VICTIMS, AGGRESSOR):
            book = report.tenants[name]
            p95 = book.modeled_latency.p95
            rows.append((
                f"{label}/{name}",
                book.submitted,
                book.completed,
                book.sheds,
                f"{book.completed / book.submitted:.3f}",
                f"{p95 * 1e3:.2f}" if p95 is not None else "-",
            ))
    save_report("slo_fairness", format_table(
        ["level/tenant", "offered", "completed", "sheds",
         "goodput", "p95 ms"],
        rows,
        title=f"Noisy neighbour, {REQUESTS} requests at "
              f"{OVERLOAD:.1f}x capacity, {BOARDS} board(s), "
              f"victim target {target_seconds * 1e3:.2f} ms"))
