"""Experiment T1 -- Table 1: device utilisation and timing summary.

Regenerates the paper's ISE synthesis summary from the structural
resource estimator and checks every row against the published values.
"""

import pytest

from repro.core import total_resources, v1_module_inventory, \
    v1_utilization_report
from repro.perf import format_table

#: Table 1 as printed in the paper.
PAPER_ROWS = (
    ("Number of Slices", 564, 14336, 3),
    ("Number of Slice Flip Flops", 216, 28672, 0),
    ("Number of 4 input LUTs", 349, 28672, 1),
    ("Number of bonded IOBs", 60, 720, 8),
    ("Number of BRAMs", 29, 96, 30),
    ("Number of GCLKs", 1, 16, 6),
)
PAPER_MIN_PERIOD_NS = 9.784
PAPER_MAX_FREQ_MHZ = 102.208


def test_table1_device_utilization(benchmark, save_report):
    report = benchmark(v1_utilization_report)

    rows = []
    for (name, used, available, percent), measured in zip(
            PAPER_ROWS, report.rows()):
        m_name, m_used, m_avail, m_percent = measured
        assert m_name == name
        assert m_used == used, name
        assert m_avail == available, name
        assert int(m_percent) == percent, name
        rows.append((name, m_used, used, m_avail, f"{int(m_percent)}%"))

    timing = report.timing
    assert timing.min_period_ns == pytest.approx(PAPER_MIN_PERIOD_NS,
                                                 abs=1e-3)
    assert timing.max_frequency_mhz == pytest.approx(PAPER_MAX_FREQ_MHZ,
                                                     abs=0.01)

    table = format_table(
        ["resource", "measured", "paper", "available", "util"],
        rows, title="Table 1 -- device utilisation (2v3000ff1152-5)")
    table += ("\n\nTiming: minimum period "
              f"{timing.min_period_ns:.3f} ns (paper "
              f"{PAPER_MIN_PERIOD_NS} ns), max frequency "
              f"{timing.max_frequency_mhz:.3f} MHz (paper "
              f"{PAPER_MAX_FREQ_MHZ} MHz)")
    table += "\n\n" + report.render()
    save_report("table1_resources", table)


def test_table1_bram_breakdown(benchmark, save_report):
    """The per-module decomposition behind the headline 29 BRAMs."""
    modules = benchmark(v1_module_inventory)
    rows = [(m.name, m.resources.slices, m.resources.flip_flops,
             m.resources.luts, m.resources.brams)
            for m in modules]
    totals = total_resources(modules)
    rows.append(("TOTAL", totals.slices, totals.flip_flops, totals.luts,
                 totals.brams))
    assert totals.brams == 29
    save_report("table1_modules", format_table(
        ["module", "slices", "FFs", "LUTs", "BRAMs"], rows,
        title="Table 1 -- per-module structural estimate"))
