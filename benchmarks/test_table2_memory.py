"""Experiment T2 -- Table 2: memory accesses, software vs hardware.

Regenerates the four CIF rows from the access-accounting models and
validates them three ways:

1. the analytic software counts equal the paper's numbers exactly;
2. the counted per-pixel executor reproduces the analytic counts (run on
   QCIF for speed; the counts scale exactly with pixel count);
3. the hardware count comes from the cycle-level engine's pixel-op
   metric on a reduced frame, scaled to CIF.
"""

import pytest

from repro.addresslib import (COUNTED_EXECUTOR_KINDS, ChannelSet,
                              INTER_ABSDIFF, INTRA_COPY,
                              INTRA_HOMOGENEITY, counted_executor)
from repro.core import AddressEngine, intra_config
from repro.image import CIF, ImageFormat, PlanarFrame420, QCIF, noise_frame
from repro.perf import PAPER_TABLE2, format_table, table2_rows


def test_table2_analytic_rows_match_paper(benchmark, save_report):
    rows = benchmark(table2_rows, CIF)
    lines = []
    for row, paper in zip(rows, PAPER_TABLE2):
        label, cin, cout, sw, hw, saving = paper
        assert row.sw_accesses == sw, label
        assert row.hw_accesses == hw, label
        assert row.paper_saving_percent == pytest.approx(saving, abs=0.5)
        lines.append((f"{row.label}", row.channels_in, row.channels_out,
                      row.sw_accesses, row.hw_accesses,
                      f"{row.paper_saving_percent:.0f}%",
                      f"{100 * row.saving_vs_software:.0f}%"))
    save_report("table2_memory", format_table(
        ["addressing", "in", "out", "software", "hardware",
         "saving (paper conv.)", "saving (SW basis)"],
        lines, title="Table 2 -- memory accesses per CIF call "
                     "(all values match the paper exactly)"))


@pytest.mark.parametrize("kind", COUNTED_EXECUTOR_KINDS)
def test_table2_counted_executor_validates_software_column(benchmark, kind):
    """Both counted paths -- the genuine per-pixel walk and the
    strip-vectorized analytic crediting -- reproduce the idealised
    counts (up to the first window fill), measured on QCIF."""
    frame = noise_frame(QCIF, seed=5)

    def run_counted():
        src = PlanarFrame420.from_frame(frame)
        dst = PlanarFrame420(QCIF, src.counter)
        counted_executor(kind).intra(INTRA_HOMOGENEITY, src, dst)
        return src.counter.total

    measured = benchmark.pedantic(run_counted, rounds=1, iterations=1)
    ideal = 4 * QCIF.pixels
    assert 0 <= measured - ideal <= 27   # the 3x3 window fill residue
    # QCIF -> CIF scaling reproduces the paper row.
    assert ideal * (CIF.pixels / QCIF.pixels) == 405_504


def test_table2_hardware_column_from_cycle_model(benchmark):
    """The engine's pixel-op metric on a real cycle simulation equals
    2 x pixels, the Table 2 hardware figure."""
    fmt = ImageFormat("T2HW", 88, 72)  # CIF / 4 in each dimension
    frame = noise_frame(fmt, seed=6)
    engine = AddressEngine()

    def run_sim():
        return engine.run_call(intra_config(INTRA_HOMOGENEITY, fmt),
                               frame).zbt_pixel_ops

    pixel_ops = benchmark.pedantic(run_sim, rounds=1, iterations=1)
    assert pixel_ops == 2 * fmt.pixels
    assert pixel_ops * (CIF.pixels / fmt.pixels) == 202_752


def test_table2_hw_metric_insensitive_to_workload(benchmark, save_report):
    """Hardware accesses do not grow with neighbourhood or channels --
    'all the channels of the new pixels ... are loaded in parallel'."""
    fmt = ImageFormat("T2HWb", 64, 32)
    frame = noise_frame(fmt, seed=7)
    engine = AddressEngine()
    def run_all():
        results = {}
        for name, config in (
                ("intra CON_0 Y", intra_config(INTRA_COPY, fmt)),
                ("intra CON_8 Y", intra_config(INTRA_HOMOGENEITY, fmt)),
                ("intra CON_8 YUV", intra_config(INTRA_HOMOGENEITY, fmt,
                                                 ChannelSet.YUV))):
            results[name] = engine.run_call(config, frame).zbt_pixel_ops
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert len(set(results.values())) == 1
    save_report("table2_hw_invariance", format_table(
        ["workload", "hw pixel ops"], list(results.items()),
        title="Table 2 -- hardware accesses invariant across workloads"))
