"""Experiment ASYNC -- trace-driven open-loop sweep through repro.aio.

A seeded multi-tenant arrival trace (smooth INTERACTIVE viewfinder,
double-weight STANDARD pipeline, bursty BULK reprocess) is synthesized
once at the modeled capacity of a 4-board pool and re-timed to three
offered-load levels, then replayed through the asyncio facade: a
producer task submitting under backpressure, a consumer task
accounting-and-releasing off the completion stream.  Latency and
goodput are measured on the modeled clock, so the books are
deterministic and machine-independent; wall latency rides along to
judge the harness itself.

What must hold:

* at the mid (near-saturation) level, goodput is at least 0.95x the
  offered load -- the facade must keep a 4-board pool fed;
* modeled p95 is finite at every sub-overload level;
* at 1.5x capacity the service sheds (admission rejects and/or
  deadline timeouts) instead of queueing without bound, so the
  goodput ratio falls below the near-saturation level's;
* accounting balances: every offered request lands in exactly one of
  completed / rejected / timed-out.

The mid level replays ``REPRO_ASYNC_REQUESTS`` requests (default
100000; CI's async-smoke job sets 10000); the outer levels replay a
fifth of that.  Results land in ``BENCH_async.json`` at the repo root.
"""

import json
import os
import pathlib

from repro.api import (AdmissionPolicy, EnginePool, EngineService,
                       Priority, ServicePolicy)
from repro.load import (ArrivalTrace, CallFactory, TenantSpec, TraceSpec,
                        replay_async, sweep_report_dict)
from repro.perf import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REQUESTS = int(os.environ.get("REPRO_ASYNC_REQUESTS", "100000"))
LOAD_LEVELS = (0.5, 0.9, 1.5)
MID_LEVEL = 0.9
BOARDS = 4
QUEUE_DEPTH = 256
MAX_BATCH = 8
#: Backlog budget for admission, in units of one mean call's cost.
BUDGET_CALLS = 40.0
SEED = 0xA5F0

TENANTS = (
    TenantSpec("viewfinder", weight=1.0, priority=Priority.INTERACTIVE,
               deadline_seconds=0.050),
    TenantSpec("pipeline", weight=2.0, priority=Priority.STANDARD),
    TenantSpec("reprocess", weight=1.0, priority=Priority.BULK,
               burst_factor=4.0),
)


def _mean_call_cost(trace):
    """Mean modeled overlapped cost per trace call (admission prices
    from geometry alone, so a small sample prices the whole mix)."""
    probe = EngineService()
    factory = CallFactory(trace)
    sample = trace.entries[:512]
    return sum(probe.admission.price(factory.call(e))[1]
               for e in sample) / len(sample)


def _measured_capacity_per_s():
    """Saturated service rate for this mix, measured, not assumed.

    The analytic bound (boards / mean overlapped cost) overstates what
    wave formation actually achieves on a mixed-geometry trace, so the
    sweep anchors on a measurement: a deadline-free burst of arrivals
    offered effectively at once (no admission policy, backpressure
    holding the producer), completed under the modeled clock.  The
    achieved completions-per-modeled-second IS the capacity the levels
    are fractions of.
    """
    tenants = tuple(TenantSpec(t.name, weight=t.weight,
                               priority=t.priority,
                               burst_factor=t.burst_factor)
                    for t in TENANTS)
    trace = ArrivalTrace.synthesize(TraceSpec(
        requests=min(REQUESTS, 2048), rate_per_s=1e6, seed=SEED,
        tenants=tenants))
    service = EngineService(pool=EnginePool.of_engines(BOARDS),
                            policy=ServicePolicy(
                                queue_depth=QUEUE_DEPTH,
                                max_batch=MAX_BATCH))
    report = replay_async(trace, service)
    assert report.completed == len(trace)
    return report.goodput_per_s


def _service(budget_seconds):
    return EngineService(
        pool=EnginePool.of_engines(BOARDS),
        policy=ServicePolicy(
            queue_depth=QUEUE_DEPTH, max_batch=MAX_BATCH,
            admission=AdmissionPolicy(
                deadline_budget_seconds=budget_seconds)))


def test_async_load_sweep(save_report):
    # One base trace at 1.0x the pool's modeled capacity; each level is
    # the same request sequence re-timed, so the curve varies offered
    # load and nothing else.
    calibration = ArrivalTrace.synthesize(TraceSpec(
        requests=min(REQUESTS, 2048), rate_per_s=1.0, seed=SEED,
        tenants=TENANTS))
    call_cost = _mean_call_cost(calibration)
    capacity_per_s = _measured_capacity_per_s()
    budget_seconds = BUDGET_CALLS * call_cost

    base = ArrivalTrace.synthesize(TraceSpec(
        requests=REQUESTS, rate_per_s=capacity_per_s, seed=SEED,
        tenants=TENANTS))

    reports = []
    for load in LOAD_LEVELS:
        level_trace = base.scaled(load)
        if load != MID_LEVEL:
            level_trace = level_trace.head(max(1, REQUESTS // 5))
        reports.append(replay_async(level_trace,
                                    _service(budget_seconds),
                                    load_factor=load))
    under, mid, over = reports

    # Accounting balances at every level.
    for report in reports:
        assert report.accounted == report.offered_requests

    # The facade keeps the pool fed near saturation...
    assert mid.goodput_ratio >= 0.95
    # ...with finite latency tails below overload...
    assert under.modeled_latency.p95 is not None
    assert mid.modeled_latency.p95 is not None
    assert under.modeled_latency.p95 <= mid.modeled_latency.p95
    # ...and sheds at overload instead of queueing without bound: the
    # goodput *ratio* falls (offered work is refused, not deferred
    # into an unbounded queue).
    assert over.rejected + over.timed_out > 0
    assert over.goodput_ratio < mid.goodput_ratio

    payload = sweep_report_dict(reports, trace_meta={
        "seed": SEED,
        "requests_mid": REQUESTS,
        "requests_outer": max(1, REQUESTS // 5),
        "boards": BOARDS,
        "queue_depth": QUEUE_DEPTH,
        "max_batch": MAX_BATCH,
        "mean_call_cost_ms": call_cost * 1e3,
        "capacity_per_s": capacity_per_s,
        "budget_calls": BUDGET_CALLS,
        "tenants": [t.name for t in TENANTS],
        "load_levels": list(LOAD_LEVELS),
        "mid_level": MID_LEVEL,
    })
    (REPO_ROOT / "BENCH_async.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    def _ms(value):
        return "--" if value is None else f"{value * 1e3:.2f} ms"

    save_report("async_load", format_table(
        ["load", "offered", "served", "shed", "goodput",
         "p50", "p95", "p99", "bp waits", "wall req/s"],
        [(f"{r.load_factor:.1f}x", r.offered_requests, r.completed,
          r.rejected + r.timed_out, f"{r.goodput_ratio:.3f}",
          _ms(r.modeled_latency.p50), _ms(r.modeled_latency.p95),
          _ms(r.modeled_latency.p99), r.backpressure_waits,
          f"{r.requests_per_wall_s:.0f}")
         for r in reports],
        title=(f"Async open-loop sweep, {BOARDS}-board pool, modeled "
               f"capacity {capacity_per_s:.0f} calls/s "
               f"(mean call cost {call_cost * 1e3:.3f} ms)")))
