"""Experiment C1 -- the factor-30 profiling estimate (section 1).

'Based on instruction level profiling of a video object segmentation
algorithm the maximum achievable acceleration with AddressEngine is
estimated as a factor of 30, taking into account that all high level
parts of the algorithm are executed on the main CPU and only low level
operations are executed on AddressEngine.'
"""

import pytest

from repro.image import QCIF, blob_frame
from repro.perf import format_table
from repro.segmentation import profile_segmentation_workload

PAPER_ESTIMATE = 30.0


@pytest.fixture(scope="module")
def workload():
    frame = blob_frame(QCIF, [(40, 40), (120, 70), (60, 110)], radius=20)
    return profile_segmentation_workload(frame)


def test_claim_factor30(benchmark, save_report):
    frame = blob_frame(QCIF, [(40, 40), (120, 70), (60, 110)], radius=20)
    workload = benchmark.pedantic(profile_segmentation_workload, (frame,),
                                  rounds=1, iterations=1)

    bound = workload.amdahl_bound
    assert bound == pytest.approx(PAPER_ESTIMATE, rel=0.35)
    assert workload.offloadable_fraction > 0.95

    rows = [
        ("low-level (AddressLib) instructions",
         f"{workload.low_level.total_instructions:.3e}"),
        ("high-level (host) instructions",
         f"{workload.high_level.total_instructions:.3e}"),
        ("offloadable fraction",
         f"{workload.offloadable_fraction:.4f}"),
        ("Amdahl bound (max acceleration)", f"{bound:.1f}"),
        ("paper estimate", f"{PAPER_ESTIMATE:.0f}"),
        ("addressing share of low-level work",
         f"{workload.addressing_fraction_of_low_level:.3f}"),
    ]
    save_report("claim_profiling", format_table(
        ["quantity", "value"], rows,
        title="Claim C1 -- instruction profile of the segmentation "
              "workload and the factor-30 bound"))


def test_claim_addressing_dominates_processing(workload, benchmark,
                                               save_report):
    """'Pixel address calculations are the dominant operations ...
    exceeding even pixel processing.'"""
    low = workload.low_level
    benchmark(lambda: low.addressing_fraction)
    assert low.addressing_instructions > 2 * low.processing_instructions
    save_report("claim_addressing_split", format_table(
        ["class group", "instructions", "share"],
        [("addressing (addr/load/store/branch)",
          f"{low.addressing_instructions:.3e}",
          f"{low.addressing_fraction:.3f}"),
         ("processing (alu/mul)",
          f"{low.processing_instructions:.3e}",
          f"{1 - low.addressing_fraction:.3f}")],
        title="Claim C1 -- addressing vs processing inside the "
              "offloadable work"))


def test_claim_bound_scales_with_high_level_share(workload, benchmark):
    """Sanity: adding host work lowers the bound (Amdahl direction)."""
    from repro.addresslib import InstructionCost, OpProfile
    heavier = benchmark(OpProfile)
    heavier.merge(workload.high_level)
    heavier.add_cost(InstructionCost(alu=workload.high_level
                                     .total_instructions))
    serial = 1 - (workload.low_level.total_instructions
                  / (workload.low_level.total_instructions
                     + heavier.total_instructions))
    assert 1 / serial < workload.amdahl_bound
