"""Ablation -- call chaining on the on-board memory.

The paper identifies the PCI as the bottleneck and suggests replacing it
with an on-chip bus; a cheaper step in the same direction is *chaining*:
keep frames resident in the ZBT between AddressLib calls, ship only what
changed.  This bench quantifies the effect on two realistic call chains.
"""

import pytest

from repro.addresslib import (AddressLib, INTER_ABSDIFF, INTRA_BOX3,
                              INTRA_GRAD, threshold_op)
from repro.host import EngineBackend
from repro.image import CIF, gradient_frame, checkerboard_frame
from repro.perf import format_table


def edge_mask_chain(lib, frame):
    """gradient -> blur -> threshold: a 3-call intra pipeline where each
    stage consumes the previous stage's result."""
    edges = lib.intra(INTRA_GRAD, frame)
    smooth = lib.intra(INTRA_BOX3, edges)
    return lib.intra(threshold_op(32), smooth)


def gme_sad_pattern(lib, reference, candidates):
    """The GME inner loop: repeated SAD calls against one reference."""
    return [lib.inter_reduce(INTER_ABSDIFF, reference, candidate)
            for candidate in candidates]


def total_seconds(lib):
    return sum(r.extra["call_seconds"] for r in lib.log.records)


def total_pci_words(lib):
    return sum(r.extra["pci_words"] for r in lib.log.records)


def test_chaining_on_intra_pipeline(benchmark, save_report):
    frame = gradient_frame(CIF)
    plain = AddressLib(EngineBackend())
    chained = AddressLib(EngineBackend(chain_frames=True))

    result_plain = edge_mask_chain(plain, frame)
    result_chained = benchmark.pedantic(
        lambda: edge_mask_chain(chained, frame), rounds=1, iterations=1)
    assert result_plain.equals(result_chained)

    saving_t = 1 - total_seconds(chained) / total_seconds(plain)
    saving_w = 1 - total_pci_words(chained) / total_pci_words(plain)
    # Stages 2-3 ship nothing *in* (results still come back per stage).
    for record in chained.log.records[1:]:
        assert record.extra["pci_words"] == 2 * CIF.pixels
    assert saving_w == pytest.approx(1 / 3, abs=0.02)
    assert saving_t > 0.15

    save_report("chaining_pipeline", format_table(
        ["configuration", "time", "PCI words"],
        [("per-call round trips (v1 behaviour)",
          f"{total_seconds(plain) * 1e3:.1f} ms",
          int(total_pci_words(plain))),
         ("chained on-board frames",
          f"{total_seconds(chained) * 1e3:.1f} ms",
          int(total_pci_words(chained))),
         ("saving", f"{saving_t * 100:.0f}%", f"{saving_w * 100:.0f}%")],
        title="Ablation -- chaining a 3-call edge-mask pipeline (CIF)"))


def test_chaining_on_gme_sad_pattern(benchmark, save_report):
    reference = gradient_frame(CIF)
    candidates = [checkerboard_frame(CIF, cell=8 + 2 * i)
                  for i in range(4)]
    plain = AddressLib(EngineBackend())
    chained = AddressLib(EngineBackend(chain_frames=True))

    sads_plain = gme_sad_pattern(plain, reference, candidates)
    sads_chained = benchmark.pedantic(
        lambda: gme_sad_pattern(chained, reference, candidates),
        rounds=1, iterations=1)
    assert sads_plain == sads_chained

    # After the first call the reference is resident: later SADs ship
    # one image instead of two.
    per_call_plain = [r.extra["pci_words"]
                      for r in plain.log.records]
    per_call_chained = [r.extra["pci_words"]
                        for r in chained.log.records]
    assert per_call_chained[0] == per_call_plain[0]
    assert all(w == per_call_plain[0] - 2 * CIF.pixels
               for w in per_call_chained[1:])

    saving = 1 - total_seconds(chained) / total_seconds(plain)
    assert saving > 0.25
    save_report("chaining_gme_sad", format_table(
        ["configuration", "time", "PCI words"],
        [("reference reshipped per SAD",
          f"{total_seconds(plain) * 1e3:.1f} ms",
          int(total_pci_words(plain))),
         ("reference kept resident",
          f"{total_seconds(chained) * 1e3:.1f} ms",
          int(total_pci_words(chained))),
         ("saving", f"{saving * 100:.0f}%", "")],
        title="Ablation -- chaining the GME SAD pattern "
              "(1 reference, 4 candidates, CIF)"))
