"""Experiment POOL -- closed-batch makespan versus pool size.

The same seeded batch of mixed intra/inter calls is drained through an
:class:`~repro.api.EngineService` backed by a real
:class:`~repro.api.EnginePool` of 1, 2 and 4 boards.  Everything runs
on the modeled clock, so the sweep is deterministic and
machine-independent.

What must hold:

* every pool size completes the whole batch and returns bit-identical
  pixel results (the pool shards *where* a wave runs, never *what* it
  computes);
* the modeled makespan shrinks with pool size, with a speedup of at
  least 1.8x at four boards;
* the routed-call books cover the batch: per-worker ``calls_routed``
  sums to the batch size at every pool size.

Results land in ``BENCH_pool.json`` at the repo root.
"""

import json
import pathlib
import random

from repro.addresslib import (BatchCall, INTER_ABSDIFF, INTRA_BOX3,
                              INTRA_GRAD)
from repro.api import (EnginePool, EngineService, ServicePolicy,
                       SubmitOptions)
from repro.image import ImageFormat, noise_frame
from repro.perf import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

QCIF = ImageFormat("QCIF", 176, 144)

CALLS = 48
POOL_SIZES = (1, 2, 4)
SEED = 0xFA57


def _batch(rng):
    calls = []
    for _ in range(CALLS):
        frame = noise_frame(QCIF, seed=rng.randrange(24))
        if rng.random() < 0.3:
            other = noise_frame(QCIF, seed=rng.randrange(24))
            calls.append(BatchCall.inter(INTER_ABSDIFF, frame, other))
        else:
            calls.append(BatchCall.intra(
                rng.choice((INTRA_GRAD, INTRA_BOX3)), frame))
    return calls


def _run_size(size):
    """Drain the whole seeded batch through a ``size``-board pool."""
    calls = _batch(random.Random(SEED))
    service = EngineService(pool=EnginePool.of_engines(size),
                            policy=ServicePolicy(queue_depth=CALLS,
                                                 max_batch=8))
    tickets = [service.submit(call, SubmitOptions(arrival_seconds=0.0))
               for call in calls]
    report = service.drain()
    results = [ticket.result() for ticket in tickets]
    return report, results


def test_pool_scaling(save_report):
    runs = {size: _run_size(size) for size in POOL_SIZES}
    baseline_report, baseline_results = runs[1]

    sizes = []
    for size in POOL_SIZES:
        report, results = runs[size]
        # Same batch, same answers: sharding is placement, not compute.
        assert len(results) == CALLS
        for got, want in zip(results, baseline_results):
            assert got.equals(want)
        assert report.completed == CALLS and report.rejected == 0
        pool = report.pool
        assert pool is not None and len(pool.workers) == size
        assert sum(w.calls_routed for w in pool.workers) == CALLS
        sizes.append({
            "pool_size": size,
            "makespan_seconds": report.clock_seconds,
            "speedup": (baseline_report.clock_seconds
                        / report.clock_seconds),
            "waves": report.waves,
            "calls_routed": [w.calls_routed for w in pool.workers],
            "service": report.to_dict(),
        })

    speedup_4 = sizes[-1]["speedup"]
    assert sizes[0]["speedup"] == 1.0
    # Makespan is monotone non-increasing in pool size...
    assert (sizes[0]["makespan_seconds"]
            >= sizes[1]["makespan_seconds"]
            >= sizes[2]["makespan_seconds"])
    # ...and four boards buy a real (modeled) speedup.
    assert speedup_4 >= 1.8

    payload = {
        "calls": CALLS,
        "seed": SEED,
        "pool_sizes": list(POOL_SIZES),
        "speedup_at_4": speedup_4,
        "levels": sizes,
    }
    (REPO_ROOT / "BENCH_pool.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("pool_scaling", format_table(
        ["boards", "makespan", "speedup", "waves", "routed"],
        [(lvl["pool_size"],
          f"{lvl['makespan_seconds'] * 1e3:.2f} ms",
          f"{lvl['speedup']:.2f}x", lvl["waves"],
          "/".join(str(n) for n in lvl["calls_routed"]))
         for lvl in sizes],
        title=(f"Closed-batch pool scaling, {CALLS} mixed calls "
               f"(seed {SEED:#x})")))
