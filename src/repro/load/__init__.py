"""Trace-driven open-loop load generation (``repro.load``).

Synthesizes seeded multi-tenant arrival traces
(:class:`~repro.load.trace.ArrivalTrace`: Poisson streams with optional
on/off bursts, JSON-replayable, re-timeable with ``scaled()``), replays
them against an :class:`~repro.service.EngineService` serially or
through the asyncio facade (:mod:`repro.aio`), and cuts
latency/goodput books per level (:class:`~repro.load.report.LoadReport`)
-- the machinery behind ``BENCH_async.json``.  See ``docs/LOAD.md``.
"""

from .report import LoadReport, TenantBook, sweep_report_dict
from .runner import areplay, replay_async, replay_serial
from .trace import (ArrivalTrace, CallFactory, TenantSpec, TraceEntry,
                    TraceSpec)

__all__ = [
    "ArrivalTrace",
    "CallFactory",
    "LoadReport",
    "TenantBook",
    "TenantSpec",
    "TraceEntry",
    "TraceSpec",
    "areplay",
    "replay_async",
    "replay_serial",
    "sweep_report_dict",
]
