"""Synthetic multi-tenant arrival traces: seeded, replayable, scalable.

An open-loop load test is only as good as its arrival process.  This
module synthesizes the one the MPSoC serving literature judges
multimedia systems by -- independent per-tenant Poisson streams, with
optional Markov-modulated on/off *bursts* for the tenants that do not
arrive smoothly -- and freezes it into an :class:`ArrivalTrace`: a
plain list of (arrival time, tenant, op, frame seeds) rows that can be
saved to JSON, reloaded bit-identically, re-timed to a different
offered load (:meth:`ArrivalTrace.scaled`), and replayed against any
service configuration (:mod:`repro.load.runner`).

Everything is seeded and closed over ``random.Random`` streams keyed by
``"{seed}:{tenant}"`` strings, so a trace synthesized from the same
:class:`TraceSpec` is identical on any machine and any Python hash
seed -- the property the determinism gates in ``BENCH_async.json``
stand on.
"""

from __future__ import annotations

import heapq
import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..addresslib.library import BatchCall
from ..addresslib.ops import INTER_OPS, INTRA_OPS
from ..image.formats import ImageFormat
from ..image.frame import Frame
from ..image.synth import noise_frame
from ..service.request import Priority

#: Trace JSON schema version (bump on incompatible format changes).
TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share and shape of the offered load.

    ``weight`` is the tenant's fraction of the aggregate arrival rate
    (normalised over all tenants).  A smooth tenant leaves
    ``burst_factor`` at 1.0; a bursty one alternates quiet and burst
    phases (exponentially distributed durations) where the burst phase
    multiplies the instantaneous rate by ``burst_factor`` while the
    quiet phase is thinned so the *long-run mean* rate still honours
    ``weight`` -- bursts change variance, never the offered totals.
    """

    name: str
    weight: float = 1.0
    priority: Priority = Priority.STANDARD
    #: Per-request relative deadline carried into ``SubmitOptions``.
    deadline_seconds: Optional[float] = None
    max_retries: int = 0
    #: Rate multiplier during burst phases (1.0 = pure Poisson).
    burst_factor: float = 1.0
    #: Long-run fraction of time spent in the burst phase.
    burst_fraction: float = 0.25
    #: Mean quiet+burst cycle length, in *nominal* requests.
    burst_cycle_requests: float = 64.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be > 0: {self.weight}")
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1.0: {self.burst_factor}")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError(
                f"burst_fraction must be in (0, 1): "
                f"{self.burst_fraction}")


def _default_tenants() -> Tuple[TenantSpec, ...]:
    return (TenantSpec("viewfinder", weight=1.0,
                       priority=Priority.INTERACTIVE),
            TenantSpec("pipeline", weight=2.0,
                       priority=Priority.STANDARD),
            TenantSpec("reprocess", weight=1.0, priority=Priority.BULK,
                       burst_factor=4.0))


@dataclass(frozen=True)
class TraceSpec:
    """Everything :meth:`ArrivalTrace.synthesize` needs, in one place."""

    #: Total requests across all tenants.
    requests: int = 10_000
    #: Aggregate offered arrival rate, requests per modeled second.
    rate_per_s: float = 1000.0
    tenants: Tuple[TenantSpec, ...] = field(
        default_factory=_default_tenants)
    seed: int = 0x10AD
    #: Frame geometry every call in the trace uses.
    width: int = 32
    height: int = 24
    #: Distinct noise frames the trace draws inputs from (shared
    #: objects at replay time, so residency affinity has state to hit).
    frame_pool: int = 32
    #: Fraction of calls using inter addressing (two frames).
    inter_fraction: float = 0.25
    #: Of the inter calls, the fraction reduced to a scalar.
    reduce_fraction: float = 0.3
    intra_ops: Tuple[str, ...] = ("intra_grad", "intra_box3")
    inter_ops: Tuple[str, ...] = ("inter_absdiff",)

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1: {self.requests}")
        if self.rate_per_s <= 0:
            raise ValueError(
                f"rate_per_s must be > 0: {self.rate_per_s}")
        if not self.tenants:
            raise ValueError("a trace needs at least one tenant")
        for name in self.intra_ops:
            if name not in INTRA_OPS:
                raise ValueError(f"unknown intra op {name!r}")
        for name in self.inter_ops:
            if name not in INTER_OPS:
                raise ValueError(f"unknown inter op {name!r}")


@dataclass(frozen=True)
class TraceEntry:
    """One arrival: when, who, and which call to build."""

    __slots__ = ("arrival_seconds", "tenant_index", "op", "seed_a",
                 "seed_b", "reduce_to_scalar")

    arrival_seconds: float
    tenant_index: int
    #: Registry op name (``INTRA_OPS`` / ``INTER_OPS`` key).
    op: str
    seed_a: int
    #: Second input's seed for inter calls; ``None`` for intra.
    seed_b: Optional[int]
    reduce_to_scalar: bool


class _TenantStream:
    """Lazy per-tenant arrival generator (heapq-merge friendly).

    Owns a private ``random.Random`` seeded from a stable string key,
    so per-tenant streams are independent and machine-independent.
    Burst modulation is a two-state Markov chain over exponential
    phase durations; the quiet rate is deflated so the long-run mean
    matches the tenant's nominal share.
    """

    def __init__(self, spec: TraceSpec, index: int) -> None:
        tenant = spec.tenants[index]
        total_weight = sum(t.weight for t in spec.tenants)
        self.index = index
        self.tenant = tenant
        self.rng = random.Random(f"{spec.seed}:{tenant.name}")
        self.nominal_rate = (spec.rate_per_s
                             * tenant.weight / total_weight)
        factor, fraction = tenant.burst_factor, tenant.burst_fraction
        # Mean of the modulated rate must equal the nominal rate:
        #   quiet*(1-f) + quiet*factor*f == nominal.
        self.quiet_rate = self.nominal_rate / (
            (1.0 - fraction) + factor * fraction)
        self.burst_rate = self.quiet_rate * factor
        cycle_seconds = (tenant.burst_cycle_requests
                         / self.nominal_rate)
        self.mean_burst_seconds = fraction * cycle_seconds
        self.mean_quiet_seconds = (1.0 - fraction) * cycle_seconds
        self.bursting = False
        self.phase_ends = self.rng.expovariate(
            1.0 / self.mean_quiet_seconds) if factor > 1.0 else None
        self.clock = 0.0

    def _rate(self) -> float:
        return self.burst_rate if self.bursting else self.quiet_rate

    def next_arrival(self) -> float:
        """Advance this tenant's clock to its next arrival."""
        while True:
            gap = self.rng.expovariate(self._rate())
            if self.phase_ends is None or (self.clock + gap
                                           <= self.phase_ends):
                self.clock += gap
                return self.clock
            # Crossed a phase boundary: discard the tail of the gap
            # (memorylessness makes the re-draw exact) and flip phase.
            self.clock = self.phase_ends
            self.bursting = not self.bursting
            mean = (self.mean_burst_seconds if self.bursting
                    else self.mean_quiet_seconds)
            self.phase_ends = self.clock + self.rng.expovariate(
                1.0 / mean)

    def make_entry(self, arrival: float, spec: TraceSpec) -> TraceEntry:
        rng = self.rng
        if rng.random() < spec.inter_fraction and spec.inter_ops:
            return TraceEntry(
                arrival_seconds=arrival, tenant_index=self.index,
                op=rng.choice(spec.inter_ops),
                seed_a=rng.randrange(spec.frame_pool),
                seed_b=rng.randrange(spec.frame_pool),
                reduce_to_scalar=rng.random() < spec.reduce_fraction)
        return TraceEntry(
            arrival_seconds=arrival, tenant_index=self.index,
            op=rng.choice(spec.intra_ops),
            seed_a=rng.randrange(spec.frame_pool), seed_b=None,
            reduce_to_scalar=False)


class ArrivalTrace:
    """A frozen multi-tenant arrival sequence plus its metadata."""

    def __init__(self, entries: Sequence[TraceEntry],
                 tenants: Tuple[TenantSpec, ...], seed: int,
                 rate_per_s: float, width: int, height: int,
                 frame_pool: int) -> None:
        self.entries: List[TraceEntry] = list(entries)
        self.tenants = tenants
        self.seed = seed
        #: Nominal aggregate offered rate (requests per modeled second).
        self.rate_per_s = rate_per_s
        self.width = width
        self.height = height
        self.frame_pool = frame_pool

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def format(self) -> ImageFormat:
        return ImageFormat(f"P{self.width}x{self.height}",
                           self.width, self.height)

    @property
    def duration_seconds(self) -> float:
        """Span of the arrival process (last arrival time)."""
        if not self.entries:
            return 0.0
        return self.entries[-1].arrival_seconds

    # -- synthesis ------------------------------------------------------------

    @classmethod
    def synthesize(cls, spec: TraceSpec) -> "ArrivalTrace":
        """Generate ``spec.requests`` arrivals by merging the
        per-tenant streams in time order (a k-way heap merge, so a
        million-request trace synthesizes in one pass)."""
        streams = [_TenantStream(spec, index)
                   for index in range(len(spec.tenants))]
        heap = [(stream.next_arrival(), stream.index)
                for stream in streams]
        heapq.heapify(heap)
        entries: List[TraceEntry] = []
        while len(entries) < spec.requests:
            arrival, index = heap[0]
            stream = streams[index]
            entries.append(stream.make_entry(arrival, spec))
            heapq.heapreplace(heap, (stream.next_arrival(), index))
        return cls(entries, tenants=spec.tenants, seed=spec.seed,
                   rate_per_s=spec.rate_per_s, width=spec.width,
                   height=spec.height, frame_pool=spec.frame_pool)

    # -- derivation -----------------------------------------------------------

    def scaled(self, load_factor: float) -> "ArrivalTrace":
        """The same request sequence offered ``load_factor`` times
        faster (arrival times divided, rate multiplied) -- one trace
        sweeps a whole latency/goodput curve."""
        if load_factor <= 0:
            raise ValueError(f"load_factor must be > 0: {load_factor}")
        entries = [replace(e, arrival_seconds=(e.arrival_seconds
                                               / load_factor))
                   for e in self.entries]
        return ArrivalTrace(entries, tenants=self.tenants,
                            seed=self.seed,
                            rate_per_s=self.rate_per_s * load_factor,
                            width=self.width, height=self.height,
                            frame_pool=self.frame_pool)

    def head(self, requests: int) -> "ArrivalTrace":
        """The first ``requests`` arrivals (for scaled-down smokes)."""
        return ArrivalTrace(self.entries[:requests],
                            tenants=self.tenants, seed=self.seed,
                            rate_per_s=self.rate_per_s,
                            width=self.width, height=self.height,
                            frame_pool=self.frame_pool)

    # -- JSON round trip ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Compact JSON payload (entries as rows, tenants by index)."""
        return {
            "kind": "arrival_trace",
            "version": TRACE_FORMAT_VERSION,
            "seed": self.seed,
            "rate_per_s": self.rate_per_s,
            "format": {"width": self.width, "height": self.height},
            "frame_pool": self.frame_pool,
            "tenants": [{
                "name": t.name,
                "weight": t.weight,
                "priority": str(t.priority),
                "deadline_seconds": t.deadline_seconds,
                "max_retries": t.max_retries,
            } for t in self.tenants],
            "entries": [[e.arrival_seconds, e.tenant_index, e.op,
                         e.seed_a, e.seed_b,
                         int(e.reduce_to_scalar)]
                        for e in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ArrivalTrace":
        if payload.get("kind") != "arrival_trace":
            raise ValueError("not an arrival-trace payload")
        if payload.get("version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"trace format version {payload.get('version')!r} "
                f"unsupported (expected {TRACE_FORMAT_VERSION})")
        tenants = tuple(
            TenantSpec(name=t["name"], weight=t["weight"],
                       priority=Priority[t["priority"].upper()],
                       deadline_seconds=t["deadline_seconds"],
                       max_retries=t["max_retries"])
            for t in payload["tenants"])  # type: ignore[index]
        fmt = payload["format"]
        entries = [TraceEntry(arrival_seconds=row[0],
                              tenant_index=row[1], op=row[2],
                              seed_a=row[3], seed_b=row[4],
                              reduce_to_scalar=bool(row[5]))
                   for row in payload["entries"]]  # type: ignore[union-attr]
        return cls(
            entries, tenants=tenants,
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            rate_per_s=float(
                payload["rate_per_s"]),  # type: ignore[arg-type]
            width=fmt["width"],  # type: ignore[index]
            height=fmt["height"],  # type: ignore[index]
            frame_pool=int(
                payload["frame_pool"]))  # type: ignore[arg-type]

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, separators=(",", ":"))
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ArrivalTrace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


class CallFactory:
    """Materializes trace entries into calls and submit options.

    Frames are synthesized once per (pool) seed and shared across every
    entry that names them -- identity sharing is what gives the
    residency caches and the affinity placement real state to work
    with, exactly like a camera pipeline resubmitting live buffers.
    """

    def __init__(self, trace: ArrivalTrace) -> None:
        self.trace = trace
        fmt = trace.format
        self._frames: Dict[int, Frame] = {
            seed: noise_frame(fmt, seed=seed)
            for seed in range(trace.frame_pool)}
        # One frozen options prototype per tenant; per-entry options
        # only swap the arrival stamp.
        from ..api import SubmitOptions
        self._prototypes = [
            SubmitOptions(priority=t.priority,
                          deadline_seconds=t.deadline_seconds,
                          max_retries=t.max_retries, tenant=t.name)
            for t in trace.tenants]

    def frame(self, seed: int) -> Frame:
        return self._frames[seed]

    def call(self, entry: TraceEntry) -> BatchCall:
        if entry.seed_b is None:
            return BatchCall.intra(INTRA_OPS[entry.op],
                                   self._frames[entry.seed_a])
        if entry.reduce_to_scalar:
            return BatchCall.inter_reduce(INTER_OPS[entry.op],
                                          self._frames[entry.seed_a],
                                          self._frames[entry.seed_b])
        return BatchCall.inter(INTER_OPS[entry.op],
                               self._frames[entry.seed_a],
                               self._frames[entry.seed_b])

    def options(self, entry: TraceEntry) -> "object":
        return replace(self._prototypes[entry.tenant_index],
                       arrival_seconds=entry.arrival_seconds)
