"""Trace replay: open-loop arrival streams driven against a service.

Two replay paths, one accounting discipline:

* :func:`replay_serial` -- the *blessed* synchronous open-loop pump
  (``run_until`` to the arrival, then ``submit``).  Hand-rolled copies
  of this loop are deprecated (``scripts/lint_no_deprecated.py`` rule
  R4 flags them); this function is the one allowlisted instance.
* :func:`replay_async` -- the same trace through
  :class:`~repro.aio.AsyncEngineClient`: a producer coroutine submits
  under backpressure while a consumer drains the completion stream.

Both account every resolved ticket into a :class:`LoadReport` and then
``release()`` it, so a million-request replay holds O(queue depth)
tickets and result frames, not O(trace).  Both pace the *modeled*
clock from the trace's arrival stamps, so the books they cut are
machine-independent and (for the functional results) bit-exact with
each other.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List

from ..aio import AsyncEngineClient
from ..service.engine_service import EngineService
from ..service.request import ServiceTicket
from .report import LoadReport
from .trace import ArrivalTrace, CallFactory


def _new_report(trace: ArrivalTrace, mode: str,
                load_factor: float) -> LoadReport:
    return LoadReport(mode=mode, load_factor=load_factor,
                      offered_requests=len(trace),
                      offered_rate_per_s=trace.rate_per_s,
                      offered_duration_seconds=trace.duration_seconds)


def replay_serial(trace: ArrivalTrace, service: EngineService, *,
                  load_factor: float = 1.0,
                  release: bool = True) -> LoadReport:
    """Replay ``trace`` synchronously; returns the level's books.

    This is the canonical open-loop pump: advance the modeled clock to
    each arrival (dispatching every wave startable before it), submit,
    and fold freshly resolved tickets into the books as they retire.
    """
    factory = CallFactory(trace)
    report = _new_report(trace, "serial", load_factor)
    tenant_of: Dict[int, str] = {}
    resolved: List[ServiceTicket] = []
    previous_hook = service.on_resolved
    service.on_resolved = resolved.append

    def settle() -> None:
        while resolved:
            ticket = resolved.pop()
            report.account(ticket, tenant_of.pop(ticket.request_id))
            if release:
                service.release(ticket)

    wall_start = time.perf_counter()
    try:
        for entry in trace.entries:
            call = factory.call(entry)
            options = factory.options(entry)
            service.run_until(entry.arrival_seconds)
            ticket = service.submit(call, options)
            tenant_of[ticket.request_id] = (
                trace.tenants[entry.tenant_index].name)
            settle()
        report.service = service.drain()
        settle()
    finally:
        service.on_resolved = previous_hook
    report.wall_elapsed_seconds = time.perf_counter() - wall_start
    return report


def replay_async(trace: ArrivalTrace, service: EngineService, *,
                 load_factor: float = 1.0, backpressure: bool = True,
                 release: bool = True) -> LoadReport:
    """Replay ``trace`` through the asyncio facade (own event loop)."""
    return asyncio.run(areplay(trace, service, load_factor=load_factor,
                               backpressure=backpressure,
                               release=release))


async def areplay(trace: ArrivalTrace, service: EngineService, *,
                  load_factor: float = 1.0, backpressure: bool = True,
                  release: bool = True) -> LoadReport:
    """:func:`replay_async` for callers already inside an event loop.

    A producer task submits the trace in arrival order (suspending on
    backpressure when the bounded queue is at depth); a consumer task
    accounts and releases tickets off the completion stream as waves
    retire -- the streaming pattern an application front end uses.
    """
    factory = CallFactory(trace)
    report = _new_report(trace, "async", load_factor)
    tenant_of: Dict[int, str] = {}
    total = len(trace)
    wall_start = time.perf_counter()
    async with AsyncEngineClient(service,
                                 backpressure=backpressure) as client:
        # Opened before the first submit: registration is eager, so no
        # ticket can resolve into the void while the consumer task is
        # still waiting for its first slice of the event loop.
        stream = client.completions()

        async def consume() -> None:
            accounted = 0
            if accounted >= total:  # empty trace: nothing will stream
                await stream.aclose()
                return
            async with stream:
                async for async_ticket in stream:
                    report.account(
                        async_ticket.ticket,
                        tenant_of.pop(async_ticket.request_id),
                        async_ticket.wall_latency_seconds)
                    if release:
                        client.release(async_ticket)
                    accounted += 1
                    if accounted >= total:
                        break

        consumer = asyncio.ensure_future(consume())
        try:
            for entry in trace.entries:
                async_ticket = await client.submit(
                    factory.call(entry), factory.options(entry))
                # Recorded before any await, so the consumer (which
                # only runs at a yield) always finds the mapping.
                tenant_of[async_ticket.request_id] = (
                    trace.tenants[entry.tenant_index].name)
            report.service = await client.drain()
            await consumer
        finally:
            consumer.cancel()
        report.backpressure_waits = client.backpressure_waits
        report.backpressure_wall_seconds = (
            client.backpressure_wall_seconds)
    report.wall_elapsed_seconds = time.perf_counter() - wall_start
    return report
