"""Load-replay books: latency/goodput curves with per-tenant breakdown.

One :class:`LoadReport` is cut per replayed trace level.  It keeps two
latency books side by side -- *modeled* end-to-end latency on the
service's deterministic virtual clock (machine-independent, what the
gates check) and *wall* latency through the asyncio facade (what a
human reads to judge the harness itself) -- plus completion, reject,
timeout, and backpressure accounting, broken down per tenant.  The
serialized form follows the shared ``perf.report`` schema, so
``BENCH_async.json`` nests cleanly next to every other report kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..perf.latency import LatencyTracker
from ..perf.report import base_report_dict
from ..service.engine_service import ServiceReport
from ..service.request import RequestState, ServiceTicket


@dataclass
class TenantBook:
    """One tenant's slice of a replay's books."""

    name: str
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    timed_out: int = 0
    #: Modeled end-to-end latency of this tenant's completions.
    modeled_latency: LatencyTracker = field(
        default_factory=LatencyTracker)

    @property
    def sheds(self) -> int:
        """Rejections plus deadline expiries: the shedding this tenant
        absorbed (the complement of ``completed``)."""
        return self.rejected + self.timed_out

    def to_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "sheds": self.sheds,
            "modeled_latency": self.modeled_latency.to_dict(),
        }


@dataclass
class LoadReport:
    """The books of one trace replay at one offered-load level."""

    #: ``"serial"`` or ``"async"`` -- which replay path produced this.
    mode: str
    #: Multiplier applied to the base trace for this level.
    load_factor: float
    #: Requests in the (scaled) trace.
    offered_requests: int
    #: Nominal offered arrival rate of the scaled trace (req/modeled s).
    offered_rate_per_s: float
    #: Span of the scaled arrival process in modeled seconds.
    offered_duration_seconds: float = 0.0
    completed: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    timed_out: int = 0
    #: Modeled end-to-end latency of completed requests.
    modeled_latency: LatencyTracker = field(
        default_factory=LatencyTracker)
    #: Wall submit-to-resolve latency (async replays only).
    wall_latency: LatencyTracker = field(default_factory=LatencyTracker)
    #: Submits that suspended at least once on a full queue (async).
    backpressure_waits: int = 0
    #: Wall seconds producers spent suspended (async).
    backpressure_wall_seconds: float = 0.0
    #: Wall seconds the whole replay took (submission through drain).
    wall_elapsed_seconds: float = 0.0
    tenants: Dict[str, TenantBook] = field(default_factory=dict)
    #: The service's own books, cut at drain.
    service: Optional[ServiceReport] = None

    # -- accounting -----------------------------------------------------------

    def tenant(self, name: str) -> TenantBook:
        book = self.tenants.get(name)
        if book is None:
            book = self.tenants[name] = TenantBook(name)
        return book

    def account(self, ticket: ServiceTicket, tenant_name: str,
                wall_latency_seconds: Optional[float] = None) -> None:
        """Fold one resolved ticket into the books.

        Accounting consumes only scalars off the ticket, so the caller
        is free to :meth:`~repro.service.EngineService.release` it (and
        drop its result frame) immediately afterwards -- the discipline
        that keeps a million-request replay at constant memory.
        """
        book = self.tenant(tenant_name)
        book.submitted += 1
        if ticket.state is RequestState.COMPLETED:
            self.completed += 1
            book.completed += 1
            latency = ticket.latency_seconds
            assert latency is not None
            self.modeled_latency.record(latency)
            book.modeled_latency.record(latency)
            if wall_latency_seconds is not None:
                self.wall_latency.record(wall_latency_seconds)
        elif ticket.state is RequestState.REJECTED:
            reason = str(ticket.reject_reason)
            self.rejected_by_reason[reason] = (
                self.rejected_by_reason.get(reason, 0) + 1)
            book.rejected += 1
        elif ticket.state is RequestState.TIMED_OUT:
            self.timed_out += 1
            book.timed_out += 1
        else:
            raise ValueError(
                f"cannot account an unresolved ticket "
                f"(request {ticket.request_id} is {ticket.state})")

    # -- derived figures ------------------------------------------------------

    @property
    def rejected(self) -> int:
        return sum(self.rejected_by_reason.values())

    @property
    def accounted(self) -> int:
        return self.completed + self.rejected + self.timed_out

    @property
    def goodput_per_s(self) -> float:
        """Completions per modeled second over the whole run (arrival
        of the first request through drain of the last wave)."""
        if self.service is None or self.service.clock_seconds <= 0.0:
            return 0.0
        return self.completed / self.service.clock_seconds

    @property
    def goodput_ratio(self) -> float:
        """Goodput over offered load: 1.0 means the service kept up
        with the arrival process, completion for completion."""
        if self.offered_requests == 0:
            return 0.0
        return self.completed / self.offered_requests

    @property
    def requests_per_wall_s(self) -> float:
        """Harness throughput in real time (how fast the replay ran)."""
        if self.wall_elapsed_seconds <= 0.0:
            return 0.0
        return self.accounted / self.wall_elapsed_seconds

    def to_dict(self) -> Dict[str, object]:
        """Schema-conforming books (see ``perf.report``)."""
        service = self.service
        return base_report_dict(
            "load",
            calls=self.completed,
            cycles=(service.busy_seconds * service.clock_hz
                    if service else 0.0),
            cache=(service.pool.residency
                   if service and service.pool else {}),
            shed=self.rejected + self.timed_out,
            mode=self.mode,
            load_factor=self.load_factor,
            offered_requests=self.offered_requests,
            offered_rate_per_s=self.offered_rate_per_s,
            offered_duration_seconds=self.offered_duration_seconds,
            completed=self.completed,
            rejected_by_reason=dict(self.rejected_by_reason),
            timed_out=self.timed_out,
            goodput_per_s=self.goodput_per_s,
            goodput_ratio=self.goodput_ratio,
            modeled_latency=self.modeled_latency.to_dict(),
            wall_latency=self.wall_latency.to_dict(),
            backpressure_waits=self.backpressure_waits,
            backpressure_wall_seconds=self.backpressure_wall_seconds,
            wall_elapsed_seconds=self.wall_elapsed_seconds,
            requests_per_wall_s=self.requests_per_wall_s,
            tenants={name: book.to_dict()
                     for name, book in sorted(self.tenants.items())},
            sheds_by_tenant={name: book.sheds
                             for name, book in sorted(self.tenants.items())
                             if book.sheds},
            service=(service.to_dict() if service else None),
        )


def sweep_report_dict(levels: List[LoadReport],
                      trace_meta: Dict[str, object]) -> Dict[str, object]:
    """The ``BENCH_async.json`` payload: one entry per swept level,
    keyed by load factor, plus the trace's identifying metadata."""
    return {
        "kind": "load_sweep",
        "trace": trace_meta,
        "levels": [report.to_dict() for report in levels],
    }
