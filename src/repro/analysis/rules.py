"""Per-call rules: configuration, capacity, liveness, fast-path.

Every rule inspects one :class:`~repro.core.config.EngineConfig` (plus
the :class:`~repro.analysis.params.EngineParams` it would run under) and
yields :class:`~repro.analysis.diagnostics.Diagnostic` findings.  The
program-level dataflow rules live in :mod:`repro.analysis.hazards`.

Rule ids are stable: tests and downstream tooling key on them.  The
catalogue (:data:`RULES`) is what ``repro-check --list-rules`` and
``docs/ANALYSIS.md`` render.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..addresslib.addressing import MAX_NEIGHBOURHOOD_LINES, AddressingMode
from ..addresslib.ops import IntraOp
from ..core.config import EngineConfig
from ..core.constraints import (FALLBACK_OP_LATENCY, FALLBACK_SINGLE_STRIP,
                                FALLBACK_TICK_RATES, FAST_PATH_MAX_OP_CYCLES,
                                FAST_PATH_MIN_STRIPS, RESULT_BANK_PIXELS,
                                default_max_cycles, fast_path_blockers,
                                input_bank_words_needed, min_call_cycles)
from ..image.formats import STRIP_LINES
from .diagnostics import Diagnostic, Severity
from .params import EngineParams


@dataclass(frozen=True)
class Rule:
    """Catalogue entry: what a rule id means."""

    rule_id: str
    severity: Severity
    layer: str
    title: str


RULES: Dict[str, Rule] = {r.rule_id: r for r in (
    Rule("CFG001", Severity.ERROR, "configuration",
         "call rejected by the engine's own configuration validation"),
    Rule("CAP001", Severity.ERROR, "capacity",
         "result image overflows a result bank"),
    Rule("CAP002", Severity.ERROR, "capacity",
         "input image overflows its input bank pair"),
    Rule("CAP003", Severity.ERROR, "capacity",
         "neighbourhood spans more lines than the IIM holds per image"),
    Rule("CAP004", Severity.ERROR, "capacity",
         "neighbourhood spans more lines than the matrix register"),
    Rule("CAP005", Severity.INFO, "capacity",
         "frame height leaves a partial final strip"),
    Rule("HAZ001", Severity.ERROR, "hazard",
         "read of a plane no earlier step wrote"),
    Rule("HAZ002", Severity.ERROR, "hazard",
         "step writes a plane it also reads (in-place aliasing)"),
    Rule("HAZ003", Severity.ERROR, "hazard",
         "resident claim not satisfied by the previous call's banks"),
    Rule("HAZ004", Severity.WARNING, "hazard",
         "inter step reads the same plane on both inputs"),
    Rule("HAZ005", Severity.WARNING, "hazard",
         "dead store: plane written but never read nor returned"),
    Rule("HAZ006", Severity.ERROR, "hazard",
         "plane consumed under a different format than it was produced"),
    Rule("LIV001", Severity.ERROR, "liveness",
         "cycle bound below the provable minimum (guaranteed deadlock)"),
    Rule("LIV002", Severity.ERROR, "liveness",
         "PLC tick rate is zero: pixel-cycles can never retire"),
    Rule("LIV003", Severity.ERROR, "liveness",
         "input TxU tick rate is zero: strips can never reach the IIM"),
    Rule("LIV004", Severity.WARNING, "liveness",
         "cycle bound below the engine default for this format"),
    Rule("FPA001", Severity.INFO, "fast-path",
         "op latency exceeds the batched stepper's regime"),
    Rule("FPA002", Severity.INFO, "fast-path",
         "single-strip format never leaves warm-up/drain"),
    Rule("FPA003", Severity.INFO, "fast-path",
         "instrumented tick rates force the per-cycle loop"),
    Rule("FPA004", Severity.INFO, "fast-path",
         "fast path disabled engine-wide"),
    Rule("SCH001", Severity.INFO, "scheduling",
         "dependency graph fully serialises: no exploitable call "
         "parallelism"),
    Rule("SVC001", Severity.INFO, "service",
         "modeled critical-path cost exceeds the deadline-cycles "
         "budget"),
    Rule("SVC002", Severity.WARNING, "service",
         "placement hints split a producer/consumer pair across "
         "boards, defeating residency affinity"),
    Rule("SVC003", Severity.WARNING, "service",
         "tenant p95 target unreachable under the admission budget "
         "and fair-share weights"),
    Rule("SHM001", Severity.ERROR, "transport",
         "source plane mutated while its shipped handle is still in "
         "flight within the wave"),
    Rule("SHM002", Severity.ERROR, "transport",
         "result segment adopted after the plane store closed"),
    Rule("SHM003", Severity.ERROR, "transport",
         "segment lifecycle imbalance: released without a live "
         "registration, or orphaned by a worker death"),
    Rule("RES001", Severity.ERROR, "residency",
         "worker cache serves a frame at a stale generation"),
    Rule("RES002", Severity.WARNING, "residency",
         "residency eviction horizon shorter than a wave's reuse "
         "distance: evicted frame re-shipped unchanged"),
    Rule("POOL001", Severity.ERROR, "pool",
         "requeue-on-failover interleaves RAW-dependent calls into "
         "one wave"),
    Rule("POOL002", Severity.WARNING, "pool",
         "actual placement splits a producer/consumer pair across "
         "boards, forcing a cross-board reship"),
)}

#: Fallback reason code -> the FPA rule that reports it.
_FALLBACK_RULE_IDS = {
    FALLBACK_OP_LATENCY: "FPA001",
    FALLBACK_SINGLE_STRIP: "FPA002",
    FALLBACK_TICK_RATES: "FPA003",
}


def _diag(rule_id: str, message: str, *,
          step_index: Optional[int] = None, step_label: str = "",
          location: Optional[str] = None) -> Diagnostic:
    return Diagnostic(rule_id=rule_id, severity=RULES[rule_id].severity,
                      message=message, step_index=step_index,
                      step_label=step_label, location=location)


def capacity_rules(config: EngineConfig,
                   params: EngineParams) -> List[Diagnostic]:
    """CAP001-CAP005: will the call's data fit the board?"""
    findings: List[Diagnostic] = []
    fmt = config.fmt
    if config.produces_image and fmt.pixels > params.bank_words // 2:
        findings.append(_diag(
            "CAP001",
            f"{fmt.name} result needs {fmt.pixels * 2} words in one "
            f"result bank ({fmt.pixels} pixels x 2 words), but a bank "
            f"holds {params.bank_words} "
            f"(max {RESULT_BANK_PIXELS} result pixels)"))
    input_words = input_bank_words_needed(fmt.pixels, fmt.strips,
                                          fmt.width, config.images_in)
    if input_words > params.bank_words:
        findings.append(_diag(
            "CAP002",
            f"{fmt.name} input needs {input_words} words per bank of its "
            f"pair, but a bank holds {params.bank_words}"))
    if config.mode is AddressingMode.INTRA and isinstance(config.op,
                                                          IntraOp):
        span = config.op.neighbourhood.line_span
        available = params.iim_lines_per_image(config.images_in)
        if span > available:
            findings.append(_diag(
                "CAP003",
                f"{config.op.name} needs {span} lines in the IIM, but "
                f"only {available} are available per image"))
        if span > MAX_NEIGHBOURHOOD_LINES:
            findings.append(_diag(
                "CAP004",
                f"{config.op.name} spans {span} lines; the matrix "
                f"register covers {MAX_NEIGHBOURHOOD_LINES}"))
    if fmt.height % STRIP_LINES:
        findings.append(_diag(
            "CAP005",
            f"{fmt.name} height {fmt.height} is not a multiple of the "
            f"{STRIP_LINES}-line strip; the final strip is partial"))
    return findings


def liveness_rules(config: EngineConfig,
                   params: EngineParams) -> List[Diagnostic]:
    """LIV001-LIV004: can every component always make progress?"""
    findings: List[Diagnostic] = []
    if params.plc_ticks_per_cycle <= 0:
        findings.append(_diag(
            "LIV002",
            "plc_ticks_per_cycle is 0: the PLC never retires a "
            "pixel-cycle, so the call cannot complete"))
    if params.input_txu_ticks_per_cycle <= 0:
        findings.append(_diag(
            "LIV003",
            "input_txu_ticks_per_cycle is 0: input strips never drain "
            "into the IIM, freezing the Process Unit"))
    if params.max_cycles is not None and params.plc_ticks_per_cycle > 0 \
            and params.input_txu_ticks_per_cycle > 0:
        floor = min_call_cycles(
            config, job_overhead_cycles=params.dma_overhead_cycles)
        default = default_max_cycles(config.fmt.pixels)
        if params.max_cycles < floor:
            findings.append(_diag(
                "LIV001",
                f"max_cycles={params.max_cycles} is below the provable "
                f"floor of {floor} cycles (PCI word movement and PLC "
                f"retirement alone need that); the call is a guaranteed "
                f"EngineDeadlock"))
        elif params.max_cycles < default:
            findings.append(_diag(
                "LIV004",
                f"max_cycles={params.max_cycles} is below the engine "
                f"default of {default} for {config.fmt.name}; slow "
                f"regimes may hit the bound"))
    return findings


def fast_path_rules(config: EngineConfig,
                    params: EngineParams) -> List[Diagnostic]:
    """FPA001-FPA004: predict and explain the dispatch decision."""
    findings: List[Diagnostic] = []
    if not params.fast_path:
        findings.append(_diag(
            "FPA004", "fast_path=False on the engine: every call takes "
                      "the per-cycle reference loop"))
    for reason in fast_path_blockers(config.op.engine_cycles,
                                     config.fmt.strips,
                                     params.plc_ticks_per_cycle,
                                     params.input_txu_ticks_per_cycle):
        if reason == FALLBACK_OP_LATENCY:
            message = (
                f"{config.op.name} has stage-3 latency "
                f"{config.op.engine_cycles} > {FAST_PATH_MAX_OP_CYCLES}: "
                f"the call falls back to the per-cycle loop")
        elif reason == FALLBACK_SINGLE_STRIP:
            message = (
                f"{config.fmt.name} has {config.fmt.strips} strip(s), "
                f"fewer than {FAST_PATH_MIN_STRIPS}: the call never "
                f"reaches the batched steady state")
        else:
            message = (
                f"tick rates (plc={params.plc_ticks_per_cycle}, "
                f"txu={params.input_txu_ticks_per_cycle}) differ from "
                f"the prototype's: the batched schedule does not apply")
        findings.append(_diag(_FALLBACK_RULE_IDS[reason], message))
    return findings
