"""``repro-check``: run AddressCheck over call programs from the shell.

The built-in registry mirrors the pixel work of every script under
``examples/`` (traced through the recording backend, so the programs
here *are* the calls those scripts issue).  CI runs ``repro-check``
with no arguments and requires zero errors; ``--selftest`` seeds a
broken variant of each rule class and requires the analyzer to flag
every one -- the gate that proves the rules still bite.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..addresslib.addressing import AddressingMode
from ..addresslib.compositions import MotionMaskSettings, motion_mask
from ..addresslib.library import AddressLib
from ..addresslib.ops import (ChannelSet, INTER_ABSDIFF, INTRA_BOX3,
                              INTRA_GRAD, INTRA_MEDIAN3)
from ..addresslib.program import CallProgram, ProgramStep, trace_program
from ..core.config import EngineConfig, intra_config
from ..image.formats import CIF, QCIF, ImageFormat
from ..image.frame import Frame
from .analyzer import analyze_program, analyze_waves
from .dataflow import TransportParams
from .diagnostics import AnalysisReport, Severity
from .params import EngineParams
from .rules import RULES


# ---------------------------------------------------------------------------
# The example-program registry
# ---------------------------------------------------------------------------

def _quickstart() -> CallProgram:
    """The four engine-eligible calls of ``examples/quickstart.py``."""
    def body(lib: AddressLib, frame_a: Frame,
             frame_b: Frame) -> List[Frame]:
        edges = lib.intra(INTRA_GRAD, frame_a)
        smooth = lib.intra(INTRA_BOX3, frame_b, ChannelSet.YUV)
        difference = lib.inter(INTER_ABSDIFF, frame_a, frame_b)
        lib.inter_reduce(INTER_ABSDIFF, frame_a, frame_b)
        return [edges, smooth, difference]
    return trace_program("quickstart", body, Frame(CIF), Frame(CIF))


def _surveillance() -> CallProgram:
    """The motion-mask front end of ``examples/surveillance.py``
    (threshold 60; the segment stage runs in software and makes no
    engine calls)."""
    def body(lib: AddressLib, frame: Frame, background: Frame) -> Frame:
        return motion_mask(lib, frame, background,
                           MotionMaskSettings(threshold=60,
                                              despeckle=None))
    return trace_program("surveillance", body, Frame(QCIF), Frame(QCIF))


def _mosaicing() -> CallProgram:
    """One GME pair of ``examples/mosaicing.py``: the gradient and SAD
    calls the motion estimator issues per frame pair."""
    def body(lib: AddressLib, current: Frame,
             reference: Frame) -> Frame:
        edges = lib.intra(INTRA_GRAD, current)
        lib.inter_reduce(INTER_ABSDIFF, current, reference)
        return edges
    return trace_program("mosaicing", body, Frame(QCIF), Frame(QCIF))


def _coprocessor_tour() -> CallProgram:
    """The single 96x96 gradient call of
    ``examples/coprocessor_tour.py``."""
    fmt = ImageFormat("TOUR", 96, 96)
    return CallProgram.single(intra_config(INTRA_GRAD, fmt),
                              name="coprocessor_tour")


def _adaptive_pipeline() -> CallProgram:
    """One grad-grad-median round of ``examples/adaptive_pipeline.py``
    (each call processes a fresh camera frame)."""
    def body(lib: AddressLib, f0: Frame, f1: Frame,
             f2: Frame) -> List[Frame]:
        return [lib.intra(INTRA_GRAD, f0), lib.intra(INTRA_GRAD, f1),
                lib.intra(INTRA_MEDIAN3, f2)]
    return trace_program("adaptive_pipeline", body,
                         Frame(QCIF), Frame(QCIF), Frame(QCIF))


EXAMPLE_PROGRAMS: Dict[str, Callable[[], CallProgram]] = {
    "quickstart": _quickstart,
    "surveillance": _surveillance,
    "mosaicing": _mosaicing,
    "coprocessor_tour": _coprocessor_tour,
    "adaptive_pipeline": _adaptive_pipeline,
}


# ---------------------------------------------------------------------------
# Seeded-broken variants: one per rule class
# ---------------------------------------------------------------------------

def _broken_capacity() -> Tuple[CallProgram, EngineParams]:
    """4CIF overflows a result bank (CAP001)."""
    fmt = ImageFormat("4CIF", 704, 576)
    return (CallProgram.single(intra_config(INTRA_BOX3, fmt),
                               name="broken_capacity"), EngineParams())


def _broken_hazard() -> Tuple[CallProgram, EngineParams]:
    """A hand-built chain reading a plane nothing wrote (HAZ001) and
    claiming residency no previous call established (HAZ003)."""
    steps = (
        ProgramStep(index=0, mode=AddressingMode.INTER,
                    op=INTER_ABSDIFF, fmt=QCIF, channels=ChannelSet.Y,
                    inputs=("in0", "ghost"), output="t0",
                    resident=(False, True)),
    )
    program = CallProgram(name="broken_hazard", fmt=QCIF,
                          inputs=("in0",), steps=steps, results=("t0",))
    return program, EngineParams()


def _broken_liveness() -> Tuple[CallProgram, EngineParams]:
    """A cycle bound below the provable word-movement floor (LIV001)."""
    fmt = ImageFormat("P24x48", 24, 48)
    program = CallProgram.single(
        EngineConfig(mode=AddressingMode.INTER, op=INTER_ABSDIFF,
                     fmt=fmt),
        name="broken_liveness")
    return program, EngineParams(max_cycles=500)


def _broken_fast_path() -> Tuple[CallProgram, EngineParams]:
    """A long-latency op that must fall back per-cycle (FPA001)."""
    fmt = ImageFormat("TOUR", 96, 96)
    return (CallProgram.single(intra_config(INTRA_GRAD, fmt),
                               name="broken_fast_path"), EngineParams())


def _serial_chain() -> Tuple[CallProgram, EngineParams]:
    """A straight grad -> box -> median chain: every step consumes the
    previous step's output, so no two calls can ever overlap (SCH001)."""
    def body(lib: AddressLib, frame: Frame) -> Frame:
        edges = lib.intra(INTRA_GRAD, frame)
        smooth = lib.intra(INTRA_BOX3, edges)
        return lib.intra(INTRA_MEDIAN3, smooth)
    return trace_program("serial_chain", body, Frame(QCIF)), EngineParams()


def _unmeetable_deadline() -> Tuple[CallProgram, EngineParams]:
    """A three-call QCIF chain under a budget one lone call already
    blows: the modeled critical path must be flagged (SVC001)."""
    program, _ = _serial_chain()
    return (CallProgram(name="unmeetable_deadline", fmt=program.fmt,
                        inputs=program.inputs, steps=program.steps,
                        results=program.results),
            EngineParams(deadline_cycles=10_000))


def _starved_slo() -> Tuple[CallProgram, EngineParams]:
    """A serving policy whose victim tenant holds 1/10th of the weight
    behind a 50 ms admission budget but declares a 10 ms p95 target:
    its fair drain delay can reach 500 ms, so the target is only ever
    met by shedding its own work (SVC003)."""
    from ..service.policy import (AdmissionPolicy, ServicePolicy,
                                  TenantPolicy)
    program, _ = _serial_chain()
    policy = ServicePolicy(
        admission=AdmissionPolicy(deadline_budget_seconds=0.050),
        tenants={"victim": TenantPolicy(weight=1.0,
                                        p95_target_seconds=0.010),
                 "bulk": TenantPolicy(weight=9.0)})
    return (CallProgram(name="starved_slo", fmt=program.fmt,
                        inputs=program.inputs, steps=program.steps,
                        results=program.results),
            EngineParams(service_policy=policy))


def _split_placement() -> Tuple[CallProgram, EngineParams]:
    """The serial chain with its first hand-off pinned across boards:
    grad on board 0, its consumer on board 1 -- the frame would re-ship
    over the PCI bus on every hand-off (SVC002)."""
    program, _ = _serial_chain()
    return (CallProgram(name="split_placement", fmt=program.fmt,
                        inputs=program.inputs, steps=program.steps,
                        results=program.results),
            EngineParams(placement_hints=(0, 1, None)))


#: rule class -> (builder, rule id that must fire).
SELFTEST_CASES: Dict[str, Tuple[
        Callable[[], Tuple[CallProgram, EngineParams]], str]] = {
    "capacity": (_broken_capacity, "CAP001"),
    "hazard": (_broken_hazard, "HAZ001"),
    "liveness": (_broken_liveness, "LIV001"),
    "fast-path": (_broken_fast_path, "FPA001"),
    "scheduling": (_serial_chain, "SCH001"),
    "service": (_unmeetable_deadline, "SVC001"),
    "placement": (_split_placement, "SVC002"),
    "slo": (_starved_slo, "SVC003"),
}


# ---------------------------------------------------------------------------
# Seeded-broken wave plans: one per transport/residency/pool rule
# ---------------------------------------------------------------------------

def _intra_step(index: int, source: str, output: str) -> ProgramStep:
    return ProgramStep(index=index, mode=AddressingMode.INTRA,
                       op=INTRA_GRAD, fmt=QCIF, channels=ChannelSet.Y,
                       inputs=(source,), output=output)


def _rewrite_program() -> CallProgram:
    """A chain that redefines ``buf`` mid-program: ``in0 -> buf -> out``
    then ``in0 -> buf -> out2``.  The generation bump on ``buf`` is what
    the SHM/RES generation rules key on."""
    steps = (_intra_step(0, "in0", "buf"),
             _intra_step(1, "buf", "out"),
             _intra_step(2, "in0", "buf"),
             _intra_step(3, "buf", "out2"))
    return CallProgram(name="rewrite_chain", fmt=QCIF, inputs=("in0",),
                       steps=steps, results=("out", "out2"))


def _reuse_program() -> CallProgram:
    """Two independent producers then a consumer that re-reads ``in0``:
    the reuse distance spans a wave, so a one-slot cache must thrash."""
    steps = (_intra_step(0, "in0", "a"),
             _intra_step(1, "in1", "b"),
             ProgramStep(index=2, mode=AddressingMode.INTER,
                         op=INTER_ABSDIFF, fmt=QCIF,
                         channels=ChannelSet.Y, inputs=("in0", "a"),
                         output="c"))
    return CallProgram(name="reuse_chain", fmt=QCIF,
                       inputs=("in0", "in1"), steps=steps,
                       results=("a", "b", "c"))


def _wave_serial_chain() -> CallProgram:
    program, _ = _serial_chain()
    return program


#: rule id -> (program builder, deployment that must trip it).
WAVE_SELFTEST_CASES: Dict[str, Tuple[
        Callable[[], CallProgram], TransportParams]] = {
    "SHM001": (_rewrite_program,
               TransportParams(boards=2, fail_wave=1, requeue="merge")),
    "SHM002": (_wave_serial_chain,
               TransportParams(close_after_wave=0)),
    "SHM003": (_wave_serial_chain,
               TransportParams(boards=2, fail_wave=1,
                               fail_phase="after_compute",
                               requeue="replay")),
    "RES001": (_rewrite_program,
               TransportParams(boards=2, placement="round_robin",
                               generation_checks=False)),
    "RES002": (_reuse_program,
               TransportParams(cache_capacity=1)),
    "POOL001": (_rewrite_program,
                TransportParams(boards=2, fail_wave=0, requeue="merge")),
    "POOL002": (_wave_serial_chain,
                TransportParams(boards=2, placement="round_robin")),
}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _print_report(report: AnalysisReport, verbose: bool) -> None:
    print(report.summary())
    for diagnostic in report.diagnostics:
        if verbose or diagnostic.severity is not Severity.INFO:
            print(f"  {diagnostic.format()}")


def _run_selftest(verbose: bool) -> int:
    failures = 0
    for rule_class, (builder, rule_id) in SELFTEST_CASES.items():
        program, params = builder()
        report = analyze_program(program, params)
        hits = report.by_rule(rule_id)
        status = "flagged" if hits else "MISSED"
        print(f"selftest [{rule_class}] {program.name}: {status} "
              f"{rule_id}")
        if hits:
            if verbose:
                for diagnostic in hits:
                    print(f"  {diagnostic.format()}")
        else:
            failures += 1
    for rule_id, (wave_builder, transport) in WAVE_SELFTEST_CASES.items():
        program = wave_builder()
        report = analyze_waves(program, transport)
        hits = report.by_rule(rule_id)
        status = "flagged" if hits else "MISSED"
        print(f"selftest [waves] {program.name}: {status} {rule_id}")
        if hits:
            if verbose:
                for diagnostic in hits:
                    print(f"  {diagnostic.format()}")
        else:
            failures += 1
    if failures:
        print(f"selftest: {failures} rule class(es) no longer detected")
        return 1
    print("selftest: all rule classes detected")
    return 0


def _run_sanitize_selftest(verbose: bool) -> int:
    """Seed each transport bug against the *live* stack and require the
    runtime sanitizer to observe it -- the dynamic twin of
    :func:`_run_selftest`."""
    from .sanitize import SANITIZE_SELFTESTS
    failures = 0
    for description, (scenario, rule_id) in SANITIZE_SELFTESTS.items():
        findings = scenario()
        if findings is None:
            print(f"sanitize-selftest [{rule_id}] {description}: "
                  f"skipped (shared memory unavailable)")
            continue
        hits = [d for d in findings if d.rule_id == rule_id]
        status = "caught" if hits else "MISSED"
        print(f"sanitize-selftest [{rule_id}] {description}: {status}")
        if hits:
            if verbose:
                for diagnostic in hits:
                    print(f"  {diagnostic.format()}")
        else:
            failures += 1
    if failures:
        print(f"sanitize-selftest: {failures} rule(s) no longer "
              f"observed at runtime")
        return 1
    print("sanitize-selftest: all seeded bugs observed")
    return 0


def _parse_placement_hints(
        text: Optional[str],
        parser: argparse.ArgumentParser
        ) -> Optional[Tuple[Optional[int], ...]]:
    """``"0,1,-"`` -> ``(0, 1, None)``; ``None`` passes through."""
    if text is None:
        return None
    hints: List[Optional[int]] = []
    for token in text.split(","):
        token = token.strip()
        if token in ("", "-", "none"):
            hints.append(None)
            continue
        try:
            hints.append(int(token))
        except ValueError:
            parser.error(f"--placement-hints entry {token!r} is neither "
                         f"a worker id nor '-'")
    return tuple(hints)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Statically verify AddressLib call programs against "
                    "the AddressEngine model (no simulated cycles).")
    parser.add_argument("programs", nargs="*",
                        help="programs to check (default: all); one of "
                             f"{', '.join(sorted(EXAMPLE_PROGRAMS))}")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--selftest", action="store_true",
                        help="seed a broken variant of each rule class "
                             "and require the analyzer to flag it")
    parser.add_argument("--sanitize-selftest", action="store_true",
                        help="seed each transport bug against the live "
                             "shared-memory stack and require the "
                             "runtime sanitizer to observe it")
    parser.add_argument("--waves", action="store_true",
                        help="analyze the scheduled wave plan (SHM/RES/"
                             "POOL families) instead of the program "
                             "structure")
    parser.add_argument("--boards", type=int, default=1, metavar="N",
                        help="pool size for --waves (default 1)")
    parser.add_argument("--placement", default="affinity",
                        choices=("affinity", "least_loaded",
                                 "round_robin"),
                        help="placement policy for --waves")
    parser.add_argument("--cache-capacity", type=int, default=128,
                        metavar="N",
                        help="per-board worker-cache capacity for "
                             "--waves (default 128)")
    parser.add_argument("--fail-wave", type=int, default=None,
                        metavar="W",
                        help="kill the serving board at wave W "
                             "(--waves; requires --boards >= 2)")
    parser.add_argument("--fail-after-compute", action="store_true",
                        help="with --fail-wave, let the board finish "
                             "computing before it dies (results orphan)")
    parser.add_argument("--requeue", default="replay",
                        choices=("replay", "merge"),
                        help="failover requeue policy for --waves")
    parser.add_argument("--close-after-wave", type=int, default=None,
                        metavar="W",
                        help="close the plane store after wave W "
                             "(--waves)")
    parser.add_argument("--no-generation-checks", action="store_true",
                        help="key the modeled worker cache on bare "
                             "frame ids, ignoring generations (--waves)")
    parser.add_argument("--deadline-cycles", type=int, default=None,
                        metavar="N",
                        help="flag programs whose modeled critical-path "
                             "cost exceeds N engine cycles (SVC001)")
    parser.add_argument("--placement-hints", default=None,
                        metavar="H0,H1,...",
                        help="comma-separated pool placement hints, one "
                             "per program step (a worker id, or '-' for "
                             "no hint); flags producer/consumer pairs "
                             "split across boards (SVC002)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also print info-level findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {str(rule.severity):<7}  "
                  f"[{rule.layer}] {rule.title}")
        return 0
    if args.selftest:
        return _run_selftest(args.verbose)
    if args.sanitize_selftest:
        return _run_sanitize_selftest(args.verbose)

    names = args.programs or sorted(EXAMPLE_PROGRAMS)
    unknown = [n for n in names if n not in EXAMPLE_PROGRAMS]
    if unknown:
        parser.error(f"unknown program(s): {', '.join(unknown)}; known: "
                     f"{', '.join(sorted(EXAMPLE_PROGRAMS))}")

    if args.waves:
        try:
            transport = TransportParams(
                boards=args.boards, placement=args.placement,
                cache_capacity=args.cache_capacity,
                fail_wave=args.fail_wave,
                fail_phase=("after_compute" if args.fail_after_compute
                            else "before_compute"),
                requeue=args.requeue,
                close_after_wave=args.close_after_wave,
                generation_checks=not args.no_generation_checks)
        except ValueError as exc:
            parser.error(str(exc))
        exit_code = 0
        for name in names:
            report = analyze_waves(EXAMPLE_PROGRAMS[name](), transport)
            _print_report(report, args.verbose)
            if report.errors or (args.strict and report.warnings):
                exit_code = 1
        return exit_code

    hints = _parse_placement_hints(args.placement_hints, parser)
    params = (EngineParams(deadline_cycles=args.deadline_cycles,
                           placement_hints=hints)
              if (args.deadline_cycles is not None or hints is not None)
              else None)
    exit_code = 0
    for name in names:
        program = EXAMPLE_PROGRAMS[name]()
        if (hints is not None and params is not None
                and len(hints) != len(program.steps)):
            parser.error(
                f"--placement-hints names {len(hints)} steps but "
                f"program {name!r} has {len(program.steps)}")
        report = analyze_program(program, params)
        _print_report(report, args.verbose)
        if report.errors or (args.strict and report.warnings):
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
