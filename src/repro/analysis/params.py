"""The engine parameters the analyzer checks a program against.

:class:`EngineParams` mirrors the knobs of
:class:`~repro.core.engine.AddressEngine` (tick rates, DMA overhead,
fast-path switch) plus the memory geometry, as *data*: the analyzer
never instantiates an engine.  The defaults reproduce the v1 prototype;
ablation studies and the pre-flight hook build instances from a live
engine with :meth:`EngineParams.from_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..core.config import IIM_LINES, OIM_LINES
from ..core.constraints import (INPUT_TXU_TICKS_PER_CYCLE,
                                PLC_TICKS_PER_CYCLE)
from ..core.pci import DEFAULT_JOB_OVERHEAD_CYCLES
from ..core.zbt import BANK_WORDS

if TYPE_CHECKING:
    from ..core.engine import AddressEngine
    from ..service.policy import ServicePolicy


@dataclass(frozen=True)
class EngineParams:
    """Static view of one AddressEngine's constraint-relevant knobs."""

    plc_ticks_per_cycle: int = PLC_TICKS_PER_CYCLE
    input_txu_ticks_per_cycle: int = INPUT_TXU_TICKS_PER_CYCLE
    dma_overhead_cycles: int = DEFAULT_JOB_OVERHEAD_CYCLES
    iim_lines: int = IIM_LINES
    oim_lines: int = OIM_LINES
    bank_words: int = BANK_WORDS
    fast_path: bool = True
    #: Per-call cycle safety bound; ``None`` means the engine default
    #: (:func:`repro.core.constraints.default_max_cycles`).
    max_cycles: Optional[int] = None
    #: Service deadline budget for a whole program, in engine cycles;
    #: ``None`` disables the SVC001 critical-path check.
    deadline_cycles: Optional[int] = None
    #: Per-step pool placement hints (worker id or ``None``), aligned
    #: with the program's step order; ``None`` disables the SVC002
    #: affinity check.
    placement_hints: Optional[Tuple[Optional[int], ...]] = None
    #: The serving policy to vet tenant SLOs against; ``None`` disables
    #: the SVC003 target-reachability check.
    service_policy: Optional["ServicePolicy"] = None

    @classmethod
    def from_engine(cls, engine: "AddressEngine") -> "EngineParams":
        """Capture a live engine's knobs (memory geometry is fixed)."""
        return cls(
            plc_ticks_per_cycle=engine.plc_ticks_per_cycle,
            input_txu_ticks_per_cycle=engine.input_txu_ticks_per_cycle,
            dma_overhead_cycles=engine.dma_overhead_cycles,
            fast_path=engine.fast_path)

    def iim_lines_per_image(self, images_in: int) -> int:
        """IIM lines one input image gets (the inter split halves them,
        8/8 in the prototype: ``IIM_LINES_PER_IMAGE_INTER``)."""
        if images_in == 2:
            return self.iim_lines // 2
        return self.iim_lines
