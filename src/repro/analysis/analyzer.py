"""The AddressCheck analyzer: programs in, diagnostics out.

Entry points:

* :func:`analyze_program` -- check a traced or hand-built
  :class:`~repro.addresslib.program.CallProgram`;
* :func:`analyze_config` -- check one
  :class:`~repro.core.config.EngineConfig` (wrapped as a single-step
  program);
* :func:`predict_fast_path` -- the static mirror of
  ``EngineRunResult.fast_path_used``;
* :func:`check_program` -- analyze and raise
  :class:`~repro.analysis.diagnostics.ProgramCheckError` on errors (the
  driver's pre-flight hook).

No simulated cycle runs anywhere below: everything is computed from the
program's structure and :mod:`repro.core.constraints`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from ..addresslib.program import CallProgram, ProgramStep
from ..core.config import EngineConfig, EngineConfigError
from ..core.constraints import fast_path_blockers
from .dataflow import TransportParams, TransportPlan, lower_program
from .diagnostics import (AnalysisReport, Diagnostic, FastPathPrediction,
                          ProgramCheckError)
from .hazards import dataflow_rules
from .params import EngineParams
from .rules import _diag, capacity_rules, fast_path_rules, liveness_rules
from .scheduling import scheduling_rules
from .service import service_rules
from .transport import transport_rules

_DEFAULT_PARAMS = EngineParams()


def step_config(step: ProgramStep) -> EngineConfig:
    """Build the :class:`EngineConfig` a step would dispatch as.

    Raises :class:`EngineConfigError` exactly when the engine's own
    validation would -- the analyzer reports that as rule ``CFG001``
    instead of propagating.
    """
    return EngineConfig(
        mode=step.mode, op=step.op, fmt=step.fmt, channels=step.channels,
        reduce_to_scalar=step.reduce_to_scalar,
        requires_full_frames=step.requires_full_frames)


def _with_context(findings: List[Diagnostic],
                  step: ProgramStep) -> List[Diagnostic]:
    location = str(step.location) if step.location is not None else None
    return [dataclasses.replace(d, step_index=step.index,
                                step_label=step.describe,
                                location=location)
            for d in findings]


def analyze_program(program: CallProgram,
                    params: Optional[EngineParams] = None
                    ) -> AnalysisReport:
    """Run every rule layer over ``program``."""
    params = params or _DEFAULT_PARAMS
    report = AnalysisReport(program_name=program.name)
    report.extend(dataflow_rules(program))
    report.extend(scheduling_rules(program))
    report.extend(service_rules(program, params))
    for step in program.steps:
        try:
            config = step_config(step)
        except EngineConfigError as exc:
            report.extend(_with_context([_diag("CFG001", str(exc))], step))
            continue
        findings = (capacity_rules(config, params)
                    + liveness_rules(config, params)
                    + fast_path_rules(config, params))
        report.extend(_with_context(findings, step))
    return report


def analyze_waves(program: CallProgram,
                  transport: Optional[TransportParams] = None,
                  plan: Optional[TransportPlan] = None
                  ) -> AnalysisReport:
    """Check the *wave plan* of ``program`` under a deployment.

    Lowers the program's dependency levels against ``transport`` (the
    healthy single-board defaults when omitted) and runs the
    SHM/RES/POOL rule families over the resulting event stream.  Pass
    ``plan`` to audit an already-lowered plan instead.  Complementary
    to :func:`analyze_program`: that checks what the program *says*,
    this checks what the serving stack would *do* with it.
    """
    if plan is None:
        plan = lower_program(program, transport)
    report = AnalysisReport(program_name=f"{program.name} [waves]")
    report.extend(transport_rules(plan))
    return report


def analyze_config(config: EngineConfig,
                   params: Optional[EngineParams] = None,
                   name: str = "call",
                   resident: Optional[Sequence[bool]] = None
                   ) -> AnalysisReport:
    """Check one already-built call configuration."""
    return analyze_program(
        CallProgram.single(config, name=name, resident=resident), params)


def predict_fast_path(config: EngineConfig,
                      params: Optional[EngineParams] = None
                      ) -> FastPathPrediction:
    """Statically predict ``EngineRunResult.fast_path_used``.

    Shares :func:`repro.core.constraints.fast_path_blockers` with the
    engine's dispatch, so prediction and execution cannot drift; tests
    hold the two equal over the full equivalence corpus.
    """
    params = params or _DEFAULT_PARAMS
    reasons = tuple(fast_path_blockers(
        config.op.engine_cycles, config.fmt.strips,
        params.plc_ticks_per_cycle, params.input_txu_ticks_per_cycle))
    if not params.fast_path:
        reasons = ("disabled",) + reasons
    return FastPathPrediction(eligible=not reasons, reasons=reasons)


def check_program(program: Union[CallProgram, EngineConfig],
                  params: Optional[EngineParams] = None) -> AnalysisReport:
    """Analyze; raise :class:`ProgramCheckError` if any error remains."""
    if isinstance(program, EngineConfig):
        report = analyze_config(program, params)
    else:
        report = analyze_program(program, params)
    if not report.ok:
        raise ProgramCheckError(report)
    return report
