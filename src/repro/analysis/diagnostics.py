"""Diagnostic primitives of the AddressCheck static verifier.

A diagnostic is one finding about a call program: a stable rule id
(``CAP001``), a severity, a human message and -- when known -- the step
and source location it refers to.  :class:`AnalysisReport` aggregates
the findings of one analyzer run; :class:`ProgramCheckError` is what the
host driver's pre-flight hook raises when a report contains errors.

This module is dependency-light on purpose: importing it (or anything
that only needs it) must not load the cycle-level engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Severity(enum.IntEnum):
    """How bad a finding is.

    * ``ERROR`` -- the engine model cannot execute the call (capacity
      overflow, guaranteed deadlock, malformed dataflow);
    * ``WARNING`` -- executable but almost certainly unintended
      (dead stores, redundant transfers);
    * ``INFO`` -- advisory facts the caller may care about (fast-path
      fallback predictions, partial final strips).
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, ready for printing or asserting."""

    rule_id: str
    severity: Severity
    message: str
    #: Index of the program step the finding refers to, if any.
    step_index: Optional[int] = None
    #: Short step description ("inter inter_absdiff(in0, in1)").
    step_label: str = ""
    #: Source location string ("compositions.py:119"), if known.
    location: Optional[str] = None

    def format(self) -> str:
        """Render as one ``severity RULE [context]: message`` line."""
        context = []
        if self.step_index is not None:
            context.append(f"step {self.step_index}")
        if self.location:
            context.append(str(self.location))
        where = f" [{', '.join(context)}]" if context else ""
        return f"{self.severity} {self.rule_id}{where}: {self.message}"


@dataclass
class AnalysisReport:
    """All findings of one analyzer run over one call program."""

    program_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, findings: List[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """Whether the program is safe to dispatch (no errors)."""
        return not self.errors

    def summary(self) -> str:
        return (f"{self.program_name}: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s), "
                f"{len(self.infos)} info(s)")

    def format(self) -> str:
        """Multi-line rendering: summary plus one line per finding."""
        lines = [self.summary()]
        lines.extend(d.format() for d in sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.step_index or 0, d.rule_id)))
        return "\n".join(lines)


@dataclass(frozen=True)
class FastPathPrediction:
    """Static prediction of the engine's fast-path dispatch decision."""

    #: Whether :meth:`AddressEngine.run_call` will use the batched
    #: stepper (mirrors ``EngineRunResult.fast_path_used``).
    eligible: bool
    #: Fallback reason codes (:mod:`repro.core.constraints` FALLBACK_*),
    #: empty when eligible.
    reasons: Tuple[str, ...] = ()


class ProgramCheckError(RuntimeError):
    """A pre-flight analysis found errors; the call was not dispatched."""

    def __init__(self, report: AnalysisReport) -> None:
        super().__init__(report.format())
        self.report = report
