"""AddressCheck: static verification of AddressLib call programs.

The paper's premise is that structured pixel addressing is *statically
analysable* -- the engine only works because access patterns are known
before a call runs.  This package takes that seriously on the host side:
it checks a call program against the engine model without simulating a
cycle, across four rule layers (configuration/capacity, dataflow
hazards, liveness, fast-path prediction).  See ``docs/ANALYSIS.md`` for
the rule catalogue.

Importing this package does not load the cycle-level stepper:
:class:`~repro.core.errors.EngineDeadlock` is re-exported from the
neutral errors module.
"""

from ..core.errors import EngineDeadlock
from .analyzer import (analyze_config, analyze_program, analyze_waves,
                       check_program, predict_fast_path, step_config)
from .dataflow import (PlanEvent, TransportParams, TransportPlan,
                       lower_program)
from .diagnostics import (AnalysisReport, Diagnostic, FastPathPrediction,
                          ProgramCheckError, Severity)
from .params import EngineParams
from .rules import RULES, Rule
from .service import critical_path_cycles, step_cycles
from .transport import transport_rules

# NOTE: .sanitize is intentionally NOT imported here -- the runtime
# sanitizer loads lazily (scheduler/service/CLI) so that importing the
# analysis package stays free of host-transport side effects.

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "EngineDeadlock",
    "EngineParams",
    "FastPathPrediction",
    "PlanEvent",
    "ProgramCheckError",
    "RULES",
    "Rule",
    "Severity",
    "TransportParams",
    "TransportPlan",
    "analyze_config",
    "analyze_program",
    "analyze_waves",
    "check_program",
    "critical_path_cycles",
    "lower_program",
    "predict_fast_path",
    "step_config",
    "step_cycles",
    "transport_rules",
]
