"""Service-level rules (SVC001): will the program meet its deadline?

The service front end (:mod:`repro.service`) admits work against a
deadline budget using the closed-form timing model.  A call *program*
has a static analogue: its modeled critical-path cost -- the cheapest
completion any scheduler could reach with unlimited engines -- is a
lower bound on its latency.  If that bound already exceeds the deadline
budget the program is asked to meet, no amount of sharding or batching
will save it; SVC001 surfaces that before anything is enqueued.

The per-step cycle counts come from the same
:class:`~repro.perf.timing.EngineTimingModel` arithmetic the driver and
the admission controller price with, so the static verdict cannot drift
from the runtime accounting.
"""

from __future__ import annotations

from typing import Dict, List

from ..addresslib.program import CallProgram, ProgramStep, dependency_edges
from ..perf.timing import EngineTimingModel
from .diagnostics import Diagnostic
from .params import EngineParams
from .rules import _diag

_TIMING = EngineTimingModel()


def step_cycles(step: ProgramStep,
                timing: EngineTimingModel = _TIMING) -> int:
    """Modeled engine cycles of one program step."""
    resident = sum(step.resident) if step.resident is not None else 0
    return timing.call_cycles_raw(
        step.fmt.pixels, step.fmt.strips, len(step.inputs),
        produces_image=not step.reduce_to_scalar,
        requires_full_frames=step.requires_full_frames,
        resident_images=resident)


def critical_path_cycles(program: CallProgram,
                         timing: EngineTimingModel = _TIMING) -> int:
    """Cycles of the costliest dependency chain through ``program``.

    Longest weighted path over the RAW/WAW/WAR edges: the modeled
    completion floor with unlimited engine workers.  A single step's
    cost is its own floor; independent steps never add.
    """
    predecessors: Dict[int, List[int]] = {}
    for before, after in dependency_edges(program):
        predecessors.setdefault(after, []).append(before)
    finish: Dict[int, int] = {}
    for step in program.steps:  # steps are in topological (issue) order
        ready = max((finish[p] for p in predecessors.get(step.index, [])),
                    default=0)
        finish[step.index] = ready + step_cycles(step, timing)
    return max(finish.values(), default=0)


def service_rules(program: CallProgram,
                  params: EngineParams) -> List[Diagnostic]:
    """SVC001: modeled critical-path cost exceeds the deadline budget.

    Inert unless the caller declares a budget
    (``EngineParams.deadline_cycles``; the ``repro-check
    --deadline-cycles`` flag).
    """
    budget = params.deadline_cycles
    if budget is None or not program.steps:
        return []
    critical = critical_path_cycles(program)
    if critical <= budget:
        return []
    seconds = critical / _TIMING.clock_hz
    return [_diag(
        "SVC001",
        f"modeled critical-path cost is {critical} cycles "
        f"({seconds * 1e3:.2f} ms at the PCI clock), over the "
        f"--deadline-cycles budget of {budget}: even unlimited engine "
        f"workers cannot serve this program inside its deadline")]
