"""Service-level rules (SVC001-SVC003): deadline, placement, and SLO
posture.

The service front end (:mod:`repro.service`) admits work against a
deadline budget using the closed-form timing model.  A call *program*
has a static analogue: its modeled critical-path cost -- the cheapest
completion any scheduler could reach with unlimited engines -- is a
lower bound on its latency.  If that bound already exceeds the deadline
budget the program is asked to meet, no amount of sharding or batching
will save it; SVC001 surfaces that before anything is enqueued.

The per-step cycle counts come from the same
:class:`~repro.perf.timing.EngineTimingModel` arithmetic the driver and
the admission controller price with, so the static verdict cannot drift
from the runtime accounting.
"""

from __future__ import annotations

from typing import Dict, List

from ..addresslib.program import CallProgram, ProgramStep, dependency_edges
from ..perf.timing import EngineTimingModel
from .diagnostics import Diagnostic
from .params import EngineParams
from .rules import _diag

_TIMING = EngineTimingModel()


def step_cycles(step: ProgramStep,
                timing: EngineTimingModel = _TIMING) -> int:
    """Modeled engine cycles of one program step."""
    resident = sum(step.resident) if step.resident is not None else 0
    return timing.call_cycles_raw(
        step.fmt.pixels, step.fmt.strips, len(step.inputs),
        produces_image=not step.reduce_to_scalar,
        requires_full_frames=step.requires_full_frames,
        resident_images=resident)


def critical_path_cycles(program: CallProgram,
                         timing: EngineTimingModel = _TIMING) -> int:
    """Cycles of the costliest dependency chain through ``program``.

    Longest weighted path over the RAW/WAW/WAR edges: the modeled
    completion floor with unlimited engine workers.  A single step's
    cost is its own floor; independent steps never add.
    """
    predecessors: Dict[int, List[int]] = {}
    for before, after in dependency_edges(program):
        predecessors.setdefault(after, []).append(before)
    finish: Dict[int, int] = {}
    for step in program.steps:  # steps are in topological (issue) order
        ready = max((finish[p] for p in predecessors.get(step.index, [])),
                    default=0)
        finish[step.index] = ready + step_cycles(step, timing)
    return max(finish.values(), default=0)


def service_rules(program: CallProgram,
                  params: EngineParams) -> List[Diagnostic]:
    """SVC001/SVC002: static serving checks over a call program.

    SVC001 (deadline) is inert unless the caller declares a budget
    (``EngineParams.deadline_cycles``; the ``repro-check
    --deadline-cycles`` flag); SVC002 (placement) is inert unless the
    caller declares per-step hints (``EngineParams.placement_hints``;
    ``--placement-hints``).
    """
    findings: List[Diagnostic] = []
    budget = params.deadline_cycles
    if budget is not None and program.steps:
        critical = critical_path_cycles(program)
        if critical > budget:
            seconds = critical / _TIMING.clock_hz
            findings.append(_diag(
                "SVC001",
                f"modeled critical-path cost is {critical} cycles "
                f"({seconds * 1e3:.2f} ms at the PCI clock), over the "
                f"--deadline-cycles budget of {budget}: even unlimited "
                f"engine workers cannot serve this program inside its "
                f"deadline"))
    findings.extend(placement_rules(program, params))
    findings.extend(slo_rules(params))
    return findings


def slo_rules(params: EngineParams) -> List[Diagnostic]:
    """SVC003: tenant p95 targets the admission budget cannot protect.

    Inert unless the caller declares a serving policy
    (``EngineParams.service_policy``).  Admission bounds the *global*
    backlog by the largest class budget; under weighted fair queueing a
    tenant drains that backlog at its weight share, so the delay its
    admitted work can legally face is up to ``budget / share``.  A p95
    target below that figure is only ever "met" by shedding the
    tenant's own requests -- the static analogue of a retry storm, and
    worth surfacing before the first request is enqueued.
    """
    policy = params.service_policy
    if policy is None or not policy.tenants:
        return []
    from ..service.request import Priority
    budgets = [policy.admission.budget_for(priority)
               for priority in Priority]
    unbounded = any(budget is None for budget in budgets)
    largest = None if unbounded else max(budgets)  # type: ignore[type-var]
    total_weight = sum(tenant.weight
                       for tenant in policy.tenants.values())
    findings: List[Diagnostic] = []
    for name, tenant in sorted(policy.tenants.items()):
        target = tenant.p95_target_seconds
        if target is None:
            continue
        if unbounded:
            findings.append(_diag(
                "SVC003",
                f"tenant {name!r} declares a p95 target of "
                f"{target * 1e3:.2f} ms but at least one priority class "
                f"has no admission budget: the admitted backlog is "
                f"unbounded, so the target can only be held by "
                f"shedding the tenant's own work"))
            continue
        share = (tenant.weight / total_weight
                 if total_weight > 0.0 else 1.0)
        assert largest is not None
        worst = largest / share
        if worst > target:
            findings.append(_diag(
                "SVC003",
                f"tenant {name!r} holds weight share {share:.3f} of a "
                f"backlog admission bounds at "
                f"{largest * 1e3:.2f} ms: its fair drain delay can "
                f"reach {worst * 1e3:.2f} ms, over the declared p95 "
                f"target of {target * 1e3:.2f} ms -- the target is "
                f"only reachable by shedding the tenant's own work"))
    return findings


def placement_rules(program: CallProgram,
                    params: EngineParams) -> List[Diagnostic]:
    """SVC002: placement hints that defeat residency affinity.

    A RAW edge is a frame handed from producer to consumer; the pool's
    residency-affinity placement keeps the pair on one board so the
    hand-off stays in the board's ZBT banks.  Hints pinning the two
    steps to *different* boards force the frame back over the PCI bus
    on every hand-off -- the hint configuration is fighting the very
    policy it runs under, so the verifier flags each such edge.
    """
    hints = params.placement_hints
    if hints is None or not program.steps:
        return []
    if len(hints) != len(program.steps):
        raise ValueError(
            f"{len(hints)} placement hints for {len(program.steps)} "
            f"program steps")
    producer: Dict[str, ProgramStep] = {}
    findings: List[Diagnostic] = []
    for step in program.steps:
        for plane in step.inputs:
            source = producer.get(plane)
            if source is None:
                continue
            hint_from = hints[source.index]
            hint_to = hints[step.index]
            if (hint_from is None or hint_to is None
                    or hint_from == hint_to):
                continue
            findings.append(_diag(
                "SVC002",
                f"plane {plane!r} is produced on board {hint_from} "
                f"(step {source.index}) but its consumer is pinned to "
                f"board {hint_to}: the hand-off leaves the producer's "
                f"ZBT banks and re-ships over the PCI bus, defeating "
                f"residency affinity",
                step_index=step.index, step_label=step.label))
        if step.output is not None:
            producer[step.output] = step
    return findings
