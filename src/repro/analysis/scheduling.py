"""Program-level scheduling rules (SCH001).

The pipelined call scheduler (:mod:`repro.host.scheduler`) can only
shard calls that do not depend on each other.  A program whose
dependency graph is one straight chain serialises completely: every
wavefront holds exactly one step, and a pool of engine workers buys
nothing.  SCH001 surfaces that shape as an informational finding so an
author chasing throughput knows the program -- not the scheduler -- is
the limit.

The structure comes from the same
:func:`~repro.addresslib.program.dependency_levels` derivation the
scheduler itself executes by, so the diagnostic cannot drift from the
runtime behaviour.
"""

from __future__ import annotations

from typing import List

from ..addresslib.program import (CallProgram, critical_path_length,
                                  dependency_levels,
                                  exploitable_parallelism)
from .diagnostics import Diagnostic
from .rules import _diag


def scheduling_rules(program: CallProgram) -> List[Diagnostic]:
    """Flag programs with zero exploitable call parallelism.

    Single-step programs are exempt: the driver pre-flights every call
    as a one-step program, and a lone call has nothing to overlap with
    by construction.
    """
    if len(program.steps) < 2:
        return []
    levels = dependency_levels(program)
    if any(len(level) > 1 for level in levels):
        return []
    return [_diag(
        "SCH001",
        f"dependency graph fully serialises: all {len(program.steps)} "
        f"steps form one chain (critical path "
        f"{critical_path_length(program)}, exploitable parallelism "
        f"{exploitable_parallelism(program):.2f}); a call scheduler "
        f"cannot overlap any of these calls")]
