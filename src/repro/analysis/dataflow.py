"""Transport/residency dataflow IR: a wave plan as an event stream.

The per-step rules (:mod:`repro.analysis.rules`) and the chain rules
(:mod:`repro.analysis.hazards`) see a :class:`CallProgram` as issued;
nothing sees what the *serving stack does with it* -- how the scheduler
groups steps into waves, which board a wave lands on, which frames ship
as shared-memory handles versus hit a worker-resident cache, and what a
mid-wave board failure does to all of the above.  This module lowers a
program plus a :class:`TransportParams` deployment description into
that view: a flat, ordered stream of :class:`PlanEvent`\\ s -- frame
defs and uses carrying *generation* versions, handle ship/adopt events,
per-board residency hits and evictions -- that the rule families in
:mod:`repro.analysis.transport` (``SHM00x``/``RES00x``/``POOL00x``)
check without touching a real store, cache, or pool.

The default lowering mirrors the healthy runtime exactly (waves from
:func:`~repro.addresslib.program.dependency_levels`, whole-wave
placement, generation-checked worker caches, whole-wave replay on
failover), so a clean program lowers to a clean plan.  The knobs model
deployments and failure modes worth auditing before they happen: a
board dying before or after compute, a requeue policy that *merges*
the failed wave into the next one, a residency cache too small for a
wave's reuse distance, an identity-keyed cache with no generation
check, or a store torn down while results are still in flight.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..addresslib.program import CallProgram, dependency_levels

#: Event kinds a lowered plan may contain, in the vocabulary of the
#: shared-memory transport (:mod:`repro.host.shm`) and the pool
#: (:mod:`repro.pool.pool`).
EVENT_KINDS = ("wave", "ship", "hit", "evict", "use", "compute",
               "define", "result", "adopt", "release", "close",
               "requeue")

#: Simulated placement policies :func:`lower_program` understands.
PLACEMENTS = ("affinity", "least_loaded", "round_robin")

#: What a failed board managed to do before dying.
FAIL_PHASES = ("before_compute", "after_compute")

#: How the pool reschedules a failed wave.
REQUEUE_POLICIES = ("replay", "merge")


@dataclass(frozen=True)
class TransportParams:
    """The deployment a program's wave plan is lowered against.

    The defaults describe the healthy runtime; every non-default value
    is a *what-if* (an eviction horizon, a failure injection, a buggy
    requeue policy) the transport rules then audit.
    """

    #: Modelled boards the waves place across.
    boards: int = 1
    #: Simulated placement policy (mirrors ``repro.pool.placement``).
    placement: str = "affinity"
    #: Per-board residency-cache capacity, in cached frames (mirrors
    #: the worker cache of :mod:`repro.host.shm`).
    cache_capacity: int = 128
    #: Wave index at which the chosen board fails over; ``None`` for a
    #: healthy run.  Needs ``boards >= 2`` (someone must survive).
    fail_wave: Optional[int] = None
    #: Whether the failed board died before or after computing (an
    #: ``after_compute`` death orphans its shipped result segments).
    fail_phase: str = "before_compute"
    #: Requeue policy after the failure: ``"replay"`` re-runs the wave
    #: whole (the pool's real contract); ``"merge"`` coalesces it with
    #: the next wave -- the buggy shortcut POOL001/SHM001 exist to catch.
    requeue: str = "replay"
    #: Close the plane store after this wave (``None``: at program
    #: end); later adoptions model a teardown race (SHM002).
    close_after_wave: Optional[int] = None
    #: Whether the modelled residency cache compares generations on a
    #: hit (the shm worker cache does; an identity-keyed cache like a
    #: bare ``FrameResidencyCache`` does not -- RES001 territory).
    generation_checks: bool = True

    def __post_init__(self) -> None:
        if self.boards < 1:
            raise ValueError(f"boards must be >= 1, got {self.boards}")
        if self.placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {self.placement!r}; "
                             f"one of {', '.join(PLACEMENTS)}")
        if self.cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1, got "
                             f"{self.cache_capacity}")
        if self.fail_phase not in FAIL_PHASES:
            raise ValueError(f"unknown fail_phase {self.fail_phase!r}")
        if self.requeue not in REQUEUE_POLICIES:
            raise ValueError(f"unknown requeue {self.requeue!r}")
        if self.fail_wave is not None and self.boards < 2:
            raise ValueError("fail_wave needs boards >= 2: a failover "
                             "must have a survivor to requeue onto")


@dataclass(frozen=True)
class PlanEvent:
    """One thing the lowered schedule does, in order.

    ``generation`` versions the plane's *content*: external inputs and
    first definitions are generation 0, every redefinition bumps it --
    the static mirror of :class:`repro.host.shm.FrameHandle.generation`.
    ``want_generation`` is set on ``hit`` events to the generation the
    read actually needs (a hit at a lower generation is a stale read).
    """

    kind: str
    wave: int
    #: Board the event happened on; ``-1`` for parent-side events.
    board: int = -1
    plane: str = ""
    generation: int = 0
    step_index: Optional[int] = None
    #: On ``hit`` events: the generation the consuming step needs.
    want_generation: Optional[int] = None

    def describe(self) -> str:
        where = f"board {self.board}" if self.board >= 0 else "parent"
        plane = f" {self.plane}@g{self.generation}" if self.plane else ""
        return f"wave {self.wave} [{where}] {self.kind}{plane}"


@dataclass(frozen=True)
class TransportPlan:
    """A lowered wave schedule: the event stream plus its shape."""

    program_name: str
    params: TransportParams
    #: Step indices per wave, after any failover restructuring.
    waves: Tuple[Tuple[int, ...], ...]
    events: Tuple[PlanEvent, ...]

    def by_kind(self, kind: str) -> List[PlanEvent]:
        return [e for e in self.events if e.kind == kind]


@dataclass
class _Board:
    """Residency state of one modelled board during lowering."""

    board_id: int
    #: LRU cache: key -> cached generation.  With generation checks the
    #: key is ``(plane, generation)``; without, the bare plane name.
    cache: "OrderedDict[object, int]" = field(default_factory=OrderedDict)
    computes: int = 0
    alive: bool = True


def _plane_generations(program: CallProgram
                       ) -> Tuple[List[Tuple[int, ...]], List[Optional[int]]]:
    """Per-step read generations and write generation, program order.

    The recorder's SSA naming keeps every plane at generation 0;
    hand-built programs that redefine a plane (WAW) bump it -- exactly
    when the shared-memory store would cut a new segment.
    """
    current: Dict[str, int] = {name: 0 for name in program.inputs}
    read_gens: List[Tuple[int, ...]] = []
    write_gens: List[Optional[int]] = []
    for step in program.steps:
        read_gens.append(tuple(current.get(name, 0)
                               for name in step.inputs))
        if step.output is None:
            write_gens.append(None)
        else:
            if step.output in current:
                current[step.output] += 1
            else:
                current[step.output] = 0
            write_gens.append(current[step.output])
    return read_gens, write_gens


def _choose_board(boards: List[_Board], params: TransportParams,
                  wave_reads: List[Tuple[str, int]],
                  rr_counter: List[int]) -> _Board:
    """The simulated placement decision for one wave."""
    alive = [b for b in boards if b.alive]
    assert alive, "lowering never kills the last board"
    if params.placement == "round_robin":
        board = alive[rr_counter[0] % len(alive)]
        rr_counter[0] += 1
        return board
    if params.placement == "least_loaded":
        return min(alive, key=lambda b: (b.computes, b.board_id))

    def score(board: _Board) -> int:
        hits = 0
        for plane, gen in wave_reads:
            key = (plane, gen) if params.generation_checks else plane
            if key in board.cache:
                hits += 1
        return hits

    return min(alive, key=lambda b: (-score(b), b.computes, b.board_id))


def lower_program(program: CallProgram,
                  params: Optional[TransportParams] = None
                  ) -> TransportPlan:
    """Lower ``program`` into the wave-plan event stream it would run as.

    Deterministic: same program and params, same plan.  The healthy
    defaults produce a plan the transport rules pass clean whenever the
    program itself is clean; the failure knobs restructure the schedule
    the way the modelled fault would.
    """
    params = params or TransportParams()
    read_gens, write_gens = _plane_generations(program)
    waves: List[List[int]] = [list(level)
                              for level in dependency_levels(program)]
    boards = [_Board(i) for i in range(params.boards)]
    rr_counter = [0]
    events: List[PlanEvent] = []
    final_waves: List[Tuple[int, ...]] = []
    store_closed = False

    def run_wave(wave_index: int, step_indices: List[int],
                 board: _Board, adopt_results: bool) -> None:
        """Emit one wave's ship/hit/use/compute/define/result events."""
        # Ship phase: every distinct (plane, generation) read by the
        # wave moves (or hits) once, like the store registering each
        # frame once per wave.
        seen: List[Tuple[str, int]] = []
        for index in step_indices:
            step = program.steps[index]
            for plane, gen in zip(step.inputs, read_gens[index]):
                if (plane, gen) not in seen:
                    seen.append((plane, gen))
        for plane, gen in seen:
            key = (plane, gen) if params.generation_checks else plane
            if key in board.cache:
                cached_gen = board.cache[key]
                board.cache.move_to_end(key)
                events.append(PlanEvent(
                    kind="hit", wave=wave_index, board=board.board_id,
                    plane=plane, generation=cached_gen,
                    want_generation=gen))
                continue
            events.append(PlanEvent(
                kind="ship", wave=wave_index, board=board.board_id,
                plane=plane, generation=gen))
            board.cache[key] = gen
            while len(board.cache) > params.cache_capacity:
                evicted_key, evicted_gen = board.cache.popitem(last=False)
                evicted_plane = (evicted_key[0]
                                 if isinstance(evicted_key, tuple)
                                 else str(evicted_key))
                events.append(PlanEvent(
                    kind="evict", wave=wave_index, board=board.board_id,
                    plane=evicted_plane, generation=evicted_gen))
        # Compute phase: per-step use/compute/define, then the result
        # segment shipped back to the parent.
        for index in step_indices:
            step = program.steps[index]
            for plane, gen in zip(step.inputs, read_gens[index]):
                events.append(PlanEvent(
                    kind="use", wave=wave_index, board=board.board_id,
                    plane=plane, generation=gen, step_index=index))
            events.append(PlanEvent(
                kind="compute", wave=wave_index, board=board.board_id,
                step_index=index))
            board.computes += 1
            if step.output is None:
                continue
            write_gen = write_gens[index]
            assert write_gen is not None
            events.append(PlanEvent(
                kind="define", wave=wave_index, board=board.board_id,
                plane=step.output, generation=write_gen,
                step_index=index))
            key = ((step.output, write_gen) if params.generation_checks
                   else step.output)
            board.cache[key] = write_gen
            events.append(PlanEvent(
                kind="result", wave=wave_index, board=board.board_id,
                plane=step.output, generation=write_gen,
                step_index=index))
            if adopt_results:
                events.append(PlanEvent(
                    kind="adopt", wave=wave_index, board=-1,
                    plane=step.output, generation=write_gen,
                    step_index=index))

    wave_index = 0
    while wave_index < len(waves):
        step_indices = waves[wave_index]
        wave_reads = [(plane, gen)
                      for index in step_indices
                      for plane, gen in zip(program.steps[index].inputs,
                                            read_gens[index])]
        board = _choose_board(boards, params, wave_reads, rr_counter)
        if params.fail_wave == wave_index and board.alive:
            if params.fail_phase == "after_compute":
                # The board ran the wave and shipped its results, then
                # died before the parent adopted them: the segments are
                # orphaned (no adopt, no release) and the wave replays.
                run_wave(wave_index, step_indices, board,
                         adopt_results=False)
            board.alive = False
            events.append(PlanEvent(
                kind="requeue", wave=wave_index, board=board.board_id))
            if (params.requeue == "merge"
                    and wave_index + 1 < len(waves)):
                # The buggy shortcut: the failed wave coalesces with
                # the next one, interleaving dependent steps.
                waves[wave_index] = step_indices + waves[wave_index + 1]
                del waves[wave_index + 1]
                step_indices = waves[wave_index]
            survivor_reads = [(plane, gen)
                              for index in step_indices
                              for plane, gen in zip(
                                  program.steps[index].inputs,
                                  read_gens[index])]
            board = _choose_board(boards, params, survivor_reads,
                                  rr_counter)
        events.append(PlanEvent(kind="wave", wave=wave_index,
                                board=board.board_id))
        # Adoption is always attempted -- the real adopt_result() does
        # not check store state, which is exactly what SHM002 audits.
        run_wave(wave_index, step_indices, board, adopt_results=True)
        final_waves.append(tuple(step_indices))
        if (params.close_after_wave is not None and not store_closed
                and wave_index >= params.close_after_wave):
            events.append(PlanEvent(kind="close", wave=wave_index))
            store_closed = True
        wave_index += 1

    if not store_closed:
        events.append(PlanEvent(kind="close",
                                wave=max(0, len(waves) - 1)))
    return TransportPlan(program_name=program.name, params=params,
                         waves=tuple(final_waves), events=tuple(events))
