"""Runtime transport sanitizer: the dynamic half of the SHM/RES/POOL
rule families.

:mod:`repro.analysis.transport` proves properties of a *lowered plan*;
this module checks the same properties against the *live stack*.  A
:class:`TransportSanitizer` implements the
:class:`~repro.host.shm.TransportObserver` protocol -- the hook sites
in :mod:`repro.host.shm`, :class:`~repro.host.scheduler.CallScheduler`,
and :class:`~repro.pool.pool.EnginePool` notify it of every handle
ship, segment create/release, cache attach/evict, and pool
wave/requeue -- and emits :class:`~repro.analysis.diagnostics.
Diagnostic` findings under the *same rule ids* as the static pass, so
every static verdict is dynamically falsifiable and vice versa.

Opt-in and cheap: nothing is instrumented until a sanitizer is
installed (``REPRO_SANITIZE=transport,residency`` in the environment,
``sanitize=`` on :class:`~repro.host.scheduler.CallScheduler`, or
``SubmitOptions(sanitize=...)`` through the service), and every hook
site is a single module-global ``None`` check when it is not.

:data:`SANITIZE_SELFTESTS` seeds one real bug per rule into the live
primitives (a mutated frame under an in-flight handle, a double
segment release, a one-entry cache thrashing, a pool whose requeue
reorders a wave...) and checks the sanitizer catches it -- run by
``repro-check --sanitize-selftest`` and the CI analysis gate.
"""

from __future__ import annotations

import weakref
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from ..host import shm
from .diagnostics import Diagnostic
from .rules import _diag

#: The checkable rule domains, and what "all" expands to.
DOMAINS = ("transport", "residency", "pool")


def normalize_domains(domains: Sequence[str]) -> Tuple[str, ...]:
    """Validate and canonicalize a domain list (``"all"`` expands)."""
    chosen: Set[str] = set()
    for domain in domains:
        if domain == "all":
            chosen.update(DOMAINS)
        elif domain in DOMAINS:
            chosen.add(domain)
        else:
            raise ValueError(
                f"unknown sanitize domain {domain!r}; expected "
                f"'all' or one of {', '.join(DOMAINS)}")
    return tuple(sorted(chosen))


class TransportSanitizer:
    """Observer-side checkers emitting SHM/RES/POOL diagnostics.

    One instance per process; findings accumulate until
    :meth:`drain`.  All methods tolerate partial event streams (a
    sanitizer installed mid-run simply never flags segments it did not
    see created), so installation order can never produce a false
    positive.
    """

    def __init__(self, domains: Sequence[str] = ("all",)) -> None:
        self.domains: Set[str] = set(normalize_domains(domains))
        self.findings: List[Diagnostic] = []
        # transport state
        self._wave_depth = 0
        self._shipped: Dict[Tuple[str, int], int] = {}
        self._known_segments: Set[str] = set()
        self._live_segments: Set[str] = set()
        # residency state
        self._max_generation: Dict[Tuple[str, int], int] = {}
        self._evicted: Set[Tuple[str, int, int]] = set()
        # pool state
        self._producers: Dict[int, Tuple["weakref.ref[Any]", int]] = {}

    # -- findings ----------------------------------------------------------

    def drain(self) -> List[Diagnostic]:
        """All findings since the last drain (and forget them)."""
        findings, self.findings = self.findings, []
        return findings

    def _emit(self, rule_id: str, message: str) -> None:
        self.findings.append(_diag(rule_id, message))

    # -- wave framing (scheduler-side) -------------------------------------

    def wave_opened(self) -> None:
        self._wave_depth += 1

    def wave_closed(self) -> None:
        self._wave_depth = max(0, self._wave_depth - 1)
        if self._wave_depth == 0:
            self._shipped.clear()

    def handle_shipped(self, handle: shm.FrameHandle) -> None:
        if "transport" not in self.domains or self._wave_depth == 0:
            return
        key = (handle.token, handle.frame_id)
        self._shipped.setdefault(key, handle.generation)

    # -- store lifecycle ---------------------------------------------------

    def frame_registered(self, token: str, frame_id: int,
                         generation: int) -> None:
        if "transport" not in self.domains:
            return
        shipped = self._shipped.get((token, frame_id))
        if shipped is not None and generation > shipped:
            self._emit(
                "SHM001",
                f"frame {frame_id} (store {token}) re-registered at "
                f"generation {generation} while its generation "
                f"{shipped} handle is shipped in the open wave: the "
                f"source was mutated under an in-flight handle")

    def segment_created(self, name: str) -> None:
        self._known_segments.add(name)
        self._live_segments.add(name)

    def segment_released(self, name: str) -> None:
        if name in self._live_segments:
            self._live_segments.discard(name)
            return
        if "transport" not in self.domains:
            return
        if name in self._known_segments:
            self._emit(
                "SHM003",
                f"segment '{name}' released again after its live "
                f"registration was already released: refcount "
                f"underflow (double free)")

    def result_adopted(self, name: str, store_closed: bool) -> None:
        self._known_segments.add(name)
        self._live_segments.add(name)
        if "transport" not in self.domains:
            return
        if store_closed:
            self._emit(
                "SHM002",
                f"result segment '{name}' adopted after the plane "
                f"store closed: the adopted frame outlives the "
                f"store's teardown guarantees")

    # -- worker-cache residency --------------------------------------------

    def cache_attach(self, token: str, frame_id: int, generation: int,
                     cached_generation: Optional[int]) -> None:
        if "residency" not in self.domains:
            return
        key = (token, frame_id)
        newest = self._max_generation.get(key, -1)
        stale_vs = max(cached_generation
                       if cached_generation is not None else -1, newest)
        if generation < stale_vs:
            self._emit(
                "RES001",
                f"worker cache consulted for frame {frame_id} (store "
                f"{token}) with a generation {generation} handle after "
                f"generation {stale_vs} was seen: a stale handle can "
                f"serve mutated-away content")
        self._max_generation[key] = max(newest, generation)
        if (cached_generation is None
                and (token, frame_id, generation) in self._evicted):
            self._evicted.discard((token, frame_id, generation))
            self._emit(
                "RES002",
                f"frame {frame_id}@g{generation} (store {token}) "
                f"re-attached after eviction with its content "
                f"unchanged: cache capacity "
                f"{shm.worker_cache_capacity()} is below this "
                f"workload's reuse distance")

    def cache_evicted(self, token: str, frame_id: int,
                      generation: int) -> None:
        if "residency" not in self.domains:
            return
        self._evicted.add((token, frame_id, generation))

    # -- pool placement and failover ---------------------------------------

    def pool_wave(self, worker_id: int, calls: Sequence[Any],
                  results: Sequence[Any]) -> None:
        if "pool" not in self.domains:
            return
        for call in calls:
            for frame in getattr(call, "frames", ()):
                produced = self._producers.get(id(frame))
                if produced is None:
                    continue
                ref, producer_board = produced
                if ref() is not frame:
                    # id() reuse after the producer's frame died.
                    self._producers.pop(id(frame), None)
                    continue
                if producer_board != worker_id:
                    self._emit(
                        "POOL002",
                        f"board {worker_id} consumes a frame produced "
                        f"on board {producer_board}: placement split "
                        f"a producer/consumer pair, forcing a "
                        f"cross-board reship")
        for result in results:
            if not hasattr(result, "plane"):
                continue  # scalar results carry no residency
            self._producers[id(result)] = (weakref.ref(result),
                                           worker_id)

    def pool_requeued(self, original: Sequence[Any],
                      requeued: Sequence[Any]) -> None:
        if "pool" not in self.domains:
            return
        if [id(call) for call in original] != \
                [id(call) for call in requeued]:
            self._emit(
                "POOL001",
                f"failover requeue altered the wave (len "
                f"{len(original)} -> {len(requeued)}, or order "
                f"changed): replay must be verbatim, or RAW-dependent "
                f"calls can interleave into one dispatch")


# ---------------------------------------------------------------------------
# Process-wide installation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[TransportSanitizer] = None


def active_sanitizer() -> Optional[TransportSanitizer]:
    return _ACTIVE


def install_sanitizer(domains: Sequence[str] = ("all",)
                      ) -> TransportSanitizer:
    """Install a fresh sanitizer as the process-wide observer."""
    global _ACTIVE
    sanitizer = TransportSanitizer(domains)
    _ACTIVE = sanitizer
    shm.set_transport_observer(sanitizer)
    return sanitizer


def ensure_sanitizer(domains: Sequence[str] = ("all",)
                     ) -> TransportSanitizer:
    """The active sanitizer, widened to cover ``domains``.

    Installs one if none is active; an already-active sanitizer keeps
    its findings and gains any missing domains (sanitizers compose by
    domain union, never by chaining observers).
    """
    sanitizer = _ACTIVE
    if sanitizer is None or shm.get_transport_observer() is not sanitizer:
        return install_sanitizer(domains)
    sanitizer.domains.update(normalize_domains(domains))
    return sanitizer


def uninstall_sanitizer() -> Optional[TransportSanitizer]:
    """Remove the active sanitizer; returns it (with its findings)."""
    global _ACTIVE
    sanitizer, _ACTIVE = _ACTIVE, None
    if sanitizer is not None \
            and shm.get_transport_observer() is sanitizer:
        shm.set_transport_observer(None)
    return sanitizer


def reset_for_worker() -> None:
    """Worker-process hygiene: drop state inherited over ``fork()``.

    A forked worker inherits the parent's sanitizer *object* (with the
    parent's accumulated findings); those belong to the parent.  The
    scheduler's pool initializer calls this before installing the
    worker's own sanitizer.
    """
    global _ACTIVE
    _ACTIVE = None
    shm.set_transport_observer(None)


# ---------------------------------------------------------------------------
# Seeded-bug selftests (one real bug per rule, caught live)
# ---------------------------------------------------------------------------

def _small_fmt() -> Any:
    from ..image.formats import ImageFormat
    return ImageFormat("SAN8x8", 8, 8)


def _with_observer(domains: Sequence[str],
                   scenario: Callable[[TransportSanitizer],
                                      Optional[bool]]
                   ) -> Optional[List[Diagnostic]]:
    """Run ``scenario`` under a fresh observer; restore the previous.

    The scenario returns ``True`` to signal "environment cannot run
    this" (no shared memory); the case then reports as skipped.
    """
    previous = shm.set_transport_observer(None)
    sanitizer = TransportSanitizer(domains)
    shm.set_transport_observer(sanitizer)
    try:
        if scenario(sanitizer):
            return None
        return sanitizer.drain()
    finally:
        shm.set_transport_observer(previous)


def _selftest_shm001() -> Optional[List[Diagnostic]]:
    """Mutate a source frame while its handle is shipped in a wave."""
    from ..image.pixel import ALL_CHANNELS
    from ..image.synth import noise_frame

    def scenario(sanitizer: TransportSanitizer) -> Optional[bool]:
        store = shm.PlaneStore()
        try:
            frame = noise_frame(_small_fmt(), seed=1)
            handle = store.register(frame)
            if handle is None:
                return True
            sanitizer.wave_opened()
            sanitizer.handle_shipped(handle)
            frame.plane(ALL_CHANNELS[0])[0, 0] ^= 0xFF
            store.register(frame)  # generation bump under the wave
            sanitizer.wave_closed()
            return None
        finally:
            store.close()

    return _with_observer(("transport",), scenario)


def _selftest_shm002() -> Optional[List[Diagnostic]]:
    """Adopt a worker-shipped result after the store closed."""
    from ..image.synth import noise_frame

    def scenario(_sanitizer: TransportSanitizer) -> Optional[bool]:
        store = shm.PlaneStore()
        result_handle = shm.ship_result(noise_frame(_small_fmt(),
                                                    seed=2))
        if result_handle is None:
            store.close()
            return True
        store.close()
        adopted = store.adopt_result(result_handle)
        del adopted  # the finalizer unlinks the segment
        return None

    return _with_observer(("transport",), scenario)


def _selftest_shm003() -> Optional[List[Diagnostic]]:
    """Release a registered segment twice (refcount underflow)."""
    from ..image.synth import noise_frame

    def scenario(_sanitizer: TransportSanitizer) -> Optional[bool]:
        store = shm.PlaneStore()
        try:
            frame = noise_frame(_small_fmt(), seed=3)
            handle = store.register(frame)
            if handle is None:
                return True
            entry = store._entries[id(frame)]
            shm._release_segment(entry.segment)  # legitimate release
            shm._release_segment(entry.segment)  # double free
            return None
        finally:
            store.close()

    return _with_observer(("transport",), scenario)


def _selftest_res001() -> Optional[List[Diagnostic]]:
    """Attach with a stale-generation handle after a content rewrite."""
    from ..image.pixel import ALL_CHANNELS
    from ..image.synth import noise_frame

    def scenario(_sanitizer: TransportSanitizer) -> Optional[bool]:
        if not shm.SHARED_MEMORY_AVAILABLE:
            return True
        shm.reset_worker_cache()
        store = shm.PlaneStore()
        try:
            frame = noise_frame(_small_fmt(), seed=4)
            stale = store.register(frame)
            if stale is None:
                return True
            shm.worker_attach(stale)
            frame.plane(ALL_CHANNELS[0])[0, 0] ^= 0xFF
            fresh = store.register(frame)
            assert fresh is not None and fresh.generation == 1
            shm.worker_attach(fresh)
            try:
                shm.worker_attach(stale)  # the seeded bug
            except Exception:
                pass  # the stale segment is already unlinked
            return None
        finally:
            shm.reset_worker_cache()
            store.close()

    return _with_observer(("residency",), scenario)


def _selftest_res002() -> Optional[List[Diagnostic]]:
    """Thrash a one-entry cache: evict, then re-attach unchanged."""
    from ..image.synth import noise_frame

    def scenario(_sanitizer: TransportSanitizer) -> Optional[bool]:
        if not shm.SHARED_MEMORY_AVAILABLE:
            return True
        shm.reset_worker_cache()
        previous_cap = shm.set_worker_cache_capacity(1)
        store = shm.PlaneStore()
        try:
            frame_a = noise_frame(_small_fmt(), seed=5)
            frame_b = noise_frame(_small_fmt(), seed=6)
            handle_a = store.register(frame_a)
            handle_b = store.register(frame_b)
            if handle_a is None or handle_b is None:
                return True
            shm.worker_attach(handle_a)
            shm.worker_attach(handle_b)  # evicts frame_a's entry
            shm.worker_attach(handle_a)  # re-ship of unchanged content
            return None
        finally:
            shm.set_worker_cache_capacity(previous_cap)
            shm.reset_worker_cache()
            store.close()

    return _with_observer(("residency",), scenario)


def _pool_fixture() -> Tuple[Any, Any]:
    """A 2-board pool plus a deterministic small intra call factory."""
    from ..addresslib.ops import INTRA_OPS
    from ..addresslib.library import BatchCall
    from ..image.synth import noise_frame
    from ..pool.pool import EnginePool

    op = INTRA_OPS[sorted(INTRA_OPS)[0]]

    def make_call(seed: int) -> Any:
        return BatchCall.intra(op, noise_frame(_small_fmt(), seed=seed))

    return EnginePool.of_engines(2), make_call


def _selftest_pool001() -> Optional[List[Diagnostic]]:
    """A buggy requeue override reorders a failed wave."""
    from ..core.errors import EngineDeadlock

    def scenario(_sanitizer: TransportSanitizer) -> Optional[bool]:
        pool, make_call = _pool_fixture()

        def reversed_requeue(calls: Sequence[Any]) -> List[Any]:
            return list(reversed(calls))  # the seeded bug

        pool._requeue = reversed_requeue  # type: ignore[method-assign]

        def boom(calls: Sequence[Any]) -> Any:
            raise EngineDeadlock("injected board failure")

        pool.workers[0].run_wave = boom  # type: ignore[method-assign]
        pool.dispatch([make_call(7), make_call(8)])
        pool.close()
        return None

    return _with_observer(("pool",), scenario)


def _selftest_pool002() -> Optional[List[Diagnostic]]:
    """Round-robin placement splits a producer/consumer pair."""
    from ..addresslib.library import BatchCall
    from ..addresslib.ops import INTRA_OPS
    from ..pool.placement import RoundRobinPlacement

    def scenario(_sanitizer: TransportSanitizer) -> Optional[bool]:
        pool, make_call = _pool_fixture()
        pool.placement = RoundRobinPlacement()
        produced = pool.dispatch([make_call(9)])
        result = produced.results[0]
        op = INTRA_OPS[sorted(INTRA_OPS)[0]]
        assert not isinstance(result, int)
        pool.dispatch([BatchCall.intra(op, result)])
        pool.close()
        return None

    return _with_observer(("pool",), scenario)


#: Rule id -> the seeded-bug scenario that must trigger it (``None``
#: result = environment cannot run the scenario, reported as skipped).
SANITIZE_SELFTESTS: Dict[str, Tuple[
        Callable[[], Optional[List[Diagnostic]]], str]] = {
    "shipped handle mutated mid-wave": (_selftest_shm001, "SHM001"),
    "result adopted after store close": (_selftest_shm002, "SHM002"),
    "segment double free": (_selftest_shm003, "SHM003"),
    "stale-generation cache attach": (_selftest_res001, "RES001"),
    "eviction horizon below reuse distance": (_selftest_res002,
                                              "RES002"),
    "failover requeue reorders wave": (_selftest_pool001, "POOL001"),
    "round-robin splits producer/consumer": (_selftest_pool002,
                                             "POOL002"),
}
