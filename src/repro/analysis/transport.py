"""Transport/residency/pool rules over a lowered wave plan.

These rule families audit the :class:`~repro.analysis.dataflow.
TransportPlan` event stream -- the static mirror of what
:mod:`repro.host.shm`, :class:`~repro.host.scheduler.CallScheduler`,
and :class:`~repro.pool.pool.EnginePool` do at runtime:

* ``SHM00x`` -- shared-memory handle lifecycle: a source plane mutated
  while its handle is in flight, a result adopted after store close, a
  segment released twice or orphaned by a worker death.
* ``RES00x`` -- worker-cache residency: stale-by-generation hits,
  eviction horizons shorter than a wave's reuse distance.
* ``POOL00x`` -- placement and failover: RAW-dependent calls merged
  into one wave by a requeue policy, producer/consumer pairs split
  across boards by the *actual* placement (generalizing SVC002, which
  only sees hints).

The runtime sanitizer (:mod:`repro.analysis.sanitize`) emits the same
rule ids from the live stack, so every verdict here is dynamically
falsifiable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .dataflow import PlanEvent, TransportPlan
from .diagnostics import Diagnostic
from .rules import _diag


def _step_label(plan: TransportPlan, event: PlanEvent) -> str:
    return (f"wave {event.wave}"
            + (f", step {event.step_index}"
               if event.step_index is not None else ""))


def shm_rules(plan: TransportPlan) -> List[Diagnostic]:
    """SHM001-SHM003: handle and segment lifecycle over the plan."""
    findings: List[Diagnostic] = []
    # SHM001: within one wave, a plane both ships at generation g and
    # is (re)defined at a later generation -- the parent mutated the
    # source while a worker still holds the old handle's segment name.
    shipped: Dict[int, Dict[str, int]] = {}
    for event in plan.events:
        if event.kind == "ship":
            shipped.setdefault(event.wave, {})[event.plane] = \
                event.generation
        elif event.kind == "define":
            in_flight = shipped.get(event.wave, {})
            if (event.plane in in_flight
                    and event.generation > in_flight[event.plane]):
                findings.append(_diag(
                    "SHM001",
                    f"plane '{event.plane}' shipped at generation "
                    f"{in_flight[event.plane]} and redefined at "
                    f"generation {event.generation} inside wave "
                    f"{event.wave}: the in-flight handle now names "
                    f"mutated content",
                    step_index=event.step_index,
                    step_label=f"wave {event.wave}"))
    # SHM002: adopt events after the close event.
    closed = False
    for event in plan.events:
        if event.kind == "close":
            closed = True
        elif event.kind == "adopt" and closed:
            findings.append(_diag(
                "SHM002",
                f"result '{event.plane}'@g{event.generation} adopted "
                f"in wave {event.wave} after the plane store closed: "
                f"the parent attaches a segment the store already "
                f"tore down",
                step_index=event.step_index,
                step_label=f"wave {event.wave}"))
    # SHM003: every result segment a board ships must eventually be
    # adopted by the parent (adoption transfers release ownership); a
    # board that dies after compute orphans its results -- nobody will
    # ever release those segments.  An adopt matches the *latest*
    # unadopted result for its key, so a replayed wave's adoption
    # cannot mask the dead board's orphan.
    pending: Dict[Tuple[str, int, Optional[int]], List[PlanEvent]] = {}
    for event in plan.events:
        key = (event.plane, event.generation, event.step_index)
        if event.kind == "result":
            pending.setdefault(key, []).append(event)
        elif event.kind == "adopt" and pending.get(key):
            pending[key].pop()
    orphans = [event for results in pending.values()
               for event in results]
    for event in orphans:
        findings.append(_diag(
            "SHM003",
            f"result segment for '{event.plane}'@g{event.generation} "
            f"shipped from board {event.board} in wave {event.wave} "
            f"was never adopted: the worker died after compute and "
            f"the segment leaks (no owner left to release it)",
            step_index=event.step_index,
            step_label=f"wave {event.wave}"))
    return findings


def residency_rules(plan: TransportPlan) -> List[Diagnostic]:
    """RES001-RES002: worker-cache generation and horizon checks."""
    findings: List[Diagnostic] = []
    # RES001: a cache hit served at a generation below the one the
    # reading step needs -- only reachable when the modelled cache is
    # identity-keyed (generation_checks=False) or a failover left a
    # stale copy on another board.
    for event in plan.events:
        if event.kind != "hit" or event.want_generation is None:
            continue
        if event.generation < event.want_generation:
            findings.append(_diag(
                "RES001",
                f"board {event.board} cache served plane "
                f"'{event.plane}' at generation {event.generation} "
                f"where wave {event.wave} needs generation "
                f"{event.want_generation}: stale residency read",
                step_label=f"wave {event.wave}"))
    # RES002: a plane evicted and later re-shipped at the same
    # generation on the same board -- the cache horizon is shorter
    # than the plan's reuse distance, so the transport pays a
    # redundant round trip for unchanged content.
    evicted: Set[Tuple[int, str, int]] = set()
    for event in plan.events:
        key = (event.board, event.plane, event.generation)
        if event.kind == "evict":
            evicted.add(key)
        elif event.kind == "define":
            evicted.discard(key)
        elif event.kind == "ship" and key in evicted:
            evicted.discard(key)
            findings.append(_diag(
                "RES002",
                f"plane '{event.plane}'@g{event.generation} re-shipped "
                f"to board {event.board} in wave {event.wave} after "
                f"eviction: cache capacity "
                f"{plan.params.cache_capacity} is below this plan's "
                f"reuse distance",
                step_label=f"wave {event.wave}"))
    return findings


def pool_rules(plan: TransportPlan) -> List[Diagnostic]:
    """POOL001-POOL002: wave formation and actual placement."""
    findings: List[Diagnostic] = []
    # POOL001: one wave defines a plane generation and uses it -- a
    # requeue policy interleaved RAW-dependent steps, so the consumer
    # dispatches before its producer's result exists board-side.
    defined_in_wave: Dict[int, Set[Tuple[str, int]]] = {}
    for event in plan.events:
        if event.kind == "define":
            defined_in_wave.setdefault(event.wave, set()).add(
                (event.plane, event.generation))
    reported: Set[Tuple[int, str, int]] = set()
    for event in plan.events:
        if event.kind != "use":
            continue
        key = (event.plane, event.generation)
        mark = (event.wave, event.plane, event.generation)
        if (key in defined_in_wave.get(event.wave, set())
                and mark not in reported):
            reported.add(mark)
            findings.append(_diag(
                "POOL001",
                f"wave {event.wave} both defines and uses plane "
                f"'{event.plane}'@g{event.generation}: requeue policy "
                f"'{plan.params.requeue}' interleaved RAW-dependent "
                f"calls into one dispatch",
                step_index=event.step_index,
                step_label=f"wave {event.wave}"))
    # POOL002: the consuming board differs from the defining board --
    # actual placement (not a hint) split a producer/consumer pair,
    # so the result must reship across boards.
    defined_on: Dict[Tuple[str, int], Tuple[int, int]] = {}
    pool_reported: Set[Tuple[int, str, int]] = set()
    for event in plan.events:
        key = (event.plane, event.generation)
        if event.kind == "define":
            defined_on[key] = (event.board, event.wave)
        elif event.kind == "use" and key in defined_on:
            producer_board, producer_wave = defined_on[key]
            mark = (event.wave, event.plane, event.generation)
            if (producer_board != event.board
                    and mark not in pool_reported):
                pool_reported.add(mark)
                findings.append(_diag(
                    "POOL002",
                    f"plane '{event.plane}'@g{event.generation} "
                    f"produced on board {producer_board} (wave "
                    f"{producer_wave}) but consumed on board "
                    f"{event.board} (wave {event.wave}) under "
                    f"'{plan.params.placement}' placement: the result "
                    f"reships across boards instead of staying "
                    f"resident",
                    step_index=event.step_index,
                    step_label=f"wave {event.wave}"))
    return findings


def transport_rules(plan: TransportPlan) -> List[Diagnostic]:
    """All SHM/RES/POOL findings for one lowered plan, in rule order."""
    findings: List[Diagnostic] = []
    findings.extend(shm_rules(plan))
    findings.extend(residency_rules(plan))
    findings.extend(pool_rules(plan))
    return findings
