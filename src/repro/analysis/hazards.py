"""Program-level dataflow rules (HAZ001-HAZ006).

These rules see the whole :class:`~repro.addresslib.program.CallProgram`
at once: which plane every step reads and writes, in order.  They need
no engine parameters -- a dataflow hazard is wrong on any engine.

The residency rule (HAZ003) mirrors the host's
:class:`~repro.host.driver.FrameResidencyCache` semantics: an input may
claim residency only if the *immediately preceding* step left exactly
that plane in the bank pair the new call will read -- same layout kind
(intra strips alternate block_A/block_B bank pairs; inter gives each
image its own pair) and same input slot, or the previous step's result.
A stale claim makes the engine read banks the data never reached: the
strip read-before-write failure of the double-buffered layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..addresslib.addressing import AddressingMode
from ..addresslib.program import CallProgram, ProgramStep
from ..image.formats import ImageFormat
from .diagnostics import Diagnostic
from .rules import _diag


def _loc(step: ProgramStep) -> Optional[str]:
    return str(step.location) if step.location is not None else None


def dataflow_rules(program: CallProgram) -> List[Diagnostic]:
    """Check every step's reads, writes and residency claims in order."""
    findings: List[Diagnostic] = []
    written: Set[str] = set(program.inputs)
    plane_formats: Dict[str, ImageFormat] = {
        name: program.fmt for name in program.inputs}
    reads: Dict[str, int] = {}
    prev_step: Optional[ProgramStep] = None

    for step in program.steps:
        label = step.describe
        for name in step.inputs:
            if name not in written:
                findings.append(_diag(
                    "HAZ001",
                    f"reads plane '{name}' which no earlier step wrote "
                    f"and which is not a program input",
                    step_index=step.index, step_label=label,
                    location=_loc(step)))
            else:
                produced_fmt = plane_formats.get(name)
                if produced_fmt is not None and produced_fmt != step.fmt:
                    findings.append(_diag(
                        "HAZ006",
                        f"plane '{name}' was produced as "
                        f"{produced_fmt.name} "
                        f"({produced_fmt.width}x{produced_fmt.height}) "
                        f"but is consumed as {step.fmt.name} "
                        f"({step.fmt.width}x{step.fmt.height})",
                        step_index=step.index, step_label=label,
                        location=_loc(step)))
            reads[name] = reads.get(name, 0) + 1
        if step.output is not None and step.output in step.inputs:
            findings.append(_diag(
                "HAZ002",
                f"writes plane '{step.output}' in place while reading "
                f"it: the engine streams the result to the result banks "
                f"while the input banks are still being consumed, so "
                f"the host buffer would tear",
                step_index=step.index, step_label=label,
                location=_loc(step)))
        if (step.mode is AddressingMode.INTER and len(step.inputs) == 2
                and step.inputs[0] == step.inputs[1]):
            findings.append(_diag(
                "HAZ004",
                f"both inter inputs are plane '{step.inputs[0]}': the "
                f"same data ships over the PCI twice (bank pairs 0/1 "
                f"and 2/3 each get a copy)",
                step_index=step.index, step_label=label,
                location=_loc(step)))
        findings.extend(_residency_rules(step, prev_step, label))
        if step.output is not None:
            written.add(step.output)
            plane_formats[step.output] = step.fmt
        prev_step = step

    findings.extend(_dead_store_rules(program, reads))
    return findings


def _residency_rules(step: ProgramStep, prev_step: Optional[ProgramStep],
                     label: str) -> List[Diagnostic]:
    """HAZ003: validate each ``resident=True`` claim against the banks
    the previous step actually left behind."""
    if step.resident is None or not any(step.resident):
        return []
    findings: List[Diagnostic] = []
    if len(step.resident) != len(step.inputs):
        findings.append(_diag(
            "HAZ003",
            f"resident flags ({len(step.resident)}) do not match the "
            f"step's {len(step.inputs)} input(s)",
            step_index=step.index, step_label=label, location=_loc(step)))
        return findings
    for slot, (name, claimed) in enumerate(zip(step.inputs,
                                               step.resident)):
        if not claimed:
            continue
        if prev_step is None:
            findings.append(_diag(
                "HAZ003",
                f"input '{name}' claims residency but no previous call "
                f"loaded the banks",
                step_index=step.index, step_label=label,
                location=_loc(step)))
            continue
        if name == prev_step.output:
            # Previous result reused: lives in the result banks, needs
            # the on-board copy, but the data is on the board.  Valid.
            continue
        same_layout = (len(prev_step.inputs) == len(step.inputs))
        same_slot = (slot < len(prev_step.inputs)
                     and prev_step.inputs[slot] == name)
        if not (same_layout and same_slot):
            where = (f"previous call held "
                     f"[{', '.join(prev_step.inputs)}] with "
                     f"{len(prev_step.inputs)} input(s)")
            findings.append(_diag(
                "HAZ003",
                f"input '{name}' (slot {slot}) claims residency, but "
                f"{where}: the {step.mode.value} layout would read a "
                f"bank pair the data never reached (intra alternates "
                f"block_A/block_B per strip; inter pins one pair per "
                f"image)",
                step_index=step.index, step_label=label,
                location=_loc(step)))
    return findings


def _dead_store_rules(program: CallProgram,
                      reads: Dict[str, int]) -> List[Diagnostic]:
    """HAZ005: planes written, never consumed, never returned."""
    findings: List[Diagnostic] = []
    live = set(reads) | set(program.results)
    for step in program.steps:
        if step.output is not None and step.output not in live:
            findings.append(_diag(
                "HAZ005",
                f"plane '{step.output}' is written but no later step "
                f"reads it and it is not a program result: the whole "
                f"call (input DMA, processing, readback) is dead work",
                step_index=step.index, step_label=step.describe,
                location=_loc(step)))
    return findings
