"""AsyncEngineClient: the asyncio facade over the serving stack.

:class:`~repro.service.EngineService` is a blocking ``submit()`` /
``drain()`` pair: tickets resolve only when the caller pumps the
dispatch loop itself.  That shape cannot serve concurrent producers --
nothing suspends, nothing streams, a full queue can only reject.  This
module wraps one service (and therefore one
:class:`~repro.pool.EnginePool`) in an asyncio front end with the three
behaviours real serving needs:

* **Awaitable tickets** -- ``ticket = await client.submit(call, opts)``
  returns an :class:`AsyncTicket`; ``await ticket`` suspends until the
  request's wave retires and evaluates to the call's functional result
  (bit-exact with serial submission -- execution underneath is the same
  vector executor on the same pool).
* **Background dispatch** -- a single asyncio task steps the service
  one micro-batched wave at a time whenever work is queued, yielding
  to the event loop between waves, so completions stream out while
  producers are still submitting.
* **Backpressure** -- when the bounded
  :class:`~repro.service.RequestQueue` is at depth, ``submit`` suspends
  the producer on the queue's space-listener wake path instead of
  rejecting; admission *policy* rejections (``OVERLOAD``) still come
  back as resolved tickets, because shedding over-budget work is a
  serving decision, not a capacity accident.

Time stays *modeled*: arrivals carried in
:attr:`~repro.api.SubmitOptions.arrival_seconds` advance the same
deterministic virtual clock the synchronous path uses, so a fixed
trace replayed through this facade produces machine-independent books.
Wall-clock timestamps are kept alongside (``wall_submit_seconds`` /
``wall_resolve_seconds`` on the ticket) for the load harness's real
latency percentiles.

Typical flow::

    async with AsyncEngineClient(service) as client:
        tickets = [await client.submit(call) for call in calls]
        results = [await t for t in tickets]

Streaming::

    async for ticket in client.completions():
        handle(ticket.result())
"""

from __future__ import annotations

import asyncio
import time
from typing import (TYPE_CHECKING, Dict, Generator, List, Optional,
                    Union)

from ..addresslib.library import BatchCall
from ..image.frame import Frame
from ..service.engine_service import EngineService, ServiceReport
from ..service.request import ServiceError, ServiceTicket

if TYPE_CHECKING:
    from ..api import SubmitOptions

#: Sentinel closing a completion stream (pushed on client shutdown).
_END_OF_STREAM = object()


class AsyncTicket:
    """One submission's awaitable handle.

    Wraps the synchronous :class:`~repro.service.ServiceTicket` and an
    :class:`asyncio.Future` the dispatch loop resolves when the
    request's wave retires (or the request is rejected / times out).
    ``await ticket`` gives the functional result and raises
    :class:`~repro.service.ServiceError` for a request that never
    completed; ``await ticket.wait()`` never raises -- it returns the
    resolved underlying ticket for callers (like the load harness)
    that account rejections rather than treat them as errors.
    """

    def __init__(self, ticket: ServiceTicket,
                 future: "asyncio.Future[ServiceTicket]") -> None:
        self.ticket = ticket
        self._future = future
        #: Wall clock (``time.perf_counter``) at submission.
        self.wall_submit_seconds = time.perf_counter()
        #: Wall clock when the dispatch loop resolved the ticket.
        self.wall_resolve_seconds: Optional[float] = None

    # -- delegation -----------------------------------------------------------

    @property
    def request_id(self) -> int:
        return self.ticket.request_id

    @property
    def done(self) -> bool:
        return self.ticket.done

    @property
    def accepted(self) -> bool:
        return self.ticket.accepted

    @property
    def latency_seconds(self) -> Optional[float]:
        """Modeled end-to-end latency (``None`` until completed)."""
        return self.ticket.latency_seconds

    @property
    def wall_latency_seconds(self) -> Optional[float]:
        """Wall seconds from submission to resolution."""
        if self.wall_resolve_seconds is None:
            return None
        return self.wall_resolve_seconds - self.wall_submit_seconds

    def result(self) -> Union[Frame, int]:
        """The resolved result; raises :class:`ServiceError` unless
        the request completed (same contract as the sync ticket)."""
        return self.ticket.result()

    # -- awaiting -------------------------------------------------------------

    async def wait(self) -> ServiceTicket:
        """Suspend until resolved; returns the underlying ticket
        whatever its outcome (completed, rejected, or timed out)."""
        return await asyncio.shield(self._future)

    async def _awaited_result(self) -> Union[Frame, int]:
        await self.wait()
        return self.ticket.result()

    def __await__(self) -> Generator[object, None, Union[Frame, int]]:
        return self._awaited_result().__await__()

    def _resolve(self) -> None:
        if not self._future.done():
            self.wall_resolve_seconds = time.perf_counter()
            self._future.set_result(self.ticket)

    def _fail(self, exc: BaseException) -> None:
        if not self._future.done():
            self.wall_resolve_seconds = time.perf_counter()
            self._future.set_exception(exc)


class AsyncEngineClient:
    """Asyncio front end over one :class:`EngineService`.

    The client does not own the service (close the pool through the
    service/pool context managers as usual); it owns only the dispatch
    task and the ticket futures.  Use as an async context manager, or
    call :meth:`start` / :meth:`close` explicitly.

    ``backpressure=False`` restores the synchronous queue behaviour
    (full queue -> immediate ``QUEUE_FULL`` rejection) for callers that
    prefer explicit shedding over producer suspension.
    """

    def __init__(self, service: EngineService, *,
                 backpressure: bool = True) -> None:
        self.service = service
        self.backpressure = backpressure
        #: Submits that suspended at least once on a full queue.
        self.backpressure_waits = 0
        #: Wall seconds producers spent suspended on the queue.
        self.backpressure_wall_seconds = 0.0
        self._tickets: Dict[int, AsyncTicket] = {}
        self._resolved_unsettled: List[AsyncTicket] = []
        self._streams: List["asyncio.Queue[object]"] = []
        self._outstanding = 0
        self._dispatch_task: Optional["asyncio.Task[None]"] = None
        self._work: Optional[asyncio.Event] = None
        self._space: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Attach to the running event loop and start dispatching."""
        if self._dispatch_task is not None:
            return
        if self._closed:
            raise ServiceError("client is closed")
        self._work = asyncio.Event()
        self._space = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self.service.queue.add_space_listener(self._on_queue_space)
        self.service.on_resolved = self._on_resolved
        self._dispatch_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop())

    async def close(self) -> None:
        """Stop the dispatch loop and end every completion stream.

        Unresolved tickets are failed with :class:`ServiceError` --
        closing a client with work in flight is an abandonment, and a
        silent never-resolving future would hang its awaiter forever.
        """
        if self._closed:
            return
        self._closed = True
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
            self._dispatch_task = None
            self.service.queue.remove_space_listener(self._on_queue_space)
            self.service.on_resolved = None
        for ticket in list(self._tickets.values()):
            ticket._fail(ServiceError(
                f"client closed with request {ticket.request_id} "
                f"unresolved"))
        self._tickets.clear()
        for stream in self._streams:
            stream.put_nowait(_END_OF_STREAM)

    async def __aenter__(self) -> "AsyncEngineClient":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- submission -----------------------------------------------------------

    async def submit(self, call: BatchCall,
                     options: Optional["SubmitOptions"] = None
                     ) -> AsyncTicket:
        """Offer one call; suspends under backpressure, never blocks
        the event loop.

        The returned :class:`AsyncTicket` is already resolved for
        admission rejections (``OVERLOAD``, ``TENANT_QUOTA``, or
        ``QUEUE_FULL`` with ``backpressure=False``); otherwise it
        resolves when the background loop retires the request's wave.
        Backpressure suspension is tied to *queue depth* only: a tenant
        at its own :class:`~repro.service.TenantPolicy` quota is shed
        explicitly (a resolved ``TENANT_QUOTA`` ticket), never parked
        against capacity it may not be allowed to take.
        ``options.arrival_seconds`` paces the modeled clock exactly as
        the synchronous open-loop replay does: waves startable before
        the arrival are dispatched first, so admission sees the same
        modeled backlog either way.
        """
        self.start()
        if self._closed:
            raise ServiceError("client is closed")
        if options is not None and options.arrival_seconds is not None:
            # Same pacing as the serial path's run_until-then-submit:
            # deterministic, machine-independent admission decisions.
            self.service.run_until(options.arrival_seconds)
            self._settle()
        if self.backpressure:
            await self._wait_for_space()
        ticket = self.service.submit(call, options)
        future: "asyncio.Future[ServiceTicket]" = (
            asyncio.get_running_loop().create_future())
        async_ticket = AsyncTicket(ticket, future)
        if ticket.done:
            # Rejected at admission: resolve immediately and stream it,
            # so reject accounting rides the same completion path.
            async_ticket._resolve()
            self._push_to_streams(async_ticket)
        else:
            self._tickets[ticket.request_id] = async_ticket
            self._outstanding += 1
            assert self._idle is not None and self._work is not None
            self._idle.clear()
            self._work.set()
        return async_ticket

    async def _wait_for_space(self) -> None:
        """Suspend until the bounded queue has a slot.

        Several producers may be parked here; the queue's space
        listener wakes them all and each re-checks -- losers go back to
        waiting, so FIFO-within-priority never depends on wake order.
        """
        assert self._space is not None and self._work is not None
        waited = False
        wall_start = 0.0
        while not self.service.queue.has_space:
            if not waited:
                waited = True
                self.backpressure_waits += 1
                wall_start = time.perf_counter()
            # A full queue can only drain through the dispatch loop.
            self._work.set()
            self._space.clear()
            await self._space.wait()
        if waited:
            self.backpressure_wall_seconds += (
                time.perf_counter() - wall_start)

    def release(self, ticket: AsyncTicket) -> None:
        """Drop the service-side record of a resolved ticket (see
        :meth:`EngineService.release`) -- the memory valve a
        million-request replay needs."""
        self.service.release(ticket.ticket)

    # -- streaming ------------------------------------------------------------

    def completions(self) -> "CompletionStream":
        """Open a stream of tickets in resolution order.

        Every resolved ticket is streamed -- completions, rejections
        and timeouts alike (the consumer is the natural place for
        reject accounting).  Registration is *eager*: tickets resolving
        after this call is made are never missed, even if the consumer
        task has not started iterating yet -- which is why this is a
        plain method, not an async generator.  The stream ends when the
        client closes; a consumer leaving early should ``await
        stream.aclose()`` (or use ``async with``) so the client stops
        buffering for it.
        """
        return CompletionStream(self)

    # -- draining -------------------------------------------------------------

    async def drain(self) -> ServiceReport:
        """Suspend until every accepted request has resolved; returns
        the service books (the async analogue of ``drain()``)."""
        self.start()
        assert self._idle is not None and self._work is not None
        while self.service.queue or self._outstanding:
            self._work.set()
            # Yield so the dispatch task runs even when the idle event
            # is already set (work submitted behind the client's back).
            await asyncio.sleep(0)
            await self._idle.wait()
        return self.service.drain()

    # -- dispatch internals ---------------------------------------------------

    def _on_queue_space(self) -> None:
        if self._space is not None:
            self._space.set()

    def _on_resolved(self, ticket: ServiceTicket) -> None:
        """Service hook: one ticket left the QUEUED state."""
        async_ticket = self._tickets.pop(ticket.request_id, None)
        if async_ticket is not None:
            self._outstanding -= 1
            self._resolved_unsettled.append(async_ticket)

    def _settle(self) -> None:
        """Resolve futures and feed streams for freshly retired work."""
        if not self._resolved_unsettled:
            self._maybe_idle()
            return
        batch, self._resolved_unsettled = self._resolved_unsettled, []
        for async_ticket in batch:
            async_ticket._resolve()
            self._push_to_streams(async_ticket)
        self._maybe_idle()

    def _maybe_idle(self) -> None:
        if self._idle is not None and self._outstanding == 0:
            self._idle.set()

    def _push_to_streams(self, async_ticket: AsyncTicket) -> None:
        for stream in self._streams:
            stream.put_nowait(async_ticket)

    async def _dispatch_loop(self) -> None:
        """One wave per iteration, a yield between waves.

        The yield is the streaming contract: consumers awaiting
        completions (and producers awaiting space) run between waves,
        not after a full drain.  On an unrecoverable pool error every
        in-flight future is failed with the exception -- a dead pool
        must never strand an awaiter.
        """
        assert self._work is not None
        while True:
            await self._work.wait()
            if not self.service.queue:
                self._work.clear()
                self._maybe_idle()
                continue
            try:
                self.service.step()
            except Exception as exc:
                for async_ticket in list(self._tickets.values()):
                    async_ticket._fail(exc)
                self._tickets.clear()
                self._outstanding = 0
                self._settle()
                # The loop is dead; further submits must not hang on a
                # dispatcher that will never step again.
                self._closed = True
                for stream in self._streams:
                    stream.put_nowait(_END_OF_STREAM)
                raise
            self._settle()
            await asyncio.sleep(0)


class CompletionStream:
    """An eagerly-registered async iterator over resolved tickets.

    Created by :meth:`AsyncEngineClient.completions`; buffering starts
    at creation, so a consumer can open the stream, hand it to a task,
    and submit immediately without racing the task's first iteration.
    Iteration ends when the client closes; :meth:`aclose` (or ``async
    with``) detaches early so an abandoned stream stops buffering.
    """

    def __init__(self, client: AsyncEngineClient) -> None:
        self._client = client
        self._queue: "asyncio.Queue[object]" = asyncio.Queue()
        client._streams.append(self._queue)
        if client._closed:
            self._queue.put_nowait(_END_OF_STREAM)
        self._ended = False

    def __aiter__(self) -> "CompletionStream":
        return self

    async def __anext__(self) -> AsyncTicket:
        if self._ended:
            raise StopAsyncIteration
        item = await self._queue.get()
        if item is _END_OF_STREAM:
            self._detach()
            raise StopAsyncIteration
        assert isinstance(item, AsyncTicket)
        return item

    async def aclose(self) -> None:
        """Detach from the client; safe to call more than once."""
        self._detach()

    async def __aenter__(self) -> "CompletionStream":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self._detach()

    def _detach(self) -> None:
        if not self._ended:
            self._ended = True
            if self._queue in self._client._streams:
                self._client._streams.remove(self._queue)
