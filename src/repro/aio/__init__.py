"""Async streaming front end over the serving stack (``repro.aio``).

An :class:`AsyncEngineClient` wraps one
:class:`~repro.service.EngineService` in an asyncio facade: awaitable
tickets, a background wave-dispatch task, a streaming completion
iterator, and backpressure that suspends producers while the bounded
request queue is at depth.  Execution and the modeled clock underneath
are the synchronous stack's, so results stay bit-exact with serial
submission and trace replays stay deterministic.  See ``docs/LOAD.md``
and the async quickstart in ``docs/SERVICE.md``.
"""

from .client import AsyncEngineClient, AsyncTicket, CompletionStream

__all__ = [
    "AsyncEngineClient",
    "AsyncTicket",
    "CompletionStream",
]
