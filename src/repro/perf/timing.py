"""Analytic AddressEngine call timing (validated against the cycle model).

Table 3 involves thousands of AddressEngine calls per sequence; simulating
each cycle by cycle is wasteful because the call time is closed-form once
the dataflow is understood.  This module provides that closed form,
derived from -- and checked by tests against -- the cycle-level model in
:mod:`repro.core.engine`:

* the PCI moves one 32-bit word per 66 MHz cycle, two words per pixel,
  with a fixed per-DMA-job overhead (strip jobs plus one readback job);
* input transfer fully hides processing for ordinary calls (strip double
  buffering), so the engine-side time is input words + readback words;
* "special" inter calls hold processing until both images are resident:
  the pixel-cycles then run unhidden at the startpipeline's two pixels
  per cycle -- the section 4.1 overhead, bounded by 12.5 % of the input
  transfer time;
* on top of the board time, each call pays a host driver/interrupt
  overhead (interrupt-oriented communication, section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.config import EngineConfig
from ..core.constraints import PLC_TICKS_PER_CYCLE
from ..core.pci import DEFAULT_JOB_OVERHEAD_CYCLES, PCI_CLOCK_HZ


def list_scheduled_makespan(costs: Sequence[float], engines: int) -> float:
    """LPT list-scheduled makespan of ``costs`` across ``engines``.

    The one modelled-dispatch rule every layer prices multi-engine
    execution with: the call scheduler's per-wave makespan, an
    :class:`~repro.pool.EngineWorker`'s wave cost across its modelled
    boards, and the legacy ``virtual_engines`` accounting of
    :class:`~repro.service.EngineService`.  Longest-processing-time
    ordering, each cost on the least-loaded engine.
    """
    loads = [0.0] * max(1, engines)
    for cost in sorted(costs, reverse=True):
        slot = loads.index(min(loads))
        loads[slot] += cost
    return max(loads)


@dataclass(frozen=True)
class TransportCostModel:
    """Cost of moving one call across the parent<->worker boundary.

    The scheduler's analogue of the PCI-transfer arithmetic above: the
    engine model prices moving a frame to the board, this model prices
    moving it to a pool worker.  It drives the inline-bypass decision
    -- a call whose modeled compute saving is below its shipping cost
    stays in the parent.

    Defaults are deliberately conservative; the scheduler replaces
    ``round_trip_s`` with a measured value (two no-op submissions, the
    second timed) once its pool is warm.  The one-off cost of writing a
    frame's planes into a segment at registration is not modeled: it is
    paid once per frame, not per call.
    """

    #: Fixed cost of one grouped submission: queue hop, worker wakeup,
    #: result delivery.  Amortised over the calls sharing the trip.
    round_trip_s: float = 3e-4
    #: Per shared-memory handle: pickle of the tiny handle plus the
    #: (amortised) worker-side attach.
    handle_s: float = 2e-5
    #: Throughput of pickling numpy payloads through the executor's
    #: pipes -- the fallback transport's per-byte cost.
    pickle_bytes_per_s: float = 400e6
    #: Seconds per modeled software instruction when estimating inline
    #: (parent-side) execution from a ``SoftwareCostModel`` profile.
    #: Calibrated against the vector executor's measured throughput on
    #: CIF intra calls, not against the paper's scalar CPUs.
    instruction_s: float = 0.5e-9

    def ship_seconds(self, payload_bytes: int, handles: int,
                     zero_copy: bool, amortized_calls: int = 1,
                     round_trip_s: Optional[float] = None) -> float:
        """Modeled cost of shipping one call to a worker and back.

        ``amortized_calls`` is how many calls share the round trip
        (grouped dispatch sends one submission per worker per wave);
        ``payload_bytes`` only counts under pickle transport
        (``zero_copy`` false).
        """
        fixed = self.round_trip_s if round_trip_s is None else round_trip_s
        cost = fixed / max(1, amortized_calls) + handles * self.handle_s
        if not zero_copy:
            cost += payload_bytes / self.pickle_bytes_per_s
        return cost

    def inline_seconds(self, instructions: float) -> float:
        """Estimated parent-side execution time of one call."""
        return instructions * self.instruction_s


@dataclass(frozen=True)
class EngineTimingModel:
    """Closed-form cycle counts for one AddressEngine call."""

    clock_hz: float = PCI_CLOCK_HZ
    dma_overhead_cycles: int = DEFAULT_JOB_OVERHEAD_CYCLES
    #: Host-side base cost per AddressEngine call (driver entry, call
    #: marshalling, user/kernel crossings).
    host_call_overhead_s: float = 0.5e-3
    #: Host-side cost per serviced interrupt.  The PC-board protocol is
    #: interrupt oriented at DMA-job (strip) granularity, so every call
    #: pays ``dma_jobs + 1`` of these; calibrated so the per-call FPGA
    #: times of Table 3 are reproduced (see EXPERIMENTS.md).
    host_interrupt_service_s: float = 230e-6

    # -- raw cycle components (no EngineConfig needed) -----------------------

    @staticmethod
    def input_words_raw(pixels: int, images_in: int,
                        resident_images: int = 0) -> int:
        """Input DMA payload: two words per pixel per image that is not
        already resident in the ZBT (call chaining keeps a previous
        result on the board)."""
        if not 0 <= resident_images <= images_in:
            raise ValueError(
                f"{resident_images} resident of {images_in} inputs")
        return (images_in - resident_images) * 2 * pixels

    @staticmethod
    def readback_words_raw(pixels: int, produces_image: bool) -> int:
        """Result DMA payload: the image (two words per pixel) or the
        64-bit scalar (two words)."""
        return pixels * 2 if produces_image else 2

    @staticmethod
    def dma_jobs_raw(strips: int, images_in: int,
                     resident_images: int = 0) -> int:
        """Strip jobs (per non-resident image) plus the readback job."""
        return (images_in - resident_images) * strips + 1

    @staticmethod
    def unhidden_processing_cycles_raw(pixels: int, strips: int,
                                       produces_image: bool,
                                       requires_full_frames: bool) -> int:
        """Pixel-cycles that cannot hide behind DMA transfers.

        Image-producing calls overlap processing with the strip transfers
        and the (long) result readback, leaving nothing unhidden.  Scalar
        reduce calls have only a two-word readback: an ordinary reduce
        exposes roughly the last strip's processing (its lines reach the
        IIM only once the strip's DMA job completes), and a *special*
        inter reduce (``requires_full_frames``) exposes the whole frame's
        pixel-cycles at the startpipeline's two pixels per cycle -- the
        section 4.1 overhead.
        """
        if produces_image:
            return 0
        if requires_full_frames:
            return -(-pixels // PLC_TICKS_PER_CYCLE)
        strip_pixels = -(-pixels // max(strips, 1))
        return -(-strip_pixels // PLC_TICKS_PER_CYCLE)

    def call_cycles_raw(self, pixels: int, strips: int, images_in: int,
                        produces_image: bool,
                        requires_full_frames: bool = False,
                        resident_images: int = 0) -> int:
        """Total engine cycles of one call, from raw call geometry.

        ``resident_images`` inputs are already on the board (call
        chaining: a previous call's result, or a kept reference frame)
        and cost no PCI transfer.  With every input resident, the
        processing tail is no longer hidden by the input DMA; the
        unhidden term then covers it like the special-inter case.
        """
        all_resident = resident_images == images_in
        unhidden = self.unhidden_processing_cycles_raw(
            pixels, strips, produces_image,
            requires_full_frames or (all_resident and not produces_image))
        if all_resident and produces_image:
            # With no input phase, Res_block_A gets no prefill: the whole
            # readback drains bank B while the output TxU still writes it.
            # The port arbitration settles into two words per three
            # cycles, i.e. the 2*pixels readback stretches to 3*pixels --
            # one extra cycle per pixel (validated against the simulator).
            unhidden = pixels
        return (self.dma_jobs_raw(strips, images_in, resident_images)
                * self.dma_overhead_cycles
                + self.input_words_raw(pixels, images_in, resident_images)
                + unhidden
                + self.readback_words_raw(pixels, produces_image))

    def host_overhead_seconds_raw(self, strips: int, images_in: int,
                                  resident_images: int = 0) -> float:
        """Host driver cost of one call: base entry plus one interrupt
        service per DMA job and one for the completion interrupt."""
        interrupts = self.dma_jobs_raw(strips, images_in,
                                       resident_images) + 1
        return (self.host_call_overhead_s
                + interrupts * self.host_interrupt_service_s)

    def call_seconds_raw(self, pixels: int, strips: int, images_in: int,
                         produces_image: bool,
                         requires_full_frames: bool = False,
                         resident_images: int = 0) -> float:
        """End-to-end host-visible call time, from raw call geometry."""
        cycles = self.call_cycles_raw(pixels, strips, images_in,
                                      produces_image, requires_full_frames,
                                      resident_images)
        return (cycles / self.clock_hz
                + self.host_overhead_seconds_raw(strips, images_in,
                                                 resident_images))

    # -- cycle components -----------------------------------------------------

    def input_words(self, config: EngineConfig) -> int:
        """Input DMA payload: two words per pixel per image."""
        return self.input_words_raw(config.fmt.pixels, config.images_in)

    def readback_words(self, config: EngineConfig) -> int:
        """Result DMA payload of the call."""
        return self.readback_words_raw(config.fmt.pixels,
                                       config.produces_image)

    def dma_jobs(self, config: EngineConfig) -> int:
        """Strip jobs (per image) plus the single readback job."""
        return self.dma_jobs_raw(config.fmt.strips, config.images_in)

    def unhidden_processing_cycles(self, config: EngineConfig) -> int:
        """Pixel-cycles that cannot hide behind DMA transfers."""
        return self.unhidden_processing_cycles_raw(
            config.fmt.pixels, config.fmt.strips, config.produces_image,
            config.requires_full_frames)

    def call_cycles(self, config: EngineConfig) -> int:
        """Total engine cycles of one call."""
        return self.call_cycles_raw(
            config.fmt.pixels, config.fmt.strips, config.images_in,
            config.produces_image, config.requires_full_frames)

    # -- seconds --------------------------------------------------------------

    def board_seconds(self, config: EngineConfig) -> float:
        """Board-side time of one call (what the cycle model measures)."""
        return self.call_cycles(config) / self.clock_hz

    def call_seconds(self, config: EngineConfig) -> float:
        """End-to-end host-visible time of one call."""
        return (self.board_seconds(config)
                + self.host_overhead_seconds_raw(config.fmt.strips,
                                                 config.images_in))

    # -- strip-pipeline overlap model (block_A/block_B) ----------------------

    def transfer_cycles_raw(self, pixels: int, strips: int, images_in: int,
                            resident_images: int = 0) -> int:
        """Input-phase cycles: payload words plus the strip jobs'
        per-DMA overhead (no processing, no readback)."""
        input_jobs = (images_in - resident_images) * strips
        return (self.input_words_raw(pixels, images_in, resident_images)
                + input_jobs * self.dma_overhead_cycles)

    @staticmethod
    def compute_cycles_raw(pixels: int) -> int:
        """Processing cycles of the whole frame at the startpipeline's
        PLC retirement rate (two pixels per cycle)."""
        return -(-pixels // PLC_TICKS_PER_CYCLE)

    def readback_cycles_raw(self, pixels: int, produces_image: bool) -> int:
        """Result-phase cycles: readback payload plus its DMA job."""
        return (self.readback_words_raw(pixels, produces_image)
                + self.dma_overhead_cycles)

    def serial_call_cycles_raw(self, pixels: int, strips: int,
                               images_in: int, produces_image: bool,
                               requires_full_frames: bool = False,
                               resident_images: int = 0) -> int:
        """The no-overlap (sum) model: every strip first transfers, then
        processes -- transfer + compute + readback, nothing hidden.

        This is what a single-buffered Image Level Controller would
        cost; the paper's block_A/block_B alternation exists precisely
        to beat it (:meth:`overlapped_call_cycles_raw`).
        """
        return (self.transfer_cycles_raw(pixels, strips, images_in,
                                         resident_images)
                + self.compute_cycles_raw(pixels)
                + self.readback_cycles_raw(pixels, produces_image))

    def overlapped_call_cycles_raw(self, pixels: int, strips: int,
                                   images_in: int, produces_image: bool,
                                   requires_full_frames: bool = False,
                                   resident_images: int = 0) -> float:
        """The double-buffered pipeline: while block_A processes strip
        ``k``, block_B receives strip ``k+1``, so the steady state pays
        ``max(transfer, compute)`` per strip instead of their sum:

        ``t + (n - 1) * max(t, c) + c + readback``

        with per-strip transfer ``t`` and compute ``c`` over ``n``
        strips.  Special inter calls (``requires_full_frames``) get no
        credit: processing may only start once both images are fully
        resident, which is exactly the serial sum.  Never exceeds
        :meth:`serial_call_cycles_raw`.
        """
        transfer = self.transfer_cycles_raw(pixels, strips, images_in,
                                            resident_images)
        compute = self.compute_cycles_raw(pixels)
        readback = self.readback_cycles_raw(pixels, produces_image)
        if requires_full_frames:
            return float(transfer + compute + readback)
        n = max(strips, 1)
        t = transfer / n
        c = compute / n
        return t + (n - 1) * max(t, c) + c + readback

    def overlap_efficiency_raw(self, pixels: int, strips: int,
                               images_in: int, produces_image: bool,
                               requires_full_frames: bool = False,
                               resident_images: int = 0) -> float:
        """Fraction of the serial (sum) time the pipeline hides:
        ``1 - overlapped / serial``, in ``[0, 1)``."""
        serial = self.serial_call_cycles_raw(
            pixels, strips, images_in, produces_image,
            requires_full_frames, resident_images)
        if serial <= 0:
            return 0.0
        overlapped = self.overlapped_call_cycles_raw(
            pixels, strips, images_in, produces_image,
            requires_full_frames, resident_images)
        return 1.0 - overlapped / serial

    def serial_call_seconds_raw(self, pixels: int, strips: int,
                                images_in: int, produces_image: bool,
                                requires_full_frames: bool = False,
                                resident_images: int = 0) -> float:
        """Host-visible call time under the no-overlap (sum) model."""
        cycles = self.serial_call_cycles_raw(
            pixels, strips, images_in, produces_image,
            requires_full_frames, resident_images)
        return (cycles / self.clock_hz
                + self.host_overhead_seconds_raw(strips, images_in,
                                                 resident_images))

    def overlapped_call_seconds_raw(self, pixels: int, strips: int,
                                    images_in: int, produces_image: bool,
                                    requires_full_frames: bool = False,
                                    resident_images: int = 0) -> float:
        """Host-visible call time under the double-buffered pipeline."""
        cycles = self.overlapped_call_cycles_raw(
            pixels, strips, images_in, produces_image,
            requires_full_frames, resident_images)
        return (cycles / self.clock_hz
                + self.host_overhead_seconds_raw(strips, images_in,
                                                 resident_images))

    # -- section 4.1 claims ---------------------------------------------------

    def input_transfer_cycles(self, config: EngineConfig) -> int:
        """Cycles spent shipping the input images to the board."""
        return (self.input_words(config)
                + config.images_in * config.fmt.strips
                * self.dma_overhead_cycles)

    def non_pci_fraction(self, config: EngineConfig) -> float:
        """Non-transfer time relative to the input transfer time -- the
        paper's "time wasted not due to the PCI transferences"."""
        return (self.unhidden_processing_cycles(config)
                / self.input_transfer_cycles(config))

    def zbt_bank_bytes_per_second(self) -> float:
        """Per-bank ZBT throughput at the design clock: one 32-bit word
        per cycle = 264 MB/s at 66 MHz (the section 4.1 figure)."""
        return self.clock_hz * 4
