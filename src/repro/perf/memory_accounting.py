"""Memory-access accounting: the model behind Table 2.

Table 2 compares, for one CIF call, the memory access operations of the
software AddressLib against the coprocessor:

========================  ========  ===========  ========  ======
Addressing                Channels  Software     Hardware  Saving
========================  ========  ===========  ========  ======
Inter                     Y -> Y       304 128    202 752    33 %
Intra CON_0               Y -> Y       202 752    202 752     0 %
Intra CON_8               Y -> Y       405 504    202 752    50 %
Intra CON_8               Y,U,V        608 256    202 752   200 %
========================  ========  ===========  ========  ======

*Software* counts element accesses of the planar 4:2:0 frame store: the
steady-state sliding window reloads only the leading window edge (three
fresh reads per step for CON_8) and chroma planes add a quarter of the
luma traffic each.  *Hardware* counts pixel-granular ZBT access
operations: every pixel position is fetched once (all channels, and in
inter mode both images, in parallel across banks) and stored once --
``2 x pixels`` regardless of operation, neighbourhood or channel count.

The paper's "Saving" column mixes two conventions: rows 1-3 report
``(SW - HW) / SW`` while row 4 reports ``(SW - HW) / HW``.  Both are
computed here; :attr:`MemoryAccessRow.paper_saving_percent` picks the one
the paper printed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..addresslib.executor import SoftwareCostModel
from ..addresslib.ops import ChannelSet, IntraOp
from ..image.formats import CIF, ImageFormat


@dataclass(frozen=True)
class MemoryAccessRow:
    """One row of the Table 2 comparison."""

    label: str
    channels_in: str
    channels_out: str
    sw_accesses: int
    hw_accesses: int
    #: Which convention the paper used for this row's saving.
    paper_uses_hw_basis: bool = False

    @property
    def saving_vs_software(self) -> float:
        """(SW - HW) / SW, as a fraction."""
        if self.sw_accesses == 0:
            return 0.0
        return (self.sw_accesses - self.hw_accesses) / self.sw_accesses

    @property
    def saving_vs_hardware(self) -> float:
        """(SW - HW) / HW, as a fraction."""
        if self.hw_accesses == 0:
            return 0.0
        return (self.sw_accesses - self.hw_accesses) / self.hw_accesses

    @property
    def paper_saving_percent(self) -> float:
        """The saving in the convention the paper printed for this row."""
        fraction = (self.saving_vs_hardware if self.paper_uses_hw_basis
                    else self.saving_vs_software)
        return 100.0 * fraction


def hardware_accesses(fmt: ImageFormat, produces_image: bool = True) -> int:
    """Pixel-granular ZBT access operations of one engine call.

    Each pixel position costs one parallel fetch (all needed channels,
    and both images for inter calls, arrive in the same memory cycle via
    the split bank pairs) and one store of the result pixel.
    """
    per_pixel = 1 + (1 if produces_image else 0)
    return per_pixel * fmt.pixels


def table2_rows(fmt: ImageFormat = CIF,
                cost_model: Optional[SoftwareCostModel] = None
                ) -> List[MemoryAccessRow]:
    """The four Table 2 configurations, computed from the models."""
    from ..addresslib.ops import INTRA_COPY, INTRA_HOMOGENEITY

    model = cost_model or SoftwareCostModel()
    hw = hardware_accesses(fmt)
    con8_op: IntraOp = INTRA_HOMOGENEITY  # any CON_8 op; accesses match
    return [
        MemoryAccessRow(
            label="Inter", channels_in="Y", channels_out="Y",
            sw_accesses=model.inter_accesses(fmt, ChannelSet.Y),
            hw_accesses=hw),
        MemoryAccessRow(
            label="Intra CON_0", channels_in="Y", channels_out="Y",
            sw_accesses=model.intra_accesses(INTRA_COPY, fmt, ChannelSet.Y),
            hw_accesses=hw),
        MemoryAccessRow(
            label="Intra CON_8", channels_in="Y", channels_out="Y",
            sw_accesses=model.intra_accesses(con8_op, fmt, ChannelSet.Y),
            hw_accesses=hw),
        MemoryAccessRow(
            label="Intra CON_8", channels_in="Y,U,V", channels_out="Y,U,V",
            sw_accesses=model.intra_accesses(con8_op, fmt, ChannelSet.YUV),
            hw_accesses=hw,
            paper_uses_hw_basis=True),
    ]


#: The numbers Table 2 prints, for assertion in tests and benches.
PAPER_TABLE2 = (
    ("Inter", "Y", "Y", 304_128, 202_752, 33),
    ("Intra CON_0", "Y", "Y", 202_752, 202_752, 0),
    ("Intra CON_8", "Y", "Y", 405_504, 202_752, 50),
    ("Intra CON_8", "Y,U,V", "Y,U,V", 608_256, 202_752, 200),
)
