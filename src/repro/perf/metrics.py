"""Quality metrics for images, mosaics and segmentations.

Small, dependency-free measures used by tests, examples and the
evaluation workloads: PSNR/MAE for reconstruction quality, IoU and Dice
for masks and segments.
"""

from __future__ import annotations

import math

import numpy as np


def mae(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean absolute error between two planes."""
    _check_shapes(reference, candidate)
    return float(np.abs(reference.astype(np.float64)
                        - candidate.astype(np.float64)).mean())


def mse(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean squared error between two planes."""
    _check_shapes(reference, candidate)
    diff = reference.astype(np.float64) - candidate.astype(np.float64)
    return float((diff * diff).mean())


def psnr(reference: np.ndarray, candidate: np.ndarray,
         peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical planes)."""
    error = mse(reference, candidate)
    if error == 0.0:
        return float("inf")
    return 10.0 * math.log10(peak * peak / error)


def iou(mask_a: np.ndarray, mask_b: np.ndarray) -> float:
    """Intersection over union of two boolean masks (1.0 when both are
    empty -- vacuous agreement)."""
    _check_shapes(mask_a, mask_b)
    a = mask_a.astype(bool)
    b = mask_b.astype(bool)
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(a, b).sum() / union)


def dice(mask_a: np.ndarray, mask_b: np.ndarray) -> float:
    """Dice coefficient of two boolean masks."""
    _check_shapes(mask_a, mask_b)
    a = mask_a.astype(bool)
    b = mask_b.astype(bool)
    total = a.sum() + b.sum()
    if total == 0:
        return 1.0
    return float(2.0 * np.logical_and(a, b).sum() / total)


def segment_iou(labels_a: np.ndarray, labels_b: np.ndarray,
                segment_a: int, segment_b: int) -> float:
    """IoU of one segment from each of two label maps."""
    return iou(labels_a == segment_a, labels_b == segment_b)


def best_segment_match(labels: np.ndarray, mask: np.ndarray) -> tuple:
    """The segment that best covers a reference mask: ``(id, iou)``."""
    _check_shapes(labels, mask)
    best_id, best_iou = -1, 0.0
    for segment_id in np.unique(labels[labels >= 0]):
        score = iou(labels == segment_id, mask)
        if score > best_iou:
            best_id, best_iou = int(segment_id), score
    return best_id, best_iou


def _check_shapes(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
