"""Plain-text table rendering and the shared report schema.

Every benchmark prints the rows/series its paper table reports, side by
side with the paper's published values.  This module provides the small
formatting helpers they share, so the output stays uniform, plus the
one ``to_dict()`` schema every report type
(:class:`~repro.host.runtime.RunReport`,
:class:`~repro.host.scheduler.BatchReport`,
:class:`~repro.service.ServiceReport`,
:class:`~repro.pool.PoolReport`) serialises through, so
``repro.summary`` and the BENCH emitters never special-case a report
type again.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

#: The keys every report's ``to_dict()`` payload carries, whatever the
#: report type: ``kind`` names the report, ``calls`` counts executed
#: calls, ``cycles`` is the modeled engine-busy time expressed in PCI
#: clock cycles, ``cache`` holds the residency-cache counters (empty
#: when the layer has none), ``shed`` counts work dropped before
#: execution.
REPORT_SCHEMA_KEYS = ("kind", "calls", "cycles", "cache", "shed")


def base_report_dict(kind: str, *, calls: int, cycles: float,
                     cache: Optional[Mapping[str, int]] = None,
                     shed: int = 0, **extra) -> Dict[str, object]:
    """Build one schema-conforming report dictionary.

    The shared keys are pinned by :data:`REPORT_SCHEMA_KEYS`; report
    types append their own figures through ``extra`` but may not shadow
    a shared key (that would silently fork the schema).
    """
    payload: Dict[str, object] = {
        "kind": kind,
        "calls": int(calls),
        "cycles": float(cycles),
        "cache": dict(cache) if cache else {},
        "shed": int(shed),
    }
    clashes = set(payload) & set(extra)
    if clashes:
        raise ValueError(f"extra report keys shadow the shared schema: "
                         f"{sorted(clashes)}")
    payload.update(extra)
    return payload


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table.

    Numbers are right-aligned, text left-aligned; floats print with two
    decimals unless they are integral.
    """
    def cell(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == int(value) and abs(value) < 1e15:
                return str(int(value))
            return f"{value:.2f}"
        return str(value)

    grid: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in grid:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers")
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))

    def is_numeric_column(index: int) -> bool:
        return all(_numeric(row[index]) for row in grid) and grid

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, text in enumerate(cells):
            if is_numeric_column(index):
                parts.append(text.rjust(widths[index]))
            else:
                parts.append(text.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in grid:
        lines.append(render_row(row))
    return "\n".join(lines)


def _numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def format_seconds(seconds: float) -> str:
    """Format wall time the way Table 3 does: ``M'SS''``."""
    total = int(round(seconds))
    minutes, secs = divmod(total, 60)
    return f"{minutes}'{secs:02d}''"


def ratio_line(label: str, measured: float, paper: float) -> str:
    """One paper-vs-measured comparison line with the deviation factor."""
    if paper == 0:
        return f"{label}: measured={measured:.3g} paper={paper:.3g}"
    factor = measured / paper
    return (f"{label}: measured={measured:.3g} paper={paper:.3g} "
            f"(x{factor:.2f} of paper)")


def call_log_rows(log) -> List[dict]:
    """Flatten an AddressLib :class:`~repro.addresslib.library.CallLog`
    into analysis-friendly dictionaries (one per call)."""
    rows = []
    for index, record in enumerate(log.records):
        row = {
            "index": index,
            "mode": record.mode.value,
            "op": record.op_name,
            "channels": record.channels.name,
            "format": record.format_name,
            "pixels": record.pixels,
            "instructions": (record.profile.total_instructions
                             if record.profile is not None else ""),
        }
        for key, value in sorted(record.extra.items()):
            row[key] = value
        rows.append(row)
    return rows


def write_call_log_csv(path, log) -> int:
    """Dump a call log as CSV (column set = union over calls); returns
    the number of rows written."""
    import csv
    rows = call_log_rows(log)
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames,
                                restval="")
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)
