"""Performance models: CPU cost, engine timing, memory accounting.

These models turn the functional substrates into the numbers the paper's
evaluation section reports: Table 2 (memory accesses), Table 3 (GME wall
times) and the section 4.1 bandwidth/overlap claims.
"""

from .cpu_model import (DEFAULT_CPI, CpuModel, PENTIUM_4_3000,
                        PENTIUM_M_1600)
from .latency import LatencyTracker, percentile
from .metrics import (best_segment_match, dice, iou, mae, mse, psnr,
                      segment_iou)
from .memory_accounting import (MemoryAccessRow, PAPER_TABLE2,
                                hardware_accesses, table2_rows)
from .report import (REPORT_SCHEMA_KEYS, base_report_dict, call_log_rows,
                     format_seconds, format_table, ratio_line,
                     write_call_log_csv)
from .timing import (EngineTimingModel, TransportCostModel,
                     list_scheduled_makespan)

__all__ = [
    "CpuModel",
    "DEFAULT_CPI",
    "EngineTimingModel",
    "TransportCostModel",
    "REPORT_SCHEMA_KEYS",
    "base_report_dict",
    "list_scheduled_makespan",
    "LatencyTracker",
    "MemoryAccessRow",
    "best_segment_match",
    "dice",
    "iou",
    "mae",
    "mse",
    "psnr",
    "segment_iou",
    "PAPER_TABLE2",
    "PENTIUM_4_3000",
    "PENTIUM_M_1600",
    "call_log_rows",
    "format_seconds",
    "format_table",
    "hardware_accesses",
    "percentile",
    "ratio_line",
    "table2_rows",
    "write_call_log_csv",
]
