"""Latency percentile bookkeeping for the service layer.

The service front end (:mod:`repro.service`) completes every request at
a *modeled* time derived from the overlap timing model
(:class:`~repro.perf.timing.EngineTimingModel`); this module turns those
per-request latencies into the percentile figures a serving system is
judged by (p50/p95 of the modeled end-to-end latency).

Percentiles use linear interpolation between closest ranks -- the same
convention as ``numpy.percentile``'s default -- but stay dependency-free
so the tracker can live in hot submit/drain paths without an array
conversion per sample.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples``, interpolated.

    Raises :class:`ValueError` on an empty sample set: a percentile of
    nothing is a bug in the caller's accounting, not a zero.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class LatencyTracker:
    """Accumulates latency samples and answers percentile queries."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total_seconds(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        """Mean latency; 0.0 with no samples (means are summable)."""
        if not self._samples:
            return 0.0
        return self.total_seconds / len(self._samples)

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Percentile ``q`` (0..100); ``None`` with no samples recorded.

        A percentile of an empty sample set is *undefined*, not zero: a
        drain that completed nothing must report "no latency figure",
        never a fake 0.0 that would read as an impossibly fast service.
        """
        if not self._samples:
            return None
        return percentile(self._samples, q)

    @property
    def p50(self) -> Optional[float]:
        return self.quantile(50.0)

    @property
    def p95(self) -> Optional[float]:
        return self.quantile(95.0)

    @property
    def p99(self) -> Optional[float]:
        return self.quantile(99.0)

    def fraction_within(self, bound_seconds: float) -> float:
        """Fraction of recorded samples at or under ``bound_seconds``;
        0.0 with no samples (like the percentiles, an SLO figure over
        nothing is the caller's accounting problem -- check ``count``
        before gating on this)."""
        if not self._samples:
            return 0.0
        within = sum(1 for sample in self._samples
                     if sample <= bound_seconds)
        return within / len(self._samples)

    def to_dict(self) -> dict:
        """The percentile book every latency-reporting layer nests:
        count/mean/p50/p95/p99/max, percentiles ``None`` when empty."""
        return {
            "count": self.count,
            "mean_seconds": self.mean,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "p99_seconds": self.p99,
            "max_seconds": self.max,
        }
