"""Host CPU cost models: instruction profiles -> wall time.

Table 3 compares the MPEG-7 GME software on a Pentium Mobile at 1.6 GHz
(512 MB DDR) against the coprocessor attached to a Pentium 4 at 3 GHz.
Neither machine is available, so per the substitution plan the software
side is timed by an instruction-class cost model: the AddressLib
profiler counts instructions per class (address arithmetic, loads,
stores, ALU, multiplies, branches) and the CPU model maps each class to
an effective cycles-per-instruction figure.

The CPI calibration reflects the *style* of the profiled code -- the
MPEG-7 eXperimentation Model is scalar, double-precision-heavy C++ with
per-pixel virtual dispatch, so loads see real cache-miss amortisation,
multiplies are unpipelined x87 latency, and branches pay mispredictions.
What the model must preserve is the ratio structure of Table 3 (software
a factor ~5 above the coprocessor, per-sequence times tracking call
counts), not absolute 2005 wall clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..addresslib.profiling import INSTRUCTION_CLASSES, OpProfile

#: Default effective CPI per instruction class for scalar XM-style code.
DEFAULT_CPI = {
    "addr": 1.0,
    "load": 3.0,
    "store": 2.0,
    "alu": 1.2,
    "mul": 5.0,
    "branch": 2.0,
}


@dataclass(frozen=True)
class CpuModel:
    """A host CPU: clock plus effective per-class CPI."""

    name: str
    clock_hz: float
    cpi: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_CPI))

    def __post_init__(self) -> None:
        missing = [c for c in INSTRUCTION_CLASSES if c not in self.cpi]
        if missing:
            raise ValueError(f"{self.name}: CPI missing classes {missing}")

    def cycles(self, profile: OpProfile) -> float:
        """Execution cycles of an instruction profile on this CPU."""
        return sum(profile.counts[name] * self.cpi[name]
                   for name in INSTRUCTION_CLASSES)

    def seconds(self, profile: OpProfile) -> float:
        """Wall time of an instruction profile on this CPU."""
        return self.cycles(profile) / self.clock_hz

    def seconds_for_instructions(self, instructions: float,
                                 mean_cpi: float = 1.5) -> float:
        """Wall time of a flat instruction count (high-level control code
        without a per-class breakdown)."""
        return instructions * mean_cpi / self.clock_hz


#: The software baseline host of Table 3: Pentium Mobile, 1.6 GHz.
PENTIUM_M_1600 = CpuModel(name="Pentium M 1.6 GHz", clock_hz=1.6e9)

#: The coprocessor host of Table 3: Pentium 4, 3 GHz.  Same CPI table --
#: the P4's deeper pipeline roughly cancels its clock advantage on this
#: code style, and only the high-level layer runs there.
PENTIUM_4_3000 = CpuModel(name="Pentium 4 3 GHz", clock_hz=3.0e9)
