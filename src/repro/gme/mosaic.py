"""Mosaic compositing from global motion estimates.

The paper's evaluation workload "is used for Mosaicing purposes ... as a
result this software creates a Mosaic with the global motion of the
scene".  :class:`Mosaic` accumulates motion-compensated frames onto a
canvas anchored in the first frame's coordinate system: each frame is
placed through the composition of the pairwise GME models, blended by
averaging (optionally weighted by the estimator's blend mask).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .motion_model import AffineModel
from .warp import warp_luma


class Mosaic:
    """An averaging mosaic canvas in first-frame coordinates."""

    def __init__(self, width: int, height: int,
                 origin: Tuple[float, float] = (0.0, 0.0)) -> None:
        """``origin`` is where the first frame's (0, 0) lands on the
        canvas; size the canvas to cover the expected camera travel."""
        if width <= 0 or height <= 0:
            raise ValueError("mosaic dimensions must be positive")
        self.origin = origin
        self._sum = np.zeros((height, width), dtype=np.float64)
        self._weight = np.zeros((height, width), dtype=np.float64)
        self.frames_accumulated = 0

    @property
    def shape(self) -> Tuple[int, int]:
        return self._sum.shape

    @property
    def coverage(self) -> float:
        """Fraction of canvas pixels touched by at least one frame."""
        return float((self._weight > 0).mean())

    def accumulate(self, luma: np.ndarray, to_first: AffineModel,
                   mask: Optional[np.ndarray] = None) -> None:
        """Blend one frame onto the canvas.

        Args:
            luma: The frame's luminance plane.
            to_first: Model mapping this frame's coordinates to the first
                frame's coordinates (the composed pairwise GME models).
            mask: Optional boolean per-pixel blend mask in *frame*
                coordinates (e.g. the estimator's homogeneity mask).
        """
        ox, oy = self.origin
        # Canvas pixel -> first-frame coords -> this frame's coords.
        canvas_to_frame = to_first.inverse().compose(
            AffineModel(tx=-ox, ty=-oy))
        warped, valid = warp_luma(luma, canvas_to_frame,
                                  output_shape=self.shape)
        if mask is not None:
            mask_w, mask_valid = warp_luma(mask.astype(np.float64),
                                           canvas_to_frame,
                                           output_shape=self.shape)
            valid &= mask_valid & (mask_w > 0.5)
        self._sum[valid] += warped[valid]
        self._weight[valid] += 1.0
        self.frames_accumulated += 1

    def composite(self, background: float = 0.0) -> np.ndarray:
        """The blended mosaic (float64 luma)."""
        out = np.full(self.shape, background, dtype=np.float64)
        covered = self._weight > 0
        out[covered] = self._sum[covered] / self._weight[covered]
        return out

    def reconstruction_error(self, reference: np.ndarray) -> float:
        """Mean absolute error against a reference scene over the covered
        area (tests compare against the ground-truth panorama crop)."""
        covered = self._weight > 0
        if not covered.any():
            return float("inf")
        mosaic = self.composite()
        return float(np.abs(mosaic[covered]
                            - reference[covered]).mean())


