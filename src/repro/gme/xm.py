"""The MPEG-7 XM GME application, as deployed in the paper's evaluation.

Section 4.3: *"The top-level software layer of the Global Motion
Estimation Software was kept in the PC, which accessed the ADM-XRCII
board after every call to the AddressLib."*  This module is that
top-level layer: it decodes (synthesises) frames, drives the estimator
over a sequence, composes the global motion chain and optionally builds
the mosaic.  Which platform executes the AddressLib calls is decided by
the :class:`~repro.host.runtime.Runtime` it is given.

For Table 3, :func:`evaluate_sequence_dual` runs the workload *once*
(the call sequence is platform-independent) and prices the very same
call log on both platforms -- the software Pentium M and the
AddressEngine behind its Pentium 4 host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..addresslib.addressing import AddressingMode
from ..addresslib.executor import SoftwareCostModel
from ..addresslib.library import BatchExecutor, SoftwareBackend
from ..addresslib.profiling import InstructionCost
from ..host.runtime import Runtime, software_platform
from ..perf.cpu_model import CpuModel, PENTIUM_4_3000, PENTIUM_M_1600
from ..perf.timing import EngineTimingModel
from .estimation import (GlobalMotionEstimator, GmeSettings, PairEstimate)
from .mosaic import Mosaic
from .motion_model import AffineModel
from .sequences import SequenceSpec, SyntheticSequence


def xm_cost_model() -> SoftwareCostModel:
    """The software cost model of the XM-based GME baseline.

    The MPEG-7 eXperimentation Model routes every pixel access through
    generic multimedia containers and virtual accessor methods; each
    element touch therefore drags a deep call chain behind it.  The
    per-access overhead below (~154 instructions: call/return frames,
    this-pointer chasing, bounds bookkeeping, format dispatch) is the
    calibration that reproduces Table 3's Pentium-M wall clocks; the
    tight AddressLib C library (Table 2, the factor-30 profile) uses the
    default zero-overhead model instead.
    """
    return SoftwareCostModel(per_access_overhead=InstructionCost(
        addr=40, load=32, store=11, alu=38, mul=4, branch=29))


@dataclass(frozen=True)
class XmCosts:
    """Host-side per-frame costs of the application shell.

    MPEG-1 CIF decode plus sequence control; identical on both platforms
    (it is never offloaded), so it partially masks the AddressLib speedup
    exactly as in the paper.
    """

    decode_instructions_per_frame: float = 9.0e6
    control_instructions_per_frame: float = 1.2e6


@dataclass
class SequenceRunResult:
    """Outcome of running the application over one sequence."""

    name: str
    frames: int
    intra_calls: int
    inter_calls: int
    call_seconds: float
    high_level_seconds: float
    estimates: List[PairEstimate] = field(default_factory=list)
    global_models: List[AffineModel] = field(default_factory=list)
    mosaic: Optional[Mosaic] = None
    #: Mean absolute translation error vs ground truth (pixels/pair),
    #: when the sequence provides ground truth.
    mean_translation_error: Optional[float] = None

    @property
    def total_seconds(self) -> float:
        return self.call_seconds + self.high_level_seconds

    @property
    def total_iterations(self) -> int:
        return sum(e.iterations for e in self.estimates)


class GmeApplication:
    """The application shell: decode, estimate, compose, mosaic."""

    def __init__(self, runtime: Runtime,
                 settings: Optional[GmeSettings] = None,
                 costs: Optional[XmCosts] = None,
                 build_mosaic: bool = False,
                 mosaic_shape: Optional[tuple] = None,
                 scheduler: Optional["BatchExecutor"] = None) -> None:
        self.runtime = runtime
        self.settings = settings or GmeSettings()
        self.costs = costs or XmCosts()
        self.build_mosaic = build_mosaic
        self.mosaic_shape = mosaic_shape
        #: Optional pipelined call scheduler (shards each pair's
        #: independent intra calls across engine workers).
        self.scheduler = scheduler

    def run_sequence(self, sequence: SyntheticSequence) -> SequenceRunResult:
        """Process every frame pair of ``sequence``."""
        runtime = self.runtime
        estimator = GlobalMotionEstimator(
            runtime.lib, self.settings,
            charge=runtime.charge_high_level,
            scheduler=self.scheduler)
        costs = self.costs

        mosaic = None
        if self.build_mosaic:
            shape = self.mosaic_shape or (
                sequence.spec.panorama_height, sequence.spec.panorama_width)
            mosaic = Mosaic(width=shape[1], height=shape[0])

        first = sequence.frame(0)
        runtime.charge_high_level(costs.decode_instructions_per_frame
                                  + costs.control_instructions_per_frame)
        ref_pyramid = estimator.build_pyramid(first)
        if mosaic is not None:
            mosaic.accumulate(first.y.astype(np.float64), AffineModel())

        estimates: List[PairEstimate] = []
        global_models: List[AffineModel] = [AffineModel()]
        warm: Optional[AffineModel] = None
        errors: List[float] = []

        for index in range(1, sequence.frames):
            current = sequence.frame(index)
            runtime.charge_high_level(costs.decode_instructions_per_frame
                                      + costs.control_instructions_per_frame)
            cur_pyramid = estimator.build_pyramid(current)
            estimate = estimator.estimate_pair(ref_pyramid, cur_pyramid,
                                               init=warm)
            estimates.append(estimate)
            warm = estimate.model
            # Compose onto the first frame's coordinate system.
            to_first = global_models[-1].compose(estimate.model)
            global_models.append(to_first)

            truth = sequence.true_pair_model(index - 1)
            errors.append(
                abs(estimate.model.tx - truth.tx)
                + abs(estimate.model.ty - truth.ty))

            if mosaic is not None:
                mosaic.accumulate(current.y.astype(np.float64), to_first,
                                  mask=estimate.blend_mask)
                runtime.charge_high_level(
                    6.0 * mosaic.shape[0] * mosaic.shape[1] / 8)
            ref_pyramid = cur_pyramid

        report = runtime.report()
        return SequenceRunResult(
            name=sequence.spec.name, frames=sequence.frames,
            intra_calls=report.intra_calls,
            inter_calls=report.inter_calls,
            call_seconds=report.call_seconds,
            high_level_seconds=report.high_level_seconds,
            estimates=estimates, global_models=global_models,
            mosaic=mosaic,
            mean_translation_error=(float(np.mean(errors))
                                    if errors else None))


# ---------------------------------------------------------------------------
# Table 3: one run, two platforms
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    """One sequence's row of Table 3, measured and (if scaled) extrapolated."""

    name: str
    frames_run: int
    frames_full: int
    pm_seconds: float
    fpga_seconds: float
    intra_calls: int
    inter_calls: int
    #: Board time of all calls under the no-overlap (sum) strip model.
    fpga_serial_call_seconds: float = 0.0
    #: The same calls under the block_A/block_B double-buffer model.
    fpga_overlapped_call_seconds: float = 0.0

    @property
    def scale_factor(self) -> float:
        """Extrapolation factor from the run length to the full sequence."""
        if self.frames_run <= 1:
            return 1.0
        return (self.frames_full - 1) / (self.frames_run - 1)

    @property
    def speedup(self) -> float:
        if self.fpga_seconds == 0:
            return float("inf")
        return self.pm_seconds / self.fpga_seconds

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the serial strip time the double buffer hides."""
        if self.fpga_serial_call_seconds <= 0.0:
            return 0.0
        return 1.0 - (self.fpga_overlapped_call_seconds
                      / self.fpga_serial_call_seconds)

    def extrapolated(self) -> "Table3Row":
        """The row scaled to the full sequence length."""
        factor = self.scale_factor
        return Table3Row(
            name=self.name, frames_run=self.frames_full,
            frames_full=self.frames_full,
            pm_seconds=self.pm_seconds * factor,
            fpga_seconds=self.fpga_seconds * factor,
            intra_calls=int(round(self.intra_calls * factor)),
            inter_calls=int(round(self.inter_calls * factor)),
            fpga_serial_call_seconds=(
                self.fpga_serial_call_seconds * factor),
            fpga_overlapped_call_seconds=(
                self.fpga_overlapped_call_seconds * factor))


def evaluate_sequence_dual(spec: SequenceSpec, scale: float = 1.0,
                           settings: Optional[GmeSettings] = None,
                           costs: Optional[XmCosts] = None,
                           sw_cpu: CpuModel = PENTIUM_M_1600,
                           hw_host_cpu: CpuModel = PENTIUM_4_3000,
                           timing: Optional[EngineTimingModel] = None
                           ) -> Table3Row:
    """Run one sequence once and price it on both Table 3 platforms.

    The AddressLib call sequence is identical on both platforms (the
    application is the same code), so the workload executes once on the
    software backend; the Pentium M column prices the call profiles on
    the software CPU model, and the FPGA column prices the very same
    calls with the engine timing model plus the high-level share on the
    Pentium 4 host.
    """
    timing = timing or EngineTimingModel()
    runtime = software_platform(
        sw_cpu, backend=SoftwareBackend(cost_model=xm_cost_model()))
    app = GmeApplication(runtime, settings=settings, costs=costs)
    sequence = SyntheticSequence(spec, frames_override=(
        spec.scaled_frames(scale) if scale != 1.0 else None))
    result = app.run_sequence(sequence)

    # FPGA column: engine time for every inter/intra call of the log.
    # Alongside the validated Table 3 pricing, run the same geometry
    # through the no-overlap (sum) and block_A/block_B pipeline models
    # to report what the double buffer hides per sequence.
    fpga_call_seconds = 0.0
    serial_call_seconds = 0.0
    overlapped_call_seconds = 0.0
    for record in runtime.lib.log.records:
        if record.mode not in (AddressingMode.INTER, AddressingMode.INTRA):
            continue
        height = record.extra.get("height")
        strips = (-(-int(height) // 16) if height
                  else -(-record.pixels // (16 * 352)))
        images_in = 2 if record.mode is AddressingMode.INTER else 1
        produces_image = not record.op_name.endswith("+reduce")
        fpga_call_seconds += timing.call_seconds_raw(
            pixels=record.pixels, strips=strips,
            images_in=images_in, produces_image=produces_image)
        serial_call_seconds += timing.serial_call_seconds_raw(
            record.pixels, strips, images_in, produces_image)
        overlapped_call_seconds += timing.overlapped_call_seconds_raw(
            record.pixels, strips, images_in, produces_image)

    # The high-level share runs on the P4 host in the FPGA setup; with the
    # same CPI table it scales by the clock ratio.
    hw_high_level = (result.high_level_seconds
                     * sw_cpu.clock_hz / hw_host_cpu.clock_hz)

    return Table3Row(
        name=spec.name,
        frames_run=sequence.frames, frames_full=spec.frames,
        pm_seconds=result.total_seconds,
        fpga_seconds=fpga_call_seconds + hw_high_level,
        intra_calls=result.intra_calls,
        inter_calls=result.inter_calls,
        fpga_serial_call_seconds=serial_call_seconds,
        fpga_overlapped_call_seconds=overlapped_call_seconds)
