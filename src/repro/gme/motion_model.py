"""Parametric global motion models for the MPEG-7 GME workload.

The MPEG-7 eXperimentation Model's global motion estimation fits a
parametric camera-motion model between frames.  We implement the two
model classes the mosaicing evaluation needs:

* :class:`TranslationalModel` -- 2 parameters ``(tx, ty)``;
* :class:`AffineModel` -- 6 parameters (the 2x3 matrix), covering pan,
  zoom, rotation and shear.

A model maps *current-frame* coordinates to *reference-frame*
coordinates: ``warp(current, model)`` resamples the current frame so it
aligns with the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class TranslationalModel:
    """Pure translation: ``(x, y) -> (x + tx, y + ty)``."""

    tx: float = 0.0
    ty: float = 0.0

    @property
    def parameters(self) -> np.ndarray:
        return np.array([self.tx, self.ty], dtype=np.float64)

    def apply(self, xs: np.ndarray, ys: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Map coordinate arrays through the model."""
        return xs + self.tx, ys + self.ty

    def compose(self, other: "TranslationalModel") -> "TranslationalModel":
        """``self`` after ``other``: translations add."""
        return TranslationalModel(self.tx + other.tx, self.ty + other.ty)

    def inverse(self) -> "TranslationalModel":
        return TranslationalModel(-self.tx, -self.ty)

    def scaled(self, factor: float) -> "TranslationalModel":
        """The same motion expressed at a resampled pyramid level."""
        return TranslationalModel(self.tx * factor, self.ty * factor)

    def with_update(self, delta: np.ndarray) -> "TranslationalModel":
        """Apply a Gauss-Newton parameter update."""
        return TranslationalModel(self.tx + float(delta[0]),
                                  self.ty + float(delta[1]))

    def to_affine(self) -> "AffineModel":
        return AffineModel(1.0, 0.0, self.tx, 0.0, 1.0, self.ty)


@dataclass(frozen=True)
class AffineModel:
    """Affine motion: ``x' = a x + b y + tx``, ``y' = c x + d y + ty``."""

    a: float = 1.0
    b: float = 0.0
    tx: float = 0.0
    c: float = 0.0
    d: float = 1.0
    ty: float = 0.0

    @property
    def parameters(self) -> np.ndarray:
        return np.array([self.a, self.b, self.tx, self.c, self.d, self.ty],
                        dtype=np.float64)

    @property
    def matrix(self) -> np.ndarray:
        """The 3x3 homogeneous matrix."""
        return np.array([[self.a, self.b, self.tx],
                         [self.c, self.d, self.ty],
                         [0.0, 0.0, 1.0]], dtype=np.float64)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "AffineModel":
        if matrix.shape != (3, 3):
            raise ValueError(f"need a 3x3 matrix, got {matrix.shape}")
        return cls(a=float(matrix[0, 0]), b=float(matrix[0, 1]),
                   tx=float(matrix[0, 2]), c=float(matrix[1, 0]),
                   d=float(matrix[1, 1]), ty=float(matrix[1, 2]))

    def apply(self, xs: np.ndarray, ys: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Map coordinate arrays through the model."""
        return (self.a * xs + self.b * ys + self.tx,
                self.c * xs + self.d * ys + self.ty)

    def compose(self, other: "AffineModel") -> "AffineModel":
        """``self`` after ``other`` (matrix product)."""
        return AffineModel.from_matrix(self.matrix @ other.matrix)

    def inverse(self) -> "AffineModel":
        return AffineModel.from_matrix(np.linalg.inv(self.matrix))

    def scaled(self, factor: float) -> "AffineModel":
        """The same motion at a resampled pyramid level: linear part is
        scale-invariant, the translation scales."""
        return AffineModel(self.a, self.b, self.tx * factor,
                           self.c, self.d, self.ty * factor)

    def with_update(self, delta: np.ndarray) -> "AffineModel":
        """Apply a Gauss-Newton update in parameter order
        ``(a, b, tx, c, d, ty)``."""
        p = self.parameters + np.asarray(delta, dtype=np.float64)
        return AffineModel(*p)

    def to_affine(self) -> "AffineModel":
        return self

    @property
    def translation(self) -> Tuple[float, float]:
        return self.tx, self.ty


@dataclass(frozen=True)
class PerspectiveModel:
    """The full 8-parameter MPEG-7 GME model (planar homography).

    ``x' = (a x + b y + tx) / (px x + py y + 1)`` and analogously for
    ``y'`` -- the model class the XM mosaicing tool fits for non-fronto-
    parallel scenes.  The reproduction's estimator refines affine models
    (sufficient for the synthetic pan/zoom sequences); this class
    completes the model algebra so perspective content can be expressed,
    warped and composed.
    """

    a: float = 1.0
    b: float = 0.0
    tx: float = 0.0
    c: float = 0.0
    d: float = 1.0
    ty: float = 0.0
    px: float = 0.0
    py: float = 0.0

    @property
    def parameters(self) -> np.ndarray:
        return np.array([self.a, self.b, self.tx, self.c, self.d,
                         self.ty, self.px, self.py], dtype=np.float64)

    @property
    def matrix(self) -> np.ndarray:
        """The 3x3 homography matrix (last entry normalised to 1)."""
        return np.array([[self.a, self.b, self.tx],
                         [self.c, self.d, self.ty],
                         [self.px, self.py, 1.0]], dtype=np.float64)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "PerspectiveModel":
        if matrix.shape != (3, 3):
            raise ValueError(f"need a 3x3 matrix, got {matrix.shape}")
        scale = matrix[2, 2]
        if abs(scale) < 1e-12:
            raise ValueError("degenerate homography (h33 ~ 0)")
        m = matrix / scale
        return cls(a=float(m[0, 0]), b=float(m[0, 1]), tx=float(m[0, 2]),
                   c=float(m[1, 0]), d=float(m[1, 1]), ty=float(m[1, 2]),
                   px=float(m[2, 0]), py=float(m[2, 1]))

    @classmethod
    def from_affine(cls, affine: AffineModel) -> "PerspectiveModel":
        return cls(a=affine.a, b=affine.b, tx=affine.tx,
                   c=affine.c, d=affine.d, ty=affine.ty)

    def apply(self, xs: np.ndarray, ys: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Map coordinate arrays through the homography."""
        w = self.px * xs + self.py * ys + 1.0
        return ((self.a * xs + self.b * ys + self.tx) / w,
                (self.c * xs + self.d * ys + self.ty) / w)

    def compose(self, other: "PerspectiveModel") -> "PerspectiveModel":
        """``self`` after ``other`` (matrix product)."""
        return PerspectiveModel.from_matrix(self.matrix @ other.matrix)

    def inverse(self) -> "PerspectiveModel":
        return PerspectiveModel.from_matrix(np.linalg.inv(self.matrix))

    def scaled(self, factor: float) -> "PerspectiveModel":
        """The same motion at a resampled pyramid level: conjugate by the
        coordinate scaling ``S = diag(factor, factor, 1)``."""
        scaling = np.diag([factor, factor, 1.0])
        unscaling = np.diag([1.0 / factor, 1.0 / factor, 1.0])
        return PerspectiveModel.from_matrix(
            scaling @ self.matrix @ unscaling)

    @property
    def is_affine(self) -> bool:
        """Whether the perspective terms vanish."""
        return self.px == 0.0 and self.py == 0.0

    def to_affine(self) -> AffineModel:
        """Drop the perspective terms (exact only when :attr:`is_affine`)."""
        return AffineModel(self.a, self.b, self.tx,
                           self.c, self.d, self.ty)


#: Any supported model type.
MotionModel = (TranslationalModel, AffineModel, PerspectiveModel)


def identity_like(model) -> object:
    """An identity model of the same class as ``model``."""
    if isinstance(model, TranslationalModel):
        return TranslationalModel()
    if isinstance(model, AffineModel):
        return AffineModel()
    if isinstance(model, PerspectiveModel):
        return PerspectiveModel()
    raise TypeError(f"unknown motion model {type(model).__name__}")
