"""Synthetic test sequences standing in for the paper's MPEG-1 clips.

Table 3 evaluates on four CIF clips -- *Singapore*, *Dome*, *Pisa* and
*Movie* -- that we do not have.  Per the substitution plan each becomes a
scripted camera path over a seeded synthetic panorama: the camera pans
(and, per sequence, zooms/rotates/jitters) across a textured scene, so
the global motion is known exactly, the GME workload sees realistic
content, and the per-sequence AddressLib call volumes land near the
paper's (frame counts were chosen so the deterministic intra-call budget
matches Table 3's intra column; the inter column emerges from the
estimator's convergence behaviour).

All sequences are deterministic in their seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

import numpy as np

from ..image.formats import CIF, ImageFormat
from ..image.frame import Frame
from ..image.synth import frame_from_luma, textured_panorama
from .motion_model import AffineModel
from .warp import warp_luma

#: A camera pose: frame coordinates -> panorama coordinates.
PoseFn = Callable[[int], AffineModel]


@dataclass(frozen=True)
class SequenceSpec:
    """A scripted synthetic sequence."""

    name: str
    frames: int
    pose: PoseFn
    fmt: ImageFormat = CIF
    panorama_width: int = 1536
    panorama_height: int = 864
    seed: int = 7
    #: Scale 0 < s <= 1 shortens the sequence proportionally (benches use
    #: this to keep runtimes sane; results extrapolate linearly in frames).
    def scaled_frames(self, scale: float) -> int:
        if not 0 < scale <= 1:
            raise ValueError(f"scale {scale} outside (0, 1]")
        return max(int(round(self.frames * scale)), 2)


class SyntheticSequence:
    """Renders the frames of a :class:`SequenceSpec` on demand."""

    def __init__(self, spec: SequenceSpec,
                 frames_override: Optional[int] = None) -> None:
        self.spec = spec
        self.frames = frames_override or spec.frames
        self._panorama = textured_panorama(
            spec.panorama_width, spec.panorama_height, seed=spec.seed)

    def pose(self, index: int) -> AffineModel:
        """Camera pose of frame ``index`` (frame -> panorama coords)."""
        if not 0 <= index < self.frames:
            raise IndexError(f"frame {index} outside 0..{self.frames - 1}")
        return self.spec.pose(index)

    def true_pair_model(self, index: int) -> AffineModel:
        """Ground-truth motion of pair ``(index, index + 1)``: maps frame
        ``index + 1`` coordinates to frame ``index`` coordinates."""
        return self.pose(index).inverse().compose(self.pose(index + 1))

    def frame(self, index: int) -> Frame:
        """Render frame ``index`` by sampling the panorama."""
        pose = self.pose(index)
        fmt = self.spec.fmt
        luma, valid = warp_luma(self._panorama, pose, fill=96.0,
                                output_shape=(fmt.height, fmt.width))
        del valid  # camera paths keep the view inside the panorama
        return frame_from_luma(fmt, luma)

    def __iter__(self) -> Iterator[Frame]:
        for index in range(self.frames):
            yield self.frame(index)


def _pan_pose(origin_x: float, origin_y: float, vx: float, vy: float,
              zoom_rate: float = 0.0, rot_rate: float = 0.0,
              jitter: float = 0.0, seed: int = 0) -> PoseFn:
    """A camera path: linear pan with optional zoom, rotation and jitter."""

    def pose(index: int) -> AffineModel:
        zoom = 1.0 + zoom_rate * index
        angle = rot_rate * index
        cos_a = math.cos(angle) * zoom
        sin_a = math.sin(angle) * zoom
        jx = jy = 0.0
        if jitter:
            # Deterministic per frame index, independent of call order.
            local = np.random.default_rng(seed * 100003 + index)
            jx = float(local.normal(0.0, jitter))
            jy = float(local.normal(0.0, jitter))
        return AffineModel(a=cos_a, b=-sin_a,
                           tx=origin_x + vx * index + jx,
                           c=sin_a, d=cos_a,
                           ty=origin_y + vy * index + jy)

    return pose


#: Frame counts derived from Table 3's intra-call column (9 intra calls
#: per frame pair plus 2 per frame; see DESIGN.md's experiment index).
SINGAPORE = SequenceSpec(
    name="Singapore", frames=505, seed=11,
    pose=_pan_pose(origin_x=120.0, origin_y=260.0, vx=1.9, vy=0.12))

DOME = SequenceSpec(
    name="Dome", frames=549, seed=23,
    pose=_pan_pose(origin_x=140.0, origin_y=180.0, vx=1.5, vy=0.35,
                   rot_rate=0.00045))

PISA = SequenceSpec(
    name="Pisa", frames=1033, seed=37,
    pose=_pan_pose(origin_x=110.0, origin_y=120.0, vx=0.85, vy=0.38,
                   zoom_rate=0.00012))

MOVIE = SequenceSpec(
    name="Movie", frames=453, seed=51,
    pose=_pan_pose(origin_x=160.0, origin_y=240.0, vx=2.2, vy=-0.3,
                   jitter=0.3, seed=51))

#: The Table 3 sequence set, in the paper's row order.
TABLE3_SEQUENCES = (SINGAPORE, DOME, PISA, MOVIE)

#: The Table 3 numbers, for comparison in benches:
#: (name, pm_seconds, fpga_seconds, intra_calls, inter_calls).
PAPER_TABLE3 = (
    ("Singapore", 4 * 60 + 35, 64, 4542, 3173),
    ("Dome", 5 * 60 + 28, 73, 4931, 3404),
    ("Pisa", 12 * 60 + 25, 2 * 60 + 21, 9294, 6541),
    ("Movie", 5 * 60 + 22, 65, 4070, 3085),
)


def sequence_by_name(name: str) -> SequenceSpec:
    """Look up one of the Table 3 sequences by (case-insensitive) name."""
    for spec in TABLE3_SEQUENCES:
        if spec.name.lower() == name.strip().lower():
            return spec
    raise KeyError(f"unknown sequence {name!r}; known: "
                   f"{', '.join(s.name for s in TABLE3_SEQUENCES)}")
