"""Global motion estimation on top of AddressLib (the Table 3 workload).

The algorithm follows the MPEG-7 XM global motion estimation structure:
a dyadic luminance pyramid, coarse-to-fine Gauss-Newton refinement of a
parametric motion model, SAD-monitored convergence, and (for mosaicing)
a per-pair blend mask.  Every pixel-level step is an AddressLib call, so
the *same* code runs on the software backend or the AddressEngine:

* pyramid low-pass filtering -- ``intra`` box filter per level;
* reference gradients -- ``intra`` Sobel x and y per level;
* SAD of reference vs motion-compensated current -- ``inter`` absolute
  difference reduced to a scalar, once per refinement iteration;
* the blend mask -- one ``intra`` homogeneity call per pair.

The per-pair call mix this produces (roughly ``3 levels x 2 + 2`` intra
calls and one inter call per iteration) is what generates Table 3's
intra/inter call-count columns.

Host-resident work (warping, normal-equation solves, control) is charged
through an optional ``charge`` callback so the evaluation runtime can
price it on the platform's host CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..addresslib.library import AddressLib, BatchCall, BatchExecutor
from ..addresslib.ops import (INTER_ABSDIFF, INTRA_BOX3, INTRA_HOMOGENEITY,
                              INTRA_SOBEL_X, INTRA_SOBEL_Y)
from ..image.formats import ImageFormat
from ..image.frame import Frame
from ..image.synth import frame_from_luma
from .motion_model import AffineModel
from .warp import decimate2, warp_luma

#: Instructions charged to the host per warped pixel (bilinear resample
#: plus residual accumulation in the host loop).
HOST_WARP_INSTRUCTIONS_PER_PIXEL = 14.0

#: Instructions charged per Gauss-Newton solve (small dense system).
HOST_SOLVE_INSTRUCTIONS = 4000.0


@dataclass(frozen=True)
class GmeSettings:
    """Tunables of the estimator."""

    levels: int = 3
    max_iterations_per_level: int = 6
    #: Stop refining a level when the SAD improves by less than this
    #: relative fraction.
    convergence_tol: float = 0.01
    #: Fit the full affine model at the finest level; coarser levels use
    #: the translational model (the XM-style progressive model order).
    affine_at_finest: bool = True
    #: Subsample factor of the normal-equation sums (XM subsamples too).
    gn_subsample: int = 2


@dataclass
class PyramidLevel:
    """One pyramid level of a frame: the Frame plus its float luma."""

    frame: Frame
    luma: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.luma.shape


@dataclass
class PairEstimate:
    """Result of aligning one frame pair."""

    model: AffineModel
    final_sad: float
    iterations: int
    per_level_iterations: List[int] = field(default_factory=list)
    #: The blend mask from the homogeneity call (finest level).
    blend_mask: Optional[np.ndarray] = None


class GlobalMotionEstimator:
    """Coarse-to-fine parametric GME expressed in AddressLib calls."""

    def __init__(self, lib: AddressLib,
                 settings: Optional[GmeSettings] = None,
                 charge: Optional[Callable[[float], None]] = None,
                 scheduler: Optional[BatchExecutor] = None) -> None:
        self.lib = lib
        self.settings = settings or GmeSettings()
        #: Optional pipelined call scheduler: the per-pair reference
        #: intra calls (Sobel per level + blend-mask homogeneity) are
        #: mutually independent and ship as one batch.
        self.scheduler = scheduler
        self._charge = charge or (lambda instructions: None)
        self._format_cache: Dict[Tuple[int, int], ImageFormat] = {}
        self._grid_cache: Dict[Tuple[int, int],
                               Tuple[np.ndarray, np.ndarray]] = {}

    # -- pyramids ----------------------------------------------------------------

    def build_pyramid(self, frame: Frame) -> List[PyramidLevel]:
        """The dyadic pyramid, finest first.

        Each coarser level is the AddressLib box filter (an intra call)
        followed by host-side decimation.
        """
        levels = [PyramidLevel(frame=frame,
                               luma=frame.y.astype(np.float64))]
        current = frame
        for _ in range(self.settings.levels - 1):
            filtered = self.lib.intra(INTRA_BOX3, current)
            luma = decimate2(filtered.y).astype(np.float64)
            current = self._luma_frame(luma)
            levels.append(PyramidLevel(frame=current, luma=luma))
        return levels

    def _luma_frame(self, luma: np.ndarray) -> Frame:
        fmt = self._format_for(luma.shape)
        return frame_from_luma(fmt, luma)

    def _format_for(self, shape: Tuple[int, int]) -> ImageFormat:
        if shape not in self._format_cache:
            height, width = shape
            self._format_cache[shape] = ImageFormat(
                f"GME{width}x{height}", width, height)
        return self._format_cache[shape]

    def _grid_for(self, shape: Tuple[int, int]):
        if shape not in self._grid_cache:
            height, width = shape
            ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
            self._grid_cache[shape] = (xs, ys)
        return self._grid_cache[shape]

    # -- the estimator -------------------------------------------------------------

    def estimate_pair(self, ref_pyramid: List[PyramidLevel],
                      cur_pyramid: List[PyramidLevel],
                      init: Optional[AffineModel] = None) -> PairEstimate:
        """Align the current frame to the reference frame.

        Args:
            ref_pyramid: Reference pyramid (finest first).
            cur_pyramid: Current-frame pyramid (finest first).
            init: Warm-start model in finest-level coordinates, oriented
                current -> reference (e.g. the previous pair's estimate,
                exploiting motion continuity).

        Returns:
            A :class:`PairEstimate` whose model maps finest-level
            *current*-frame coordinates to *reference*-frame coordinates
            (the orientation mosaic composition needs).

        Internally the refinement works with the opposite orientation --
        the warp samples the current frame on the reference grid, so the
        refined model maps reference coordinates to current coordinates
        -- and the result is inverted on return.
        """
        settings = self.settings
        model = (init or AffineModel()).inverse().scaled(
            0.5 ** (settings.levels - 1))
        total_iterations = 0
        per_level: List[int] = []
        final_sad = float("inf")

        gradients, mask_frame = self._pair_intra_batch(ref_pyramid)
        for level in range(settings.levels - 1, -1, -1):
            ref = ref_pyramid[level]
            cur = cur_pyramid[level]
            use_affine = settings.affine_at_finest and level == 0
            gx, gy = gradients[level]
            model, sad, iterations = self._refine_level(
                ref, cur, model, gx, gy, use_affine)
            total_iterations += iterations
            per_level.append(iterations)
            final_sad = sad
            if level > 0:
                model = model.scaled(2.0)

        blend_mask = mask_frame.y < 48
        per_level.reverse()
        model = model.inverse()  # return the current -> reference model
        return PairEstimate(model=model, final_sad=final_sad,
                            iterations=total_iterations,
                            per_level_iterations=per_level,
                            blend_mask=blend_mask)

    def _pair_intra_batch(self, ref_pyramid: List[PyramidLevel]):
        """All per-pair reference intra calls as one batch.

        The Sobel x/y calls per level and the blend-mask homogeneity
        call only read the (already built) reference pyramid, so they
        are mutually independent: one batch, shardable across engine
        workers when a scheduler is attached.  The Sobel ops store
        ``(acc >> 3) + 128``; undoing the bias and shift recovers the
        derivative in luma units per pixel (up to the Sobel kernel's
        gain of 8, folded into the solve consistently).

        Returns per-level ``(gx, gy)`` float gradients (finest first)
        and the homogeneity mask frame of the finest level.
        """
        calls = []
        for ref in ref_pyramid:
            calls.append(BatchCall.intra(INTRA_SOBEL_X, ref.frame))
            calls.append(BatchCall.intra(INTRA_SOBEL_Y, ref.frame))
        calls.append(BatchCall.intra(INTRA_HOMOGENEITY,
                                     ref_pyramid[0].frame))
        results = self.lib.run_batch(calls, scheduler=self.scheduler)
        gradients = []
        for level in range(len(ref_pyramid)):
            gx_frame = results[2 * level]
            gy_frame = results[2 * level + 1]
            assert isinstance(gx_frame, Frame)
            assert isinstance(gy_frame, Frame)
            gradients.append((gx_frame.y.astype(np.float64) - 128.0,
                              gy_frame.y.astype(np.float64) - 128.0))
        mask_frame = results[-1]
        assert isinstance(mask_frame, Frame)
        return gradients, mask_frame

    def _refine_level(self, ref: PyramidLevel, cur: PyramidLevel,
                      model: AffineModel, gx: np.ndarray, gy: np.ndarray,
                      use_affine: bool):
        settings = self.settings
        best_model = model
        best_sad = None
        sad = float("inf")
        iterations = 0
        pixels = ref.luma.size

        for _ in range(settings.max_iterations_per_level):
            iterations += 1
            warped, valid = warp_luma(cur.luma, model)
            self._charge(HOST_WARP_INSTRUCTIONS_PER_PIXEL * pixels)
            # Invalid (out-of-frame) samples copy the reference so they
            # contribute zero to the SAD.
            warped_filled = np.where(valid, warped, ref.luma)
            warped_frame = self._luma_frame(warped_filled)
            sad = float(self.lib.inter_reduce(INTER_ABSDIFF, ref.frame,
                                              warped_frame))
            if best_sad is None or sad < best_sad:
                best_sad = sad
                best_model = model
            elif sad > best_sad:
                model = best_model  # reject the diverging step
            if best_sad is not None and iterations > 1:
                improvement = (previous_sad - sad) / max(previous_sad, 1.0)
                if improvement < settings.convergence_tol:
                    break
            previous_sad = sad

            delta = self._gauss_newton_step(ref, warped, valid, gx, gy,
                                            model, use_affine)
            if delta is None:
                break
            model = model.with_update(delta)

        return best_model, float(best_sad if best_sad is not None else sad), \
            iterations

    def _gauss_newton_step(self, ref: PyramidLevel, warped: np.ndarray,
                           valid: np.ndarray, gx: np.ndarray,
                           gy: np.ndarray, model: AffineModel,
                           use_affine: bool) -> Optional[np.ndarray]:
        """One forward-additive Gauss-Newton update.

        With ``warped(x) = cur(model(x))`` and residual
        ``r = ref - warped``, the derivative of the residual with respect
        to the translation parameters is ``-grad(cur o model) ~ -grad(ref)``
        near convergence, giving the classic update
        ``delta = (J^T J)^{-1} J^T r`` with ``J = [gx, gy]`` (the signs of
        J and dr/dp cancel in the normal equations' right-hand side only
        up to orientation -- validated by the convergence tests).
        """
        step = self.settings.gn_subsample
        sub = (slice(None, None, step), slice(None, None, step))
        mask = valid[sub]
        if not mask.any():
            return None
        # The Sobel ops already divide the kernel's gain of 8 back out
        # (``acc >> 3``), so the unbiased planes are luma units per pixel.
        r = (ref.luma[sub] - warped[sub])[mask]
        jx = gx[sub][mask]
        jy = gy[sub][mask]
        self._charge(6.0 * r.size + HOST_SOLVE_INSTRUCTIONS)

        if not use_affine:
            a11 = float((jx * jx).sum())
            a12 = float((jx * jy).sum())
            a22 = float((jy * jy).sum())
            b1 = float((jx * r).sum())
            b2 = float((jy * r).sum())
            det = a11 * a22 - a12 * a12
            if abs(det) < 1e-9:
                return None
            dtx = (a22 * b1 - a12 * b2) / det
            dty = (a11 * b2 - a12 * b1) / det
            return np.array([0.0, 0.0, dtx, 0.0, 0.0, dty])

        xs, ys = self._grid_for(ref.luma.shape)
        xs = xs[sub][mask]
        ys = ys[sub][mask]
        # Normalise coordinates for conditioning; unscale the deltas after.
        scale = max(ref.luma.shape)
        xn = xs / scale
        yn = ys / scale
        jacobian = np.stack([jx * xn, jx * yn, jx, jy * xn, jy * yn, jy],
                            axis=1)
        normal = jacobian.T @ jacobian
        rhs = jacobian.T @ r
        try:
            delta = np.linalg.solve(normal, rhs)
        except np.linalg.LinAlgError:
            return None
        # Undo the coordinate normalisation on the linear-part parameters.
        delta[0] /= scale
        delta[1] /= scale
        delta[3] /= scale
        delta[4] /= scale
        return delta
