"""MPEG-7 Global Motion Estimation and mosaicing (the Table 3 workload)."""

from .estimation import (GlobalMotionEstimator, GmeSettings, PairEstimate,
                         PyramidLevel)
from .mosaic import Mosaic
from .motion_model import (AffineModel, PerspectiveModel,
                           TranslationalModel, identity_like)
from .sequences import (DOME, MOVIE, PAPER_TABLE3, PISA, SINGAPORE,
                        SequenceSpec, SyntheticSequence, TABLE3_SEQUENCES,
                        sequence_by_name)
from .warp import decimate2, pyramid_shapes, sad, warp_luma
from .xm import (GmeApplication, SequenceRunResult, Table3Row, XmCosts,
                 evaluate_sequence_dual, xm_cost_model)

__all__ = [
    "AffineModel",
    "DOME",
    "GlobalMotionEstimator",
    "GmeApplication",
    "GmeSettings",
    "MOVIE",
    "Mosaic",
    "PAPER_TABLE3",
    "PISA",
    "PairEstimate",
    "PerspectiveModel",
    "PyramidLevel",
    "SINGAPORE",
    "SequenceRunResult",
    "SequenceSpec",
    "SyntheticSequence",
    "TABLE3_SEQUENCES",
    "Table3Row",
    "TranslationalModel",
    "XmCosts",
    "decimate2",
    "evaluate_sequence_dual",
    "identity_like",
    "pyramid_shapes",
    "sad",
    "sequence_by_name",
    "warp_luma",
    "xm_cost_model",
]
