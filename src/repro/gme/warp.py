"""Frame warping and pyramid resampling for global motion estimation.

``warp_luma(luma, model)`` resamples a luminance plane so that pixel
``(x, y)`` of the output holds the input sampled at ``model(x, y)``
(bilinear interpolation, out-of-frame samples marked invalid).  The
estimator aligns the *current* frame to the *reference* by warping with
the current motion estimate; the validity mask keeps border pixels out
of the residual statistics.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def warp_luma(luma: np.ndarray, model, fill: float = 0.0,
              output_shape: Tuple[int, int] = None
              ) -> Tuple[np.ndarray, np.ndarray]:
    """Warp a luminance plane through a motion model.

    Args:
        luma: Source plane (any numeric dtype; promoted to float64).
        model: A motion model with ``apply(xs, ys)``; maps *output*
            coordinates to *source* coordinates.
        fill: Value written where the source sample falls outside.
        output_shape: ``(height, width)`` of the result; defaults to the
            source shape.

    Returns:
        ``(warped, valid)`` -- the warped float64 plane and a boolean
        mask of pixels whose source sample was fully inside the frame.
    """
    src_height, src_width = luma.shape
    out_height, out_width = output_shape or luma.shape
    source = luma.astype(np.float64)
    ys, xs = np.mgrid[0:out_height, 0:out_width].astype(np.float64)
    width, height = src_width, src_height
    sx, sy = model.apply(xs, ys)

    x0 = np.floor(sx).astype(np.int64)
    y0 = np.floor(sy).astype(np.int64)
    fx = sx - x0
    fy = sy - y0
    valid = (x0 >= 0) & (y0 >= 0) & (x0 < width - 1) & (y0 < height - 1)

    x0c = np.clip(x0, 0, width - 2)
    y0c = np.clip(y0, 0, height - 2)
    top = (source[y0c, x0c] * (1 - fx)
           + source[y0c, x0c + 1] * fx)
    bottom = (source[y0c + 1, x0c] * (1 - fx)
              + source[y0c + 1, x0c + 1] * fx)
    warped = top * (1 - fy) + bottom * fy
    warped = np.where(valid, warped, fill)
    return warped, valid


def decimate2(luma: np.ndarray) -> np.ndarray:
    """Drop every second sample in both dimensions (after low-pass
    filtering via the AddressLib box filter)."""
    return luma[::2, ::2]


def pyramid_shapes(height: int, width: int, levels: int):
    """Shapes of a ``levels``-deep dyadic pyramid, finest first."""
    shapes = []
    h, w = height, width
    for _ in range(levels):
        shapes.append((h, w))
        h = -(-h // 2)
        w = -(-w // 2)
    return shapes


def sad(a: np.ndarray, b: np.ndarray, mask: np.ndarray = None) -> float:
    """Reference sum-of-absolute-differences (float), optionally masked.

    The production path computes SAD through an AddressLib inter call;
    this helper is the float golden used in tests.
    """
    diff = np.abs(a.astype(np.float64) - b.astype(np.float64))
    if mask is not None:
        diff = diff[mask]
    return float(diff.sum())
