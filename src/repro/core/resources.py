"""FPGA resource and timing estimation (Table 1).

We cannot synthesise for a Virtex-II with ISE 6, so per DESIGN.md this
module substitutes a *structural estimator*: the v1 engine's module
inventory (exactly the blocks of Figures 2/5/6) with per-module resource
figures calibrated against the paper's published synthesis results.  The
BRAM budget is derived from the architecture (line stores and FIFOs);
the logic figures are calibrated constants.  What the estimator preserves
is the paper's *shape*: a tiny logic footprint (<= 3 % of the device),
BRAM as the dominant resource (~30 %, driven by the IIM/OIM line
stores), one global clock, and a maximum frequency comfortably above the
66 MHz PCI clock.

Device data for the XC2V3000 (speed grade -5) comes from the Virtex-II
data sheet: 14336 slices, 28672 slice flip-flops, 28672 4-input LUTs,
720 bonded IOBs, 96 block RAMs, 16 global clock buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .config import EngineConfig, IIM_LINES, OIM_LINES


@dataclass(frozen=True)
class ResourceEstimate:
    """Resource usage of one module (or a summed design)."""

    slices: int = 0
    flip_flops: int = 0
    luts: int = 0
    iobs: int = 0
    brams: int = 0
    gclks: int = 0

    def plus(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            slices=self.slices + other.slices,
            flip_flops=self.flip_flops + other.flip_flops,
            luts=self.luts + other.luts,
            iobs=self.iobs + other.iobs,
            brams=self.brams + other.brams,
            gclks=self.gclks + other.gclks)


@dataclass(frozen=True)
class ModuleEstimate:
    """A named architecture block and its resources."""

    name: str
    resources: ResourceEstimate


@dataclass(frozen=True)
class DeviceCapacity:
    """Available resources of the target FPGA."""

    name: str
    slices: int
    flip_flops: int
    luts: int
    iobs: int
    brams: int
    gclks: int


#: The prototype's device: Virtex-II XC2V3000, package FF1152, speed -5.
XC2V3000 = DeviceCapacity(name="2v3000ff1152-5", slices=14336,
                          flip_flops=28672, luts=28672, iobs=720,
                          brams=96, gclks=16)

#: Bits per Virtex-II block RAM.
BRAM_BITS = 18 * 1024

#: DMA interface FIFOs between the PCI core and the ZBT side: two BRAMs
#: each for the inbound and outbound stream.
DMA_FIFO_BRAMS = 4

#: The PLC control FSM keeps its pixel-cycle instruction sequences in one
#: embedded memory block.
CONTROL_STORE_BRAMS = 1


def iim_brams(lines: int = IIM_LINES) -> int:
    """Block RAMs of the IIM: one per line (the lower/upper line-store
    pair of one line packs into a single dual-port BRAM)."""
    return lines


def oim_brams(lines: int = OIM_LINES) -> int:
    """Block RAMs of the OIM: the sequential result stream needs half the
    IIM's parallelism, so line pairs share blocks."""
    return lines // 2


def v1_module_inventory(iim_lines: int = IIM_LINES,
                        oim_lines: int = OIM_LINES) -> List[ModuleEstimate]:
    """The v1 engine's blocks with calibrated resource figures.

    The module list follows the architecture exactly (Figure 2's blocks
    plus the PLC internals of Figure 5 and the datapath stages of Figure
    6); the logic constants are calibrated to the ISE 6 synthesis of
    Table 1 and the BRAM counts derive from the memory structure.
    """
    def estimate(name, slices, ff, lut, iob=0, bram=0, gclk=0):
        return ModuleEstimate(name, ResourceEstimate(
            slices=slices, flip_flops=ff, luts=lut, iobs=iob, brams=bram,
            gclks=gclk))

    return [
        estimate("pci_interface", 90, 40, 55, iob=52),
        estimate("dma_fifos", 24, 10, 14, bram=DMA_FIFO_BRAMS),
        estimate("image_level_controller", 60, 22, 38, iob=8),
        estimate("input_txu", 38, 14, 24),
        estimate("output_txu", 34, 12, 22),
        estimate("iim_line_stores", 48, 16, 30, bram=iim_brams(iim_lines)),
        estimate("oim_line_stores", 40, 14, 26, bram=oim_brams(oim_lines)),
        estimate("plc_control_fsm", 52, 20, 34, bram=CONTROL_STORE_BRAMS),
        estimate("plc_instruction_fsm", 44, 18, 28),
        estimate("plc_arbiter", 28, 10, 18),
        estimate("plc_startpipeline", 26, 12, 16),
        estimate("pu_stage1_scan_counters", 30, 12, 16),
        estimate("pu_stage2_matrix_register", 22, 8, 12),
        estimate("pu_stage3_alu", 20, 6, 12),
        estimate("pu_stage4_store", 8, 2, 4),
        estimate("clock_distribution", 0, 0, 0, gclk=1),
    ]


def total_resources(modules: List[ModuleEstimate]) -> ResourceEstimate:
    total = ResourceEstimate()
    for module in modules:
        total = total.plus(module.resources)
    return total


@dataclass(frozen=True)
class TimingModel:
    """Static timing of the critical path (the stage-3 ALU cone).

    Minimum period = clock-to-out + levels x (LUT + routing) + setup.
    Constants calibrated to the ISE 6 report of Table 1.
    """

    clock_to_out_ns: float = 0.424
    setup_ns: float = 1.060
    logic_levels: int = 5
    lut_delay_ns: float = 0.440
    route_delay_ns: float = 1.220

    @property
    def min_period_ns(self) -> float:
        return (self.clock_to_out_ns + self.setup_ns
                + self.logic_levels
                * (self.lut_delay_ns + self.route_delay_ns))

    @property
    def max_frequency_mhz(self) -> float:
        return 1000.0 / self.min_period_ns


@dataclass
class UtilizationReport:
    """A Table 1-style device utilisation summary."""

    device: DeviceCapacity
    modules: List[ModuleEstimate]
    timing: TimingModel

    @property
    def totals(self) -> ResourceEstimate:
        return total_resources(self.modules)

    def utilization_percent(self) -> Dict[str, float]:
        totals = self.totals
        return {
            "slices": 100.0 * totals.slices / self.device.slices,
            "flip_flops": 100.0 * totals.flip_flops / self.device.flip_flops,
            "luts": 100.0 * totals.luts / self.device.luts,
            "iobs": 100.0 * totals.iobs / self.device.iobs,
            "brams": 100.0 * totals.brams / self.device.brams,
            "gclks": 100.0 * totals.gclks / self.device.gclks,
        }

    def rows(self) -> List[tuple]:
        """``(resource, used, available, percent)`` rows of Table 1."""
        totals = self.totals
        percent = self.utilization_percent()
        return [
            ("Number of Slices", totals.slices, self.device.slices,
             percent["slices"]),
            ("Number of Slice Flip Flops", totals.flip_flops,
             self.device.flip_flops, percent["flip_flops"]),
            ("Number of 4 input LUTs", totals.luts, self.device.luts,
             percent["luts"]),
            ("Number of bonded IOBs", totals.iobs, self.device.iobs,
             percent["iobs"]),
            ("Number of BRAMs", totals.brams, self.device.brams,
             percent["brams"]),
            ("Number of GCLKs", totals.gclks, self.device.gclks,
             percent["gclks"]),
        ]

    def render(self) -> str:
        """Human-readable summary matching the paper's Table 1 layout."""
        lines = ["Device utilization summary:",
                 f"Selected Device : {self.device.name}", ""]
        for name, used, available, percent in self.rows():
            # ISE truncates utilisation percentages; match Table 1 exactly.
            lines.append(f"{name:<34s} {used:>6d} out of {available:>6d}"
                         f" {int(percent):>5d}%")
        lines.append("")
        lines.append("Timing Summary:")
        lines.append(
            f"Minimum period: {self.timing.min_period_ns:.3f}ns "
            f"(Maximum Frequency: {self.timing.max_frequency_mhz:.3f}MHz)")
        return "\n".join(lines)


def v1_utilization_report(config: EngineConfig = None) -> UtilizationReport:
    """The Table 1 report for the v1 engine (config currently only sizes
    the intermediate memories)."""
    del config  # v1 is statically sized; kept for future variants
    return UtilizationReport(device=XC2V3000,
                             modules=v1_module_inventory(),
                             timing=TimingModel())


def v2_utilization_report() -> UtilizationReport:
    """The outlook design: v1 plus the segment-addressing unit.

    Checks the paper's remark that "there is enough free memory for a
    possible extension of the design with other addressing schemes": the
    extension adds a few BRAMs and stays far inside the device.
    """
    from .segment_unit import v2_module_additions
    return UtilizationReport(
        device=XC2V3000,
        modules=v1_module_inventory() + v2_module_additions(),
        timing=TimingModel())
