"""The Image Level Controller (ILC): top-level dataflow management.

Paper section 3.2: *"The image level controller deals with the interrupt
generation and manages as well all control blocks.  So it controls the
data transfers between PC and the coprocessor."*  Concretely it:

* schedules the strip-granular input DMA jobs into the alternating ZBT
  blocks (block_A / block_B double buffering, Figure 3);
* publishes strip availability to the input transmission units;
* enables/disables the pixel level controller when the IIM runs dry or
  the OIM fills (section 3.3);
* holds processing back for "special inter operations" until both input
  images are completely on the board (section 4.1);
* performs the single result-bank switch and starts the result readback
  "as soon as it is possible", i.e. when the input images are completely
  stored and the PCI bus is free;
* raises the completion interrupt.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..image.formats import STRIP_LINES
from ..image.frame import Frame
from .config import EngineConfig
from .pci import DMAJob, PCIBus
from .plc import PixelLevelController
from .txu import InputTransmissionUnit, OutputTransmissionUnit
from .zbt import ZBTMemory, ZBTLayout

_INFINITE_HORIZON = 1 << 60


class ImageLevelController:
    """Owns the call's control flow from first DMA word to final interrupt."""

    def __init__(self, config: EngineConfig, zbt: ZBTMemory,
                 layout: ZBTLayout, pci: PCIBus,
                 plc: PixelLevelController,
                 input_txus: List[InputTransmissionUnit],
                 output_txu: Optional[OutputTransmissionUnit]) -> None:
        self.config = config
        self.zbt = zbt
        self.layout = layout
        self.pci = pci
        self.plc = plc
        self.input_txus = input_txus
        self.output_txu = output_txu
        self.input_strips_done = [0 for _ in input_txus]
        self.input_complete = False
        self.readback_started = False
        self.readback_words: List[int] = []
        self.readback_total_words = 0
        self._bank_a_words_final = 0
        self.completion_cycle: Optional[int] = None
        #: Cycle at which the last input DMA word arrived (for the
        #: PCI-overlap analysis of section 4.1).
        self.input_complete_cycle: Optional[int] = None

    # -- input scheduling -----------------------------------------------------

    def schedule_input(self, frames: List[Frame],
                       resident: Optional[List[bool]] = None) -> None:
        """Enqueue the strip DMA jobs, image-interleaved for inter mode.

        Each strip is one interrupt-driven DMA job: the whole input image
        "is not transferred in one pass but it is divided into parts which
        are written to alternate ZBT blocks", so processing can start
        while later strips are still in flight.

        Images flagged ``resident`` already live in their ZBT banks from
        a previous call (call chaining): they are preloaded directly,
        marked fully available, and ship no DMA.
        """
        if len(frames) != self.config.images_in:
            raise ValueError(
                f"{self.config.mode.value} mode needs "
                f"{self.config.images_in} input frames, got {len(frames)}")
        resident = resident or [False] * len(frames)
        if len(resident) != len(frames):
            raise ValueError("one residency flag per input frame")
        words = [frame.to_words() for frame in frames]
        #: Retained for the fast path: the exact word planes the DMA
        #: writes to the board (and the transmission units later read).
        self.input_words = words
        fmt = self.config.fmt
        for image, flag in enumerate(resident):
            if flag:
                self._preload_resident(image, *words[image])
        for strip_index in range(fmt.strips):
            for image, (lower, upper) in enumerate(words):
                if resident[image]:
                    continue
                self.pci.enqueue(self._strip_job(
                    image, strip_index, lower, upper))
        if all(resident):
            self.input_complete = True

    def _preload_resident(self, image: int, lower, upper) -> None:
        """Place an already-on-board image into its banks (uncounted --
        the words were written by the previous call)."""
        fmt = self.config.fmt
        for strip_index in range(fmt.strips):
            first_line = strip_index * STRIP_LINES
            last_line = min(first_line + STRIP_LINES, fmt.height)
            banks = self.layout.input_banks(image, strip_index)
            base = self.layout.input_address(0, first_line)
            self.zbt.bulk_poke(banks[0], base,
                               lower[first_line:last_line].reshape(-1))
            self.zbt.bulk_poke(banks[1], base,
                               upper[first_line:last_line].reshape(-1))
        self.input_strips_done[image] = fmt.strips
        self.input_txus[image].strips_available = fmt.strips

    def _strip_job(self, image: int, strip_index: int,
                   lower: np.ndarray, upper: np.ndarray) -> DMAJob:
        fmt = self.config.fmt
        first_line = strip_index * STRIP_LINES
        lines = min(STRIP_LINES, fmt.height - first_line)
        total_words = lines * fmt.width * 2
        banks = self.layout.input_banks(image, strip_index)

        def transfer_word(word_index: int) -> bool:
            pixel, phase = divmod(word_index, 2)
            line = first_line + pixel // fmt.width
            column = pixel % fmt.width
            bank = banks[phase]
            if not self.zbt.bank_free(bank):
                return False
            address = self.layout.input_address(column, line)
            plane = lower if phase == 0 else upper
            self.zbt.write(bank, address, int(plane[line, column]))
            if word_index == total_words - 1:
                self._strip_arrived(image)
            return True

        # Batched form: the strip occupies one contiguous address run per
        # bank (lower words at even word indices, upper at odd), so a run
        # of words splits into two contiguous bank writes.
        base = self.layout.input_address(0, first_line)
        lower_flat = lower[first_line:first_line + lines].reshape(-1)
        upper_flat = upper[first_line:first_line + lines].reshape(-1)

        def bulk_transfer(start: int, count: int) -> None:
            end = start + count
            even = start + (start & 1)
            evens = (end - even + 1) // 2
            if evens > 0:
                pixel = even // 2
                self.zbt.bulk_write(banks[0], base + pixel,
                                    lower_flat[pixel:pixel + evens])
            odd = start + 1 - (start & 1)
            odds = (end - odd + 1) // 2
            if odds > 0:
                pixel = odd // 2
                self.zbt.bulk_write(banks[1], base + pixel,
                                    upper_flat[pixel:pixel + odds])

        return DMAJob(label=f"in:img{image}:strip{strip_index}",
                      total_words=total_words,
                      transfer_word=transfer_word, to_board=True,
                      bulk_transfer=bulk_transfer, banks=banks)

    def _strip_arrived(self, image: int) -> None:
        self.input_strips_done[image] += 1
        self.input_txus[image].strips_available = \
            self.input_strips_done[image]
        fmt = self.config.fmt
        if all(done == fmt.strips for done in self.input_strips_done):
            self.input_complete = True

    # -- per-cycle control ----------------------------------------------------

    def control(self, cycle: int) -> None:
        """The ILC's combinational decisions for this cycle.

        Called after the DMA/TxU movement of the cycle and before the PLC
        ticks, mirroring control signals settling ahead of the datapath.
        """
        if self.input_complete and self.input_complete_cycle is None:
            self.input_complete_cycle = cycle

        # PLC enable: data to read, space to write, and the special-inter
        # hold-off until both images are completely on the board.
        enabled = True
        if self.config.requires_full_frames and not self.input_complete:
            enabled = False
        if self.output_txu is not None and self.plc.pu.oim.full:
            enabled = False
        self.plc.enabled = enabled

        # Result readback: starts once the input is completely stored (the
        # PCI bus is then free) -- with the one-time result bank switch.
        if (not self.readback_started and self.input_complete
                and self._can_switch()):
            self._start_readback(cycle)

        if (self.completion_cycle is None and self.call_done):
            self.completion_cycle = cycle
            self.pci.raise_interrupt(cycle, "call_done")

    def _can_switch(self) -> bool:
        # Result pixels are written atomically (both words in one cycle),
        # so the switch can never split a pixel across banks.
        return True

    def _start_readback(self, cycle: int) -> None:
        self.readback_started = True
        fmt = self.config.fmt
        if self.config.produces_image:
            txu = self.output_txu
            assert txu is not None
            txu.switch_result_bank()
            self._bank_a_words_final = txu.bank_words[0]
            self.readback_total_words = fmt.pixels * 2
            job = DMAJob(label="out:result-image",
                         total_words=self.readback_total_words,
                         transfer_word=self._read_result_word,
                         to_board=False,
                         bulk_transfer=self._bulk_read_result)
        else:
            # Scalar reduce result: two words (64-bit accumulator), ready
            # only once every pixel-cycle has retired.
            self.readback_total_words = 2
            job = DMAJob(label="out:result-scalar",
                         total_words=2,
                         transfer_word=self._read_scalar_word,
                         to_board=False)
        self.pci.enqueue(job)
        self.pci.raise_interrupt(cycle, "readback_start")

    def _read_result_word(self, word_index: int) -> bool:
        txu = self.output_txu
        assert txu is not None
        if word_index < self._bank_a_words_final:
            slot, local = 0, word_index
        else:
            slot, local = 1, word_index - self._bank_a_words_final
        if local >= txu.bank_words[slot]:
            return False  # the word has not been produced yet
        bank = self.layout.result_bank(slot == 1)
        if not self.zbt.bank_free(bank):
            return False
        self.readback_words.append(self.zbt.read(bank, local))
        return True

    def _bulk_read_result(self, start: int, count: int) -> None:
        """Batched form of :meth:`_read_result_word` for a run of words
        the fast path has proven available within a single result bank."""
        if start < self._bank_a_words_final:
            slot, local = 0, start
        else:
            slot, local = 1, start - self._bank_a_words_final
        bank = self.layout.result_bank(slot == 1)
        values = self.zbt.bulk_read(bank, local, count)
        self.readback_words.extend(values.tolist())

    def fast_readback_horizon(self) -> Tuple[str, int]:
        """``(state, horizon_cycles)`` for the active readback DMA job.

        ``state`` is ``"words"`` (the bus streams result words every
        cycle), ``"stalled"`` (the scalar result is not retired yet), or
        ``"bridge"`` (an arbitration decision is near: the producer is
        still writing the bank the readback would touch, or the job is on
        its final word) -- the fast path simulates bridges cycle by cycle.
        """
        job = self.pci.active_job
        assert job is not None and not job.to_board
        if not self.config.produces_image:
            if not self.plc.done:
                return "stalled", _INFINITE_HORIZON
            return "bridge", 0
        remaining = job.total_words - job.words_done - 1
        if remaining <= 0:
            return "bridge", 0
        txu = self.output_txu
        assert txu is not None
        if job.words_done < self._bank_a_words_final:
            available = self._bank_a_words_final - job.words_done
            return "words", min(available, remaining)
        # Bank B: the readback chases the producer on the same bank, so
        # any overlap is a per-port arbitration regime -- bridge it.
        if not (self.plc.done and txu.oim.empty):
            return "bridge", 0
        local = job.words_done - self._bank_a_words_final
        available = txu.bank_words[1] - local
        if available <= 0:
            return "bridge", 0
        return "words", min(available, remaining)

    def _read_scalar_word(self, word_index: int) -> bool:
        if not self.plc.done:
            return False
        accumulator = self.plc.pu.reduce_accumulator & 0xFFFFFFFFFFFFFFFF
        word = (accumulator >> (32 * word_index)) & 0xFFFFFFFF
        self.readback_words.append(word)
        return True

    # -- completion -----------------------------------------------------------

    @property
    def call_done(self) -> bool:
        """The call's completion condition."""
        if not (self.input_complete and self.plc.done):
            return False
        if not self.readback_started:
            return False
        return len(self.readback_words) >= self.readback_total_words
