"""The AddressEngine coprocessor model (paper sections 2-3).

A cycle-level model of the FPGA prototype: ZBT memory banks, PCI/DMA
host link, input/output intermediate memories, the four-stage Process
Unit, the pixel level controller (arbiter, instruction FSM,
startpipeline, control FSM), transmission units and the image level
controller -- plus the structural resource/timing estimator behind
Table 1.
"""

from .config import (EngineConfig, EngineConfigError, IIM_LINES,
                     IIM_LINES_PER_IMAGE_INTER, OIM_LINES, inter_config,
                     intra_config)
from .constraints import (FAST_PATH_MAX_OP_CYCLES, FAST_PATH_MIN_STRIPS,
                          INPUT_TXU_TICKS_PER_CYCLE, PLC_TICKS_PER_CYCLE,
                          RESULT_BANK_PIXELS, default_max_cycles,
                          fast_path_blockers, min_call_cycles)
from .errors import EngineDeadlock, deadlock_message
from .iim import InputIntermediateMemory, LineStoreFifo
from .image_controller import ImageLevelController
from .instructions import Instruction, InstructionKind, bundle_for
from .matrix_register import MatrixRegister
from .oim import OutputIntermediateMemory
from .pci import (DEFAULT_JOB_OVERHEAD_CYCLES, DMAJob, Interrupt, PCIBus,
                  PCI_CLOCK_HZ, PCI_PEAK_BYTES_PER_SECOND, PCI_WORD_BITS)
from .plc import Arbiter, ArbiterConflict, PixelLevelController, PlcStats
from .process_unit import (PixelBundle, ProcessUnit, ResultPixel,
                           ScanCounters)
from .resources import (BRAM_BITS, DeviceCapacity, ModuleEstimate,
                        ResourceEstimate, TimingModel, UtilizationReport,
                        XC2V3000, iim_brams, oim_brams, total_resources,
                        v1_module_inventory, v1_utilization_report,
                        v2_utilization_report)
from .segment_unit import (QUEUE_CAPACITY, QueueOverflow, SegmentCallConfig,
                           SegmentRunResult, SegmentUnit,
                           V2_CONNECTIVITY, v2_module_additions)
from .txu import InputTransmissionUnit, OutputTransmissionUnit
from .zbt import (BANK_COUNT, BANK_WORDS, BankPortConflict, BankStats,
                  IMAGE0_BANKS, IMAGE1_BANKS, RESULT_BANKS, ZBTLayout,
                  ZBTMemory)

#: Names resolved lazily (PEP 562) because their modules pull in the
#: cycle-level stepper: ``import repro.core`` -- and therefore importing
#: the analyzer's diagnostics -- must stay cheap and stepper-free.
_LAZY_EXPORTS = {
    "AddressEngine": "engine",
    "EngineRunResult": "engine",
    "CONFIG_BANDWIDTH_BYTES_PER_S": "reconfig",
    "FULL_BITSTREAM_BYTES": "reconfig",
    "PARTIAL_BITSTREAM_BYTES": "reconfig",
    "ReconfigurableEngine": "reconfig",
    "ReconfigurationModel": "reconfig",
    "ScheduleReport": "reconfig",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value

__all__ = [
    "AddressEngine",
    "Arbiter",
    "ArbiterConflict",
    "BANK_COUNT",
    "BANK_WORDS",
    "BRAM_BITS",
    "BankPortConflict",
    "BankStats",
    "DEFAULT_JOB_OVERHEAD_CYCLES",
    "DMAJob",
    "DeviceCapacity",
    "EngineConfig",
    "EngineConfigError",
    "EngineDeadlock",
    "EngineRunResult",
    "FAST_PATH_MAX_OP_CYCLES",
    "FAST_PATH_MIN_STRIPS",
    "INPUT_TXU_TICKS_PER_CYCLE",
    "IIM_LINES",
    "IIM_LINES_PER_IMAGE_INTER",
    "IMAGE0_BANKS",
    "IMAGE1_BANKS",
    "ImageLevelController",
    "InputIntermediateMemory",
    "InputTransmissionUnit",
    "Instruction",
    "InstructionKind",
    "Interrupt",
    "LineStoreFifo",
    "MatrixRegister",
    "ModuleEstimate",
    "OIM_LINES",
    "OutputIntermediateMemory",
    "OutputTransmissionUnit",
    "PCIBus",
    "PCI_CLOCK_HZ",
    "PCI_PEAK_BYTES_PER_SECOND",
    "PCI_WORD_BITS",
    "PLC_TICKS_PER_CYCLE",
    "PixelBundle",
    "PixelLevelController",
    "PlcStats",
    "ProcessUnit",
    "RESULT_BANKS",
    "RESULT_BANK_PIXELS",
    "ResourceEstimate",
    "ResultPixel",
    "ScanCounters",
    "TimingModel",
    "UtilizationReport",
    "XC2V3000",
    "ZBTLayout",
    "ZBTMemory",
    "bundle_for",
    "deadlock_message",
    "default_max_cycles",
    "fast_path_blockers",
    "min_call_cycles",
    "inter_config",
    "intra_config",
    "iim_brams",
    "oim_brams",
    "total_resources",
    "CONFIG_BANDWIDTH_BYTES_PER_S",
    "FULL_BITSTREAM_BYTES",
    "PARTIAL_BITSTREAM_BYTES",
    "QUEUE_CAPACITY",
    "ReconfigurableEngine",
    "ReconfigurationModel",
    "ScheduleReport",
    "QueueOverflow",
    "SegmentCallConfig",
    "SegmentRunResult",
    "SegmentUnit",
    "V2_CONNECTIVITY",
    "v1_module_inventory",
    "v1_utilization_report",
    "v2_module_additions",
    "v2_utilization_report",
]
