"""The AddressEngine coprocessor model (paper sections 2-3).

A cycle-level model of the FPGA prototype: ZBT memory banks, PCI/DMA
host link, input/output intermediate memories, the four-stage Process
Unit, the pixel level controller (arbiter, instruction FSM,
startpipeline, control FSM), transmission units and the image level
controller -- plus the structural resource/timing estimator behind
Table 1.
"""

from .config import (EngineConfig, EngineConfigError, IIM_LINES,
                     IIM_LINES_PER_IMAGE_INTER, OIM_LINES, inter_config,
                     intra_config)
from .engine import (AddressEngine, EngineDeadlock, EngineRunResult,
                     PLC_TICKS_PER_CYCLE)
from .iim import InputIntermediateMemory, LineStoreFifo
from .image_controller import ImageLevelController
from .instructions import Instruction, InstructionKind, bundle_for
from .matrix_register import MatrixRegister
from .oim import OutputIntermediateMemory
from .pci import (DEFAULT_JOB_OVERHEAD_CYCLES, DMAJob, Interrupt, PCIBus,
                  PCI_CLOCK_HZ, PCI_PEAK_BYTES_PER_SECOND, PCI_WORD_BITS)
from .plc import Arbiter, ArbiterConflict, PixelLevelController, PlcStats
from .reconfig import (CONFIG_BANDWIDTH_BYTES_PER_S, FULL_BITSTREAM_BYTES,
                       PARTIAL_BITSTREAM_BYTES, ReconfigurableEngine,
                       ReconfigurationModel, ScheduleReport)
from .process_unit import (PixelBundle, ProcessUnit, ResultPixel,
                           ScanCounters)
from .resources import (BRAM_BITS, DeviceCapacity, ModuleEstimate,
                        ResourceEstimate, TimingModel, UtilizationReport,
                        XC2V3000, iim_brams, oim_brams, total_resources,
                        v1_module_inventory, v1_utilization_report,
                        v2_utilization_report)
from .segment_unit import (QUEUE_CAPACITY, QueueOverflow, SegmentCallConfig,
                           SegmentRunResult, SegmentUnit,
                           V2_CONNECTIVITY, v2_module_additions)
from .txu import InputTransmissionUnit, OutputTransmissionUnit
from .zbt import (BANK_COUNT, BANK_WORDS, BankPortConflict, BankStats,
                  IMAGE0_BANKS, IMAGE1_BANKS, RESULT_BANKS, ZBTLayout,
                  ZBTMemory)

__all__ = [
    "AddressEngine",
    "Arbiter",
    "ArbiterConflict",
    "BANK_COUNT",
    "BANK_WORDS",
    "BRAM_BITS",
    "BankPortConflict",
    "BankStats",
    "DEFAULT_JOB_OVERHEAD_CYCLES",
    "DMAJob",
    "DeviceCapacity",
    "EngineConfig",
    "EngineConfigError",
    "EngineDeadlock",
    "EngineRunResult",
    "IIM_LINES",
    "IIM_LINES_PER_IMAGE_INTER",
    "IMAGE0_BANKS",
    "IMAGE1_BANKS",
    "ImageLevelController",
    "InputIntermediateMemory",
    "InputTransmissionUnit",
    "Instruction",
    "InstructionKind",
    "Interrupt",
    "LineStoreFifo",
    "MatrixRegister",
    "ModuleEstimate",
    "OIM_LINES",
    "OutputIntermediateMemory",
    "OutputTransmissionUnit",
    "PCIBus",
    "PCI_CLOCK_HZ",
    "PCI_PEAK_BYTES_PER_SECOND",
    "PCI_WORD_BITS",
    "PLC_TICKS_PER_CYCLE",
    "PixelBundle",
    "PixelLevelController",
    "PlcStats",
    "ProcessUnit",
    "RESULT_BANKS",
    "ResourceEstimate",
    "ResultPixel",
    "ScanCounters",
    "TimingModel",
    "UtilizationReport",
    "XC2V3000",
    "ZBTLayout",
    "ZBTMemory",
    "bundle_for",
    "inter_config",
    "intra_config",
    "iim_brams",
    "oim_brams",
    "total_resources",
    "CONFIG_BANDWIDTH_BYTES_PER_S",
    "FULL_BITSTREAM_BYTES",
    "PARTIAL_BITSTREAM_BYTES",
    "QUEUE_CAPACITY",
    "ReconfigurableEngine",
    "ReconfigurationModel",
    "ScheduleReport",
    "QueueOverflow",
    "SegmentCallConfig",
    "SegmentRunResult",
    "SegmentUnit",
    "V2_CONNECTIVITY",
    "v1_module_inventory",
    "v1_utilization_report",
    "v2_module_additions",
    "v2_utilization_report",
]
