"""User-facing engine errors, free of stepper dependencies.

:class:`EngineDeadlock` is the AddressEngine's externally visible
failure mode, raised by both the per-cycle loop and the batched
fast-path stepper when a call exceeds its cycle safety bound.  It lives
here -- not in :mod:`repro.core.fastpath` -- so diagnostics consumers
(the static analyzer, host tooling) can import it without dragging in
the stepper and its numpy-heavy machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..image.formats import STRIP_LINES

if TYPE_CHECKING:  # imported for type hints only; keeps this module light
    from .config import EngineConfig
    from .image_controller import ImageLevelController
    from .pci import PCIBus
    from .plc import PixelLevelController
    from .txu import InputTransmissionUnit


class EngineDeadlock(RuntimeError):
    """The cycle loop exceeded its safety bound without completing."""


def deadlock_message(max_cycles: int, config: "EngineConfig",
                     ilc: "ImageLevelController",
                     plc: "PixelLevelController",
                     pci: "PCIBus",
                     input_txus: "List[InputTransmissionUnit]") -> str:
    """Diagnostic snapshot for :class:`EngineDeadlock`: where every
    component got stuck, with per-component progress counters."""
    fmt = config.fmt
    txu_progress = "; ".join(
        f"img{txu.image} strip={min(txu._line // STRIP_LINES, fmt.strips - 1)}"
        f" lines_moved={txu.pixels_moved // fmt.width}/{fmt.height}"
        f" stalls(no_strip={txu.stall_no_strip}"
        f" iim_full={txu.stall_iim_full} bank={txu.stall_bank_busy})"
        for txu in input_txus)
    return (
        f"call did not complete within {max_cycles} cycles: "
        f"plc done={plc.done} retired={plc.stats.retired_pixel_cycles}"
        f"/{fmt.pixels} pixel-cycles; "
        f"input strips done={ilc.input_strips_done} of {fmt.strips}; "
        f"txu [{txu_progress}]; "
        f"dma words to_board={pci.words_to_board} "
        f"to_host={pci.words_to_host} "
        f"(busy={pci.busy_cycles} stall={pci.stall_cycles} "
        f"overhead={pci.overhead_cycles} idle={pci.idle_cycles}); "
        f"readback={len(ilc.readback_words)}/{ilc.readback_total_words}")
