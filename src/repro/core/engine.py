"""The AddressEngine: the assembled coprocessor model.

:class:`AddressEngine` wires the components of Figure 2 -- ZBT memory,
PCI/DMA, IIM, OIM, transmission units, Process Unit, pixel level
controller and image level controller -- and runs one call cycle by
cycle.  One model clock is one PCI bus cycle (66 MHz); within it the
bus can move one word, each transmission unit one pixel/word, and the
pixel level controller up to two pixel-cycles (the startpipeline keeps
multiple pixel-cycles in flight, making the Process Unit faster than
the ZBT write path -- the OIM absorbs the difference).

Per-cycle order models the arbitration priorities: DMA first (the PCI
cannot be stalled cheaply), then the input transmission units, then the
image level controller's decisions, the PLC, and the output
transmission unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..addresslib.addressing import AddressingMode
from ..addresslib.executor import VectorExecutor
from ..image.frame import Frame
from .config import EngineConfig, IIM_LINES, OIM_LINES
from .constraints import (INPUT_TXU_TICKS_PER_CYCLE, PLC_TICKS_PER_CYCLE,
                          default_max_cycles, fast_path_blockers)
from .errors import EngineDeadlock, deadlock_message
from .fastpath import FastStepper, tick_engine_cycle
from .iim import InputIntermediateMemory
from .image_controller import ImageLevelController
from .oim import OutputIntermediateMemory
from .pci import DEFAULT_JOB_OVERHEAD_CYCLES, PCIBus, PCI_CLOCK_HZ
from .plc import PixelLevelController, PlcStats
from .process_unit import ProcessUnit
from .txu import InputTransmissionUnit, OutputTransmissionUnit
from .zbt import ZBTMemory, ZBTLayout

__all__ = ["AddressEngine", "EngineRunResult", "EngineDeadlock",
           "INPUT_TXU_TICKS_PER_CYCLE", "PLC_TICKS_PER_CYCLE"]


@dataclass
class EngineRunResult:
    """Everything one simulated AddressEngine call produced."""

    config: EngineConfig
    #: The result image (``None`` for scalar-reduce calls).
    frame: Optional[Frame]
    #: The scalar result (``None`` for image-producing calls).
    scalar: Optional[int]
    cycles: int
    clock_hz: float
    pci: PCIBus
    zbt: ZBTMemory
    plc_stats: PlcStats
    input_txus: List[InputTransmissionUnit]
    output_txu: Optional[OutputTransmissionUnit]
    oim_peak_pixels: int
    matrix_loads: int
    matrix_shifts: int
    matrix_pixels_fetched: int
    input_complete_cycle: int
    completion_cycle: int
    #: Whether the batched fast-path stepper drove the call (the result
    #: is cycle-exact either way; this records which loop produced it).
    fast_path_used: bool = False

    @property
    def seconds(self) -> float:
        """Wall time of the call at the model clock."""
        return self.cycles / self.clock_hz

    @property
    def pci_busy_cycles(self) -> int:
        return self.pci.busy_cycles

    @property
    def non_pci_cycles(self) -> int:
        """Cycles not covered by PCI word movement: the paper's "time
        wasted not due to the PCI transferences"."""
        return self.cycles - self.pci.busy_cycles

    @property
    def non_pci_fraction_of_input(self) -> float:
        """Non-PCI time as a fraction of the input transfer time (the
        section 4.1 metric, bounded by 12.5 % for special inter ops)."""
        if self.input_complete_cycle <= 0:
            return 0.0
        return self.non_pci_cycles / self.input_complete_cycle

    @property
    def zbt_pixel_ops(self) -> int:
        """Pixel-granular ZBT access operations (Table 2's HW metric)."""
        return self.zbt.pixel_ops


class AddressEngine:
    """The coprocessor: build it once, run statically-configured calls."""

    def __init__(self, clock_hz: float = PCI_CLOCK_HZ,
                 dma_overhead_cycles: int = DEFAULT_JOB_OVERHEAD_CYCLES,
                 plc_ticks_per_cycle: int = PLC_TICKS_PER_CYCLE,
                 input_txu_ticks_per_cycle: int = INPUT_TXU_TICKS_PER_CYCLE,
                 fast_path: bool = True) -> None:
        """``plc_ticks_per_cycle`` and ``input_txu_ticks_per_cycle``
        default to the prototype's rates; ablation benches lower them to
        quantify the startpipeline and the double-rate memory domain.
        ``fast_path`` enables the cycle-exact batched stepper
        (:mod:`repro.core.fastpath`); disable it to force the per-cycle
        reference loop."""
        self.clock_hz = clock_hz
        self.dma_overhead_cycles = dma_overhead_cycles
        self.plc_ticks_per_cycle = plc_ticks_per_cycle
        self.input_txu_ticks_per_cycle = input_txu_ticks_per_cycle
        self.fast_path = fast_path

    def _fast_path_eligible(self, config: EngineConfig) -> bool:
        """Static regimes the batched stepper handles.

        Anything else (long-latency ops, single-strip frames, ablated
        tick rates) runs the per-cycle reference loop; the stepper itself
        additionally bridges any *dynamic* regime it cannot batch.  The
        regime boundaries live in
        :func:`repro.core.constraints.fast_path_blockers`, shared with
        the static analyzer's prediction.
        """
        return not fast_path_blockers(
            config.op.engine_cycles, config.fmt.strips,
            self.plc_ticks_per_cycle, self.input_txu_ticks_per_cycle)

    # -- golden reference -----------------------------------------------------

    @staticmethod
    def run_functional(config: EngineConfig, frame_a: Frame,
                       frame_b: Optional[Frame] = None
                       ) -> "Frame | int":
        """Bit-exact expected result via the vector executor.

        Used by tests to check the cycle-level model and by the host
        backend to produce results without paying simulation cost.
        """
        if config.mode is AddressingMode.INTER:
            if frame_b is None:
                raise ValueError("inter call needs two frames")
            if config.reduce_to_scalar:
                return VectorExecutor.inter_reduce(
                    config.op, frame_a, frame_b, config.channels)
            return VectorExecutor.inter(config.op, frame_a, frame_b,
                                        config.channels)
        return VectorExecutor.intra(config.op, frame_a, config.channels)

    # -- cycle-level run ------------------------------------------------------

    def run_call(self, config: EngineConfig, frame_a: Frame,
                 frame_b: Optional[Frame] = None,
                 max_cycles: Optional[int] = None,
                 resident: Optional[List[bool]] = None,
                 fast_path: Optional[bool] = None) -> EngineRunResult:
        """Simulate one AddressEngine call cycle by cycle.

        ``resident`` flags inputs already on the board from a previous
        call (call chaining): they are preloaded into their ZBT banks
        and ship no DMA.  ``fast_path`` overrides the engine-level
        setting for this call.
        """
        frames = [frame_a]
        if config.mode is AddressingMode.INTER:
            if frame_b is None:
                raise ValueError("inter call needs two frames")
            frames.append(frame_b)
        for frame in frames:
            if frame.format.width != config.fmt.width or \
                    frame.format.height != config.fmt.height:
                raise ValueError(
                    f"frame {frame.format.name} does not match call format "
                    f"{config.fmt.name}")

        zbt = ZBTMemory()
        layout = ZBTLayout(config.fmt, images_in=config.images_in)
        pci = PCIBus(job_overhead_cycles=self.dma_overhead_cycles)
        iim = InputIntermediateMemory(config.fmt.width, IIM_LINES,
                                      config.images_in)
        oim = OutputIntermediateMemory(config.fmt.width, OIM_LINES)
        pu = ProcessUnit(config, iim, oim)
        plc = PixelLevelController(pu)
        input_txus = [
            InputTransmissionUnit(zbt, layout, image, iim.fifo(image))
            for image in range(config.images_in)
        ]
        output_txu = (OutputTransmissionUnit(zbt, layout, oim)
                      if config.produces_image else None)
        ilc = ImageLevelController(config, zbt, layout, pci, plc,
                                   input_txus, output_txu)
        ilc.schedule_input(frames, resident=resident)

        if max_cycles is None:
            max_cycles = default_max_cycles(config.fmt.pixels)
        if fast_path is None:
            fast_path = self.fast_path
        use_fast = fast_path and self._fast_path_eligible(config)
        if use_fast:
            stepper = FastStepper(
                config, frames, zbt, pci, iim, oim, pu, plc, input_txus,
                output_txu, ilc, self.plc_ticks_per_cycle,
                self.input_txu_ticks_per_cycle)
            cycle = stepper.run(max_cycles)
        else:
            cycle = 0
            while ilc.completion_cycle is None:
                if cycle >= max_cycles:
                    raise EngineDeadlock(deadlock_message(
                        max_cycles, config, ilc, plc, pci, input_txus))
                tick_engine_cycle(cycle, zbt, pci, input_txus, ilc, plc,
                                  output_txu, self.plc_ticks_per_cycle,
                                  self.input_txu_ticks_per_cycle)
                cycle += 1

        assert ilc.completion_cycle is not None
        result_frame, scalar = self._assemble_result(config, ilc)
        return EngineRunResult(
            config=config, frame=result_frame, scalar=scalar,
            cycles=cycle, clock_hz=self.clock_hz, pci=pci, zbt=zbt,
            plc_stats=plc.stats, input_txus=input_txus,
            output_txu=output_txu, oim_peak_pixels=oim.peak_occupancy,
            matrix_loads=pu.matrix.load_count,
            matrix_shifts=pu.matrix.shift_count,
            matrix_pixels_fetched=pu.matrix.pixels_fetched,
            input_complete_cycle=ilc.input_complete_cycle or 0,
            completion_cycle=ilc.completion_cycle,
            fast_path_used=use_fast)

    @staticmethod
    def _assemble_result(
            config: EngineConfig, ilc: ImageLevelController
    ) -> Tuple[Optional[Frame], Optional[int]]:
        """Rebuild the host-side result from the readback word stream."""
        if not config.produces_image:
            raw = ilc.readback_words
            scalar = (raw[0] | (raw[1] << 32))
            return None, scalar
        words = np.asarray(ilc.readback_words, dtype=np.uint64)
        pairs = words.reshape(-1, 2)
        fmt = config.fmt
        # Production order is the horizontal raster scan, so the pairs map
        # row-major onto the frame.
        lower = pairs[:, 0].astype(np.uint32).reshape(fmt.height, fmt.width)
        upper = pairs[:, 1].astype(np.uint32).reshape(fmt.height, fmt.width)
        return Frame.from_words(fmt, lower, upper), None
