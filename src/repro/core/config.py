"""AddressEngine call configuration.

The v1 coprocessor is *statically configurable*: one AddressEngine call
applies the same operation to every pixel of the image (paper section 3),
so a call is fully described by an addressing mode, an operation, the
channel set and the frame format.  :class:`EngineConfig` captures that and
validates it against the v1 hardware limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..addresslib.addressing import (MAX_NEIGHBOURHOOD_LINES, AddressingMode,
                                     ScanOrder)
from ..addresslib.ops import ChannelSet, InterOp, IntraOp
from ..image.formats import STRIP_LINES, ImageFormat

#: Lines held by the intermediate memories (equal to the strip size).
IIM_LINES = STRIP_LINES
OIM_LINES = STRIP_LINES

#: In inter mode the IIM splits into two FIFOs of this many lines each
#: (paper section 3.3: "two FIFOs, one for every input image, with 8
#: lines each").
IIM_LINES_PER_IMAGE_INTER = IIM_LINES // 2


class EngineConfigError(ValueError):
    """A call configuration the v1 AddressEngine cannot execute."""


@dataclass(frozen=True)
class EngineConfig:
    """One statically-configured AddressEngine call."""

    mode: AddressingMode
    op: Union[InterOp, IntraOp]
    fmt: ImageFormat
    channels: ChannelSet = ChannelSet.Y
    scan: ScanOrder = ScanOrder.HORIZONTAL
    #: Reduce the per-pixel results to a scalar sum (SAD-style calls);
    #: no result image is produced or transferred back.
    reduce_to_scalar: bool = False
    #: A "special inter operation" (section 4.1): processing may only
    #: start once both input images are completely stored in the ZBT.
    requires_full_frames: bool = False

    def __post_init__(self) -> None:
        if not self.mode.engine_supported_v1:
            raise EngineConfigError(
                f"v1 AddressEngine supports only intra and inter "
                f"addressing; {self.mode.value} is future work")
        if self.scan is not ScanOrder.HORIZONTAL:
            raise EngineConfigError(
                "the v1 engine scans horizontally; run vertical-scan "
                "calls on the transposed frame or the software backend")
        if self.mode is AddressingMode.INTER:
            if not isinstance(self.op, InterOp):
                raise EngineConfigError(
                    "inter mode needs an InterOp, got "
                    f"{type(self.op).__name__}")
            if self.requires_full_frames and self.fmt.strips < 2:
                raise EngineConfigError(
                    "full-frame inter ops need at least two strips")
        else:
            if not isinstance(self.op, IntraOp):
                raise EngineConfigError(
                    "intra mode needs an IntraOp, got "
                    f"{type(self.op).__name__}")
            span = self.op.neighbourhood.line_span
            if span > MAX_NEIGHBOURHOOD_LINES:
                raise EngineConfigError(
                    f"neighbourhood spans {span} lines, limit is "
                    f"{MAX_NEIGHBOURHOOD_LINES}")
            if self.requires_full_frames:
                raise EngineConfigError(
                    "requires_full_frames applies to inter mode only")
            if self.reduce_to_scalar:
                raise EngineConfigError(
                    "scalar reduction is an inter-mode feature in v1")

    @property
    def images_in(self) -> int:
        """Number of input images the call consumes."""
        return 2 if self.mode is AddressingMode.INTER else 1

    @property
    def produces_image(self) -> bool:
        """Whether a result image is written back to the host."""
        return not self.reduce_to_scalar

    @property
    def op_name(self) -> str:
        return self.op.name

    @property
    def iim_lines_per_image(self) -> int:
        """IIM lines available per input image."""
        if self.mode is AddressingMode.INTER:
            return IIM_LINES_PER_IMAGE_INTER
        return IIM_LINES


def intra_config(op: IntraOp, fmt: ImageFormat,
                 channels: ChannelSet = ChannelSet.Y,
                 scan: ScanOrder = ScanOrder.HORIZONTAL) -> EngineConfig:
    """Convenience constructor for an intra call."""
    return EngineConfig(mode=AddressingMode.INTRA, op=op, fmt=fmt,
                        channels=channels, scan=scan)


def inter_config(op: InterOp, fmt: ImageFormat,
                 channels: ChannelSet = ChannelSet.Y,
                 reduce_to_scalar: bool = False,
                 requires_full_frames: bool = False) -> EngineConfig:
    """Convenience constructor for an inter call."""
    return EngineConfig(mode=AddressingMode.INTER, op=op, fmt=fmt,
                        channels=channels,
                        reduce_to_scalar=reduce_to_scalar,
                        requires_full_frames=requires_full_frames)
