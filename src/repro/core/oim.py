"""The Output Intermediate Memory (OIM): the result-side buffer.

Paper section 3.1: *"The OIM has exactly the same structure as the IIM,
but it is needed because of different reasons.  It is used as a buffer
structure because there are different speeds at the interface processor
unit output - ZBT memory, since the processing unit provides pixels in
twice the speed than can be written to the ZBT memory."*

The rate mismatch in the model: the process unit retires one result pixel
per cycle, while the output transmission unit writes the two words of a
result pixel *sequentially into the same ZBT bank* (so the PC reads them
back properly ordered) -- half a pixel per cycle.  The OIM absorbs the
difference; its FULL signal back-pressures the pixel level controller.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple


class OutputIntermediateMemory:
    """A pixel FIFO between the process unit and the output TxU.

    Capacity is expressed in lines (same 16-line structure as the IIM);
    internally it is a simple ordered queue of result pixels, which is
    how the sequential result stream behaves.
    """

    def __init__(self, width: int, capacity_lines: int) -> None:
        if capacity_lines <= 0 or width <= 0:
            raise ValueError("OIM dimensions must be positive")
        self.width = width
        self.capacity_lines = capacity_lines
        self._queue: Deque[Tuple[int, int, int]] = deque()
        #: High-water mark, in pixels (for occupancy assertions in tests).
        self.peak_occupancy = 0

    @property
    def capacity_pixels(self) -> int:
        return self.width * self.capacity_lines

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """FULL handshake: the PLC must not start pixel-cycles that would
        overflow the OIM."""
        return len(self._queue) >= self.capacity_pixels

    @property
    def empty(self) -> bool:
        """EMPTY handshake for the output transmission unit."""
        return not self._queue

    @property
    def memory_blocks(self) -> int:
        """Physical blocks: lines x 2 banks, mirroring the IIM structure."""
        return self.capacity_lines * 2

    def push(self, pixel_index: int, lower: int, upper: int) -> None:
        """Stage 4 stores one result pixel (both words) into the OIM."""
        if self.full:
            raise RuntimeError("OIM overflow: PLC should have been halted")
        self._queue.append((pixel_index, lower & 0xFFFFFFFF,
                            upper & 0xFFFFFFFF))
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))

    def front(self) -> Tuple[int, int, int]:
        """Peek the oldest result pixel ``(pixel_index, lower, upper)``."""
        if not self._queue:
            raise RuntimeError("OIM underflow")
        return self._queue[0]

    def pop(self) -> Tuple[int, int, int]:
        """Remove and return the oldest result pixel."""
        if not self._queue:
            raise RuntimeError("OIM underflow")
        return self._queue.popleft()

    # -- batched (fast-path) access -------------------------------------------

    def fast_push(self, pixels: List[Tuple[int, int, int]],
                  intra_window_peak: int) -> None:
        """Append a run of result pixels in one call.

        ``intra_window_peak`` is the highest occupancy the per-cycle
        interleaving of pushes and pops would have reached inside the
        batched window (pushes land before the same cycle's pop); the
        fast path computes it in closed form so the high-water mark stays
        cycle-exact.
        """
        if intra_window_peak > self.capacity_pixels:
            raise RuntimeError("OIM overflow: fast-path window too wide")
        self._queue.extend(pixels)
        self.peak_occupancy = max(self.peak_occupancy, intra_window_peak)

    def fast_pop(self, count: int) -> None:
        """Drop the ``count`` oldest result pixels.

        The fast path already knows their values (the result stream is
        precomputed), so only the occupancy bookkeeping remains.
        """
        if count > len(self._queue):
            raise RuntimeError("OIM underflow: fast-path window too wide")
        if count == len(self._queue):
            self._queue.clear()
        else:
            popleft = self._queue.popleft
            for _ in range(count):
                popleft()

    def reset(self) -> None:
        self._queue.clear()
        self.peak_occupancy = 0
