"""The engine model's static constraints, in one importable place.

Every limit that decides *before a call runs* whether the AddressEngine
can execute it -- bank capacities, strip geometry, the fast-path regime
boundaries, the cycle safety bound -- used to live as literals inside the
component that enforced it.  This module names them so the engine, the
host driver and the static analyzer (:mod:`repro.analysis`) agree on a
single source of truth, and ``repro-check`` can reject a bad call with
the same numbers the simulator would fail on.

Nothing here imports the stepper or the component classes: constraint
checking must stay cheap enough for a pre-flight pass on every call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..image.formats import STRIP_LINES
from .pci import DEFAULT_JOB_OVERHEAD_CYCLES
from .zbt import BANK_WORDS

if TYPE_CHECKING:
    from .config import EngineConfig

#: PLC ticks per model clock: the startpipeline sustains up to two
#: pixel-cycles per bus cycle (see DESIGN.md's rate table).
PLC_TICKS_PER_CYCLE = 2

#: Input transmission unit ticks per model clock: the ZBT memory domain
#: runs at twice the design clock, so a TxU can stream two pixels per
#: engine cycle and keep the doubled-rate Process Unit fed.
INPUT_TXU_TICKS_PER_CYCLE = 2

#: Highest stage-3 latency the batched fast-path stepper can plan for:
#: the hand-traced FLOW signatures cover one- and two-cycle operations.
FAST_PATH_MAX_OP_CYCLES = 2

#: Fewest strips the fast path batches: single-strip frames never leave
#: the warm-up/drain regime, so they run per-cycle.
FAST_PATH_MIN_STRIPS = 2

#: Result pixels one result bank can hold: two consecutive 32-bit words
#: per pixel in the same bank (so the PC reads them back ordered).
RESULT_BANK_PIXELS = BANK_WORDS // 2

#: Fast-path fallback reason codes (shared with the analyzer's FPA rules).
FALLBACK_OP_LATENCY = "op_latency"
FALLBACK_SINGLE_STRIP = "single_strip"
FALLBACK_TICK_RATES = "tick_rates"


def default_max_cycles(pixels: int) -> int:
    """The engine's default per-call cycle safety bound."""
    return 80 * pixels + 200_000


def fast_path_blockers(op_cycles: int, strips: int,
                       plc_ticks_per_cycle: int,
                       input_txu_ticks_per_cycle: int) -> List[str]:
    """Why a call cannot use the batched fast-path stepper.

    Returns the (possibly empty) list of fallback reason codes.  This is
    the single definition of the static eligibility regime: the engine's
    dispatch (:meth:`repro.core.engine.AddressEngine.run_call`), the
    analyzer's FPA rules and ``scripts/check_fastpath.py`` all consume
    it, so the regime boundaries cannot drift apart.
    """
    blockers = []
    if op_cycles > FAST_PATH_MAX_OP_CYCLES:
        blockers.append(FALLBACK_OP_LATENCY)
    if strips < FAST_PATH_MIN_STRIPS:
        blockers.append(FALLBACK_SINGLE_STRIP)
    if (plc_ticks_per_cycle != PLC_TICKS_PER_CYCLE
            or input_txu_ticks_per_cycle != INPUT_TXU_TICKS_PER_CYCLE):
        blockers.append(FALLBACK_TICK_RATES)
    return blockers


def input_bank_words_needed(fmt_pixels: int, fmt_strips: int, fmt_width: int,
                            images_in: int) -> int:
    """32-bit words one *input* bank must hold for the given geometry.

    Intra mode stacks same-parity strips inside one bank pair
    (block_A/block_B double buffering), so a bank holds
    ``ceil(strips / 2)`` strips; inter mode stores each whole image
    linearly in its own pair.
    """
    if images_in == 2:
        return fmt_pixels
    strip_words = STRIP_LINES * fmt_width
    return -(-fmt_strips // 2) * strip_words


def min_call_cycles(config: "EngineConfig", resident_count: int = 0,
                    job_overhead_cycles: int = DEFAULT_JOB_OVERHEAD_CYCLES
                    ) -> int:
    """A provable lower bound on one call's completion cycle.

    The PCI bus is half-duplex and moves at most one 32-bit word per
    cycle, every DMA job pays its setup/interrupt overhead, and the PLC
    retires at most two pixel-cycles per clock -- so no schedule can
    finish faster than the larger of the word-movement and the
    pixel-retirement floors.  A ``max_cycles`` below this bound is a
    guaranteed :class:`~repro.core.errors.EngineDeadlock`.
    """
    fmt = config.fmt
    shipping_images = config.images_in - resident_count
    input_words = fmt.pixels * 2 * shipping_images
    readback_words = fmt.pixels * 2 if config.produces_image else 2
    dma_jobs = fmt.strips * shipping_images + 1
    word_floor = input_words + readback_words + dma_jobs * job_overhead_cycles
    retire_floor = fmt.pixels // PLC_TICKS_PER_CYCLE
    return max(word_floor, retire_floor)
