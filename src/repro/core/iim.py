"""The Input Intermediate Memory (IIM): parallel BRAM line stores.

Paper section 3.1: the IIM sits at the input of the processing unit
because of successive pixel reuse -- *"with the implementation employed
the whole neighbourhood can be obtained in only one cycle, even in the
worst case with perpendicular neighbourhood and scan direction"* (Figure
4).  It holds sixteen lines, in sixteen memory blocks with two banks for
the lower and the upper part of the pixel (32 blocks of FPGA embedded
memory).  In inter mode it splits into two eight-line FIFOs, one per
input image (section 3.3).

The model keeps whole 64-bit pixels per line slot and exposes the FIFO
handshake signals (FULL/EMPTY) the image level controller uses to halt
the pixel level controller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class LineStoreFifo:
    """A ring of line stores, each holding one full image line of pixels.

    Lines enter in frame order via the transmission unit
    (:meth:`begin_line` / :meth:`push_pixel` / line auto-completes) and
    retire in order once the scan no longer needs them
    (:meth:`release_through`).  Random access *within* the resident window
    is unrestricted and free of extra cycles: all line blocks are read in
    parallel, which is what makes the one-cycle neighbourhood fetch work.
    """

    def __init__(self, capacity_lines: int, width: int) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_lines = capacity_lines
        self.width = width
        #: Resident lines: line number -> (lower words, upper words).
        self._lines: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._next_line_in = 0
        self._oldest_resident = 0
        self._fill_column = 0
        self._filling: Optional[int] = None

    # -- handshake signals ----------------------------------------------------

    @property
    def full(self) -> bool:
        """No room to start (or continue into) another line."""
        return (len(self._lines) >= self.capacity_lines
                and self._filling is None)

    @property
    def empty(self) -> bool:
        """No complete line resident."""
        return not self._lines

    @property
    def resident_lines(self) -> List[int]:
        """Complete resident line numbers, ascending."""
        return sorted(self._lines)

    @property
    def next_line_to_fill(self) -> int:
        """The line number the transmission unit will deliver next."""
        return self._next_line_in if self._filling is None else self._filling

    # -- fill side (transmission unit) ----------------------------------------

    def can_accept_pixel(self) -> bool:
        """Whether one more pixel can be pushed this cycle."""
        if self._filling is not None:
            return True
        return len(self._lines) < self.capacity_lines

    def push_pixel(self, lower: int, upper: int) -> None:
        """Append one pixel to the line currently being filled.

        Starts a new line automatically; when the line reaches the image
        width it becomes resident and readable.
        """
        if self._filling is None:
            if len(self._lines) >= self.capacity_lines:
                raise RuntimeError("IIM overflow: no free line store")
            self._filling = self._next_line_in
            self._fill_buffer = (np.zeros(self.width, dtype=np.uint32),
                                 np.zeros(self.width, dtype=np.uint32))
            self._fill_column = 0
        low_buf, up_buf = self._fill_buffer
        low_buf[self._fill_column] = lower
        up_buf[self._fill_column] = upper
        self._fill_column += 1
        if self._fill_column == self.width:
            self._lines[self._filling] = self._fill_buffer
            self._next_line_in = self._filling + 1
            self._filling = None

    # -- batched fill (fast path) ---------------------------------------------

    def acceptable_pixels(self) -> int:
        """How many pixels :meth:`push_pixel` could take before the FULL
        handshake would stall the transmission unit.

        This is the fifo's "cycles until your next event" answer on the
        fill side (divide by the fill rate): within that many pushes the
        fifo's behaviour cannot change, ignoring any lines the scan may
        release in the meantime (releases only *add* capacity, so the
        answer is conservative and the batch stays exact).
        """
        free_lines = self.capacity_lines - len(self._lines)
        if self._filling is not None:
            return free_lines * self.width - self._fill_column
        return free_lines * self.width

    def fast_fill(self, line: int, column: int,
                  lower: np.ndarray, upper: np.ndarray) -> None:
        """Push ``len(lower)`` pixels of ``line`` starting at ``column``.

        Batched equivalent of repeated :meth:`push_pixel` calls; the
        segment must stay within one line, and the caller guarantees
        capacity (the fast path caps its windows by
        :meth:`acceptable_pixels`).
        """
        if self._filling is None:
            if column != 0 or line != self._next_line_in:
                raise RuntimeError(
                    f"fast_fill expected line {self._next_line_in} column 0, "
                    f"got line {line} column {column}")
            if len(self._lines) >= self.capacity_lines:
                raise RuntimeError("IIM overflow: no free line store")
            self._filling = line
            self._fill_buffer = (np.zeros(self.width, dtype=np.uint32),
                                 np.zeros(self.width, dtype=np.uint32))
            self._fill_column = 0
        if self._filling != line or self._fill_column != column:
            raise RuntimeError(
                f"fast_fill expected line {self._filling} column "
                f"{self._fill_column}, got line {line} column {column}")
        count = len(lower)
        low_buf, up_buf = self._fill_buffer
        low_buf[column:column + count] = lower
        up_buf[column:column + count] = upper
        self._fill_column += count
        if self._fill_column == self.width:
            self._lines[self._filling] = self._fill_buffer
            self._next_line_in = self._filling + 1
            self._filling = None

    def resident_range(self) -> Optional[Tuple[int, int]]:
        """``(first, last)`` complete resident lines, or ``None`` if empty.

        Lines enter in frame order and retire from the bottom, so the
        resident set is always one contiguous range.
        """
        if not self._lines:
            return None
        lines = self._lines.keys()
        return min(lines), max(lines)

    # -- read side (process unit stage 2) -------------------------------------

    def lines_resident(self, first_line: int, last_line: int) -> bool:
        """Whether every line in ``[first_line, last_line]`` (clamped to the
        image) is resident and complete."""
        for line in range(max(first_line, 0), last_line + 1):
            if line not in self._lines:
                return False
        return True

    def read_pixel(self, x: int, line: int) -> Tuple[int, int]:
        """Read pixel ``x`` of resident ``line`` as ``(lower, upper)`` words.

        Any number of same-cycle reads is allowed: each line lives in its
        own pair of memory blocks, so a whole neighbourhood column loads
        in parallel (the Figure 4 worst case costs one cycle, not nine).
        """
        if line not in self._lines:
            raise KeyError(f"line {line} not resident in IIM")
        if not 0 <= x < self.width:
            raise IndexError(f"column {x} outside line of {self.width}")
        low_buf, up_buf = self._lines[line]
        return int(low_buf[x]), int(up_buf[x])

    def release_through(self, line: int) -> int:
        """Retire every resident line up to and including ``line``.

        Returns how many line stores were freed.  The image level
        controller calls this as the scan advances past a line's last use.
        """
        freed = 0
        for resident in list(self._lines):
            if resident <= line:
                del self._lines[resident]
                freed += 1
        if freed:
            self._oldest_resident = line + 1
        return freed

    def reset(self) -> None:
        self._lines.clear()
        self._next_line_in = 0
        self._oldest_resident = 0
        self._filling = None
        self._fill_column = 0


class InputIntermediateMemory:
    """The IIM: one 16-line FIFO in intra mode, two 8-line FIFOs in inter.

    Exposes combined FULL/EMPTY signals (section 3.3: in inter mode "we
    will generate the same signals for both of the FIFOs").
    """

    def __init__(self, width: int, total_lines: int, images: int) -> None:
        if images not in (1, 2):
            raise ValueError("IIM serves one or two input images")
        if total_lines % images != 0:
            raise ValueError(
                f"{total_lines} lines do not split over {images} images")
        self.images = images
        self.lines_per_image = total_lines // images
        self.fifos = [LineStoreFifo(self.lines_per_image, width)
                      for _ in range(images)]

    @property
    def full(self) -> bool:
        return any(fifo.full for fifo in self.fifos)

    @property
    def empty(self) -> bool:
        return any(fifo.empty for fifo in self.fifos)

    def fifo(self, image: int) -> LineStoreFifo:
        return self.fifos[image]

    @property
    def memory_blocks(self) -> int:
        """Physical line-store blocks: lines x 2 banks (lower/upper).

        For the 16-line configuration this is the paper's "32 memory
        blocks ... implemented in the FPGA embedded memory".
        """
        return sum(f.capacity_lines for f in self.fifos) * 2

    def reset(self) -> None:
        for fifo in self.fifos:
            fifo.reset()
