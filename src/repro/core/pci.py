"""The PC <-> board path: 32-bit PCI bus with DMA and interrupts.

Paper section 3: *"The communication between PC and the coprocessor is
interrupt oriented and happens through the PCI bus which also has a width
of 32 bits"*, and section 4.1 fixes the rate: 66 MHz, which the paper
identifies as the bottleneck of the whole system.

The model is transaction-level: one 32-bit word per bus cycle while a DMA
job is active, half-duplex (input and output jobs never overlap), plus a
fixed per-job setup/interrupt overhead.  Word delivery is a callback so
the image level controller decides where words come from / go to (ZBT
blocks, scalar result register, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple
from collections import deque

#: PCI clock in Hz (66 MHz, section 4.1).
PCI_CLOCK_HZ = 66_000_000

#: Bus width in bits.
PCI_WORD_BITS = 32

#: Peak PCI bandwidth in bytes/second (66 MHz x 4 bytes = 264 MB/s, the
#: per-ZBT-bank figure of section 4.1).
PCI_PEAK_BYTES_PER_SECOND = PCI_CLOCK_HZ * (PCI_WORD_BITS // 8)

#: Default DMA setup + interrupt service overhead per job, in bus cycles.
#: Calibrated so whole-call times land near Table 3 (see DESIGN.md).
DEFAULT_JOB_OVERHEAD_CYCLES = 64

#: "No event ahead" sentinel for the fast-path horizon queries.
_INFINITE_HORIZON = 1 << 60


@dataclass
class DMAJob:
    """One DMA transfer of ``total_words`` 32-bit words.

    ``transfer_word(word_index)`` performs the side effect of moving word
    ``word_index`` and returns ``True``; returning ``False`` means the
    word is not ready yet (e.g. the result word has not been written to
    the ZBT) and the bus idles this cycle.
    """

    label: str
    total_words: int
    transfer_word: Callable[[int], bool]
    to_board: bool = True
    words_done: int = 0
    overhead_remaining: int = 0
    #: Optional batched form of ``transfer_word``: ``bulk_transfer(start,
    #: count)`` performs the side effects of words ``[start, start+count)``
    #: in one call.  The fast-path stepper uses it for runs of cycles it
    #: has proven stall-free; the final word of a job always goes through
    #: ``transfer_word`` so completion callbacks fire from real code.
    bulk_transfer: Optional[Callable[[int, int], None]] = None
    #: The ZBT bank pair an input job writes (for the fast path's
    #: DMA/transmission-unit contention planning).
    banks: Optional[Tuple[int, int]] = None

    @property
    def complete(self) -> bool:
        return self.words_done >= self.total_words


@dataclass
class Interrupt:
    """An interrupt raised towards the host."""

    cycle: int
    name: str


class PCIBus:
    """A half-duplex, one-word-per-cycle DMA engine with a job queue."""

    def __init__(self,
                 job_overhead_cycles: int = DEFAULT_JOB_OVERHEAD_CYCLES
                 ) -> None:
        self.job_overhead_cycles = job_overhead_cycles
        self._queue: Deque[DMAJob] = deque()
        self._active: Optional[DMAJob] = None
        self.interrupts: List[Interrupt] = []
        self.busy_cycles = 0
        self.stall_cycles = 0
        self.overhead_cycles = 0
        self.idle_cycles = 0
        self.words_to_board = 0
        self.words_to_host = 0

    # -- job management -------------------------------------------------------

    def enqueue(self, job: DMAJob) -> None:
        """Append a job; jobs run strictly in order (half-duplex bus)."""
        job.overhead_remaining = self.job_overhead_cycles
        self._queue.append(job)

    @property
    def active_job(self) -> Optional[DMAJob]:
        return self._active

    @property
    def pending_jobs(self) -> int:
        return len(self._queue) + (1 if self._active else 0)

    @property
    def idle(self) -> bool:
        """Whether the bus has no work at all (the paper's "PCI bus is
        free" condition gating result readback)."""
        return self._active is None and not self._queue

    def raise_interrupt(self, cycle: int, name: str) -> None:
        self.interrupts.append(Interrupt(cycle, name))

    # -- cycle behaviour ------------------------------------------------------

    def tick(self, cycle: int) -> Optional[Tuple[DMAJob, int]]:
        """Advance one bus cycle.

        Returns ``(job, word_index)`` when a word moved, else ``None``.
        Raises the job's completion interrupt when its last word moves.
        """
        if self._active is None:
            if not self._queue:
                self.idle_cycles += 1
                return None
            self._active = self._queue.popleft()
        job = self._active
        if job.overhead_remaining > 0:
            job.overhead_remaining -= 1
            self.overhead_cycles += 1
            return None
        if not job.transfer_word(job.words_done):
            self.stall_cycles += 1
            return None
        index = job.words_done
        job.words_done += 1
        self.busy_cycles += 1
        if job.to_board:
            self.words_to_board += 1
        else:
            self.words_to_host += 1
        if job.complete:
            self.raise_interrupt(cycle, f"dma_done:{job.label}")
            self._active = None
        return job, index

    # -- batched (fast-path) behaviour ----------------------------------------

    def activate_next_job(self) -> Optional[DMAJob]:
        """Promote the queue head to active without burning a cycle.

        :meth:`tick` pops and processes the head within the same cycle, so
        doing the pop eagerly at a batch-window boundary changes nothing
        observable; it lets the fast path plan against the real job.
        """
        if self._active is None and self._queue:
            self._active = self._queue.popleft()
        return self._active

    def fast_event_horizon(self) -> int:
        """Cycles until the bus can next change behaviour on its own.

        This is the PCI component's "how many cycles until your next
        event" answer: within the returned horizon the bus keeps doing
        whatever it is doing this cycle (idling, paying job overhead, or
        streaming words), and the *last* word of a job is excluded so it
        always runs through :meth:`tick` (interrupts, completion
        callbacks).  A return of 0 means the next cycle must be simulated
        for real.
        """
        job = self.activate_next_job()
        if job is None:
            return _INFINITE_HORIZON
        if job.overhead_remaining > 0:
            return job.overhead_remaining
        return job.total_words - job.words_done - 1

    def fast_advance_idle(self, cycles: int) -> None:
        self.idle_cycles += cycles

    def fast_advance_overhead(self, cycles: int) -> None:
        job = self._active
        assert job is not None and job.overhead_remaining >= cycles
        job.overhead_remaining -= cycles
        self.overhead_cycles += cycles

    def fast_advance_stalled(self, cycles: int) -> None:
        """The active job is waiting on data (e.g. the scalar result)."""
        self.stall_cycles += cycles

    def fast_advance_words(self, cycles: int) -> None:
        """Move ``cycles`` words of the active job in one batch."""
        job = self._active
        assert job is not None and job.overhead_remaining == 0
        assert job.words_done + cycles < job.total_words
        if job.bulk_transfer is not None:
            job.bulk_transfer(job.words_done, cycles)
        job.words_done += cycles
        self.busy_cycles += cycles
        if job.to_board:
            self.words_to_board += cycles
        else:
            self.words_to_host += cycles

    # -- reporting ------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return (self.words_to_board + self.words_to_host) * 4

    def utilization(self) -> float:
        """Fraction of elapsed bus cycles spent moving words."""
        elapsed = (self.busy_cycles + self.stall_cycles
                   + self.overhead_cycles + self.idle_cycles)
        if elapsed == 0:
            return 0.0
        return self.busy_cycles / elapsed
