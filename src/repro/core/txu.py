"""Transmission units: line movers between the ZBT and the IIM/OIM.

Paper section 3.2: *"The transmission unit controls the transfer of lines
from the ZBT memory to the intermediate memory system, in both the OIM-
and the IIM structure."*

* :class:`InputTransmissionUnit` -- one per input image; streams pixels of
  the next needed line from the image's ZBT bank pair into its IIM FIFO,
  one pixel per cycle (lower and upper words read from the two sibling
  banks in the same cycle).
* :class:`OutputTransmissionUnit` -- drains the OIM into the result banks
  at one *pixel* per cycle: the two words of a result pixel are written
  back-to-back into the same bank (using the memory domain's double rate)
  so the PC reads them back properly ordered.  The process unit retires up
  to two pixel-cycles per clock, so this is the 2x speed mismatch against
  the processing rate that the OIM exists to absorb.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..image.formats import STRIP_LINES
from .iim import LineStoreFifo
from .oim import OutputIntermediateMemory
from .zbt import ZBTMemory, ZBTLayout

#: Fast-path plan states for an input transmission unit (see
#: :meth:`InputTransmissionUnit.fast_plan`).
TXU_DONE = "done"
TXU_NO_STRIP = "no_strip"
TXU_FIFO_FULL = "fifo_full"
TXU_MOVING = "moving"

_INFINITE_HORIZON = 1 << 60


class InputTransmissionUnit:
    """Streams one input image from its ZBT blocks into its IIM FIFO."""

    def __init__(self, zbt: ZBTMemory, layout: ZBTLayout, image: int,
                 fifo: LineStoreFifo) -> None:
        self.zbt = zbt
        self.layout = layout
        self.image = image
        self.fifo = fifo
        self._line = 0
        self._column = 0
        #: Set by the image level controller: strips fully present in ZBT.
        self.strips_available = 0
        self.pixels_moved = 0
        self.stall_no_strip = 0
        self.stall_iim_full = 0
        self.stall_bank_busy = 0

    @property
    def done(self) -> bool:
        return self._line >= self.layout.fmt.height

    def tick(self) -> bool:
        """Move one pixel ZBT -> IIM if possible; returns whether it did."""
        if self.done:
            return False
        strip_index = self._line // STRIP_LINES
        if strip_index >= self.strips_available:
            self.stall_no_strip += 1
            return False
        if not self.fifo.can_accept_pixel():
            self.stall_iim_full += 1
            return False
        banks = self.layout.input_banks(self.image, strip_index)
        if not self.zbt.banks_free(banks):
            self.stall_bank_busy += 1
            return False
        address = self.layout.input_address(self._column, self._line)
        lower = self.zbt.read(banks[0], address)
        upper = self.zbt.read(banks[1], address)
        self.zbt.count_pixel_op()
        self.fifo.push_pixel(lower, upper)
        self.pixels_moved += 1
        self._column += 1
        if self._column == self.layout.fmt.width:
            self._column = 0
            self._line += 1
        return True

    # -- batched (fast-path) behaviour ----------------------------------------

    @property
    def current_banks(self) -> Tuple[int, int]:
        """The bank pair the unit reads from at its current position."""
        return self.layout.input_banks(self.image, self._line // STRIP_LINES)

    def pixels_until_line_complete(self, target_line: int) -> int:
        """Pixels this unit must still move to finish ``target_line``.

        The PLC-side "cycles until unfreeze" query: a stage-2 fetch
        waiting on ``target_line`` becomes ready once this many pixels
        have streamed into the IIM (divide by the fill rate for cycles).
        """
        if self._line > target_line:
            return 0
        return ((target_line + 1 - self._line) * self.layout.fmt.width
                - self._column)

    def fast_plan(self, contended: bool) -> Tuple[str, int, int]:
        """``(state, horizon_cycles, pixels_per_cycle)`` for a batch window.

        Within ``horizon_cycles`` the unit's behaviour is uniform: every
        cycle it either stalls for the same reason or moves
        ``pixels_per_cycle`` pixels.  ``contended`` flags an active input
        DMA burst on this unit's bank pair, which leaves exactly one port
        operation per bank for the unit -- one pixel per cycle instead of
        two (the second tick stalls on the busy bank).

        The horizon is conservative: it stops at the end of the current
        strip (bank pair and address run change there) and at the IIM's
        current free capacity, ignoring lines the scan may release
        mid-window.
        """
        if self.done:
            return TXU_DONE, _INFINITE_HORIZON, 0
        strip_index = self._line // STRIP_LINES
        if strip_index >= self.strips_available:
            return TXU_NO_STRIP, _INFINITE_HORIZON, 0
        acceptable = self.fifo.acceptable_pixels()
        if acceptable == 0:
            return TXU_FIFO_FULL, _INFINITE_HORIZON, 0
        fmt = self.layout.fmt
        strip_end_line = min((strip_index + 1) * STRIP_LINES, fmt.height)
        to_strip_end = (strip_end_line - self._line) * fmt.width - self._column
        rate = 1 if contended else 2
        horizon = min(acceptable, to_strip_end) // rate
        if contended:
            # At rate 1 the cycle that moves the cap's last pixel probes
            # past the cap on its second tick (next strip, or the FIFO it
            # just filled) -- not uniform, so leave that cycle bridged.
            horizon -= 1
        return TXU_MOVING, horizon, rate

    def fast_advance_stalled(self, cycles: int, state: str,
                             ticks_per_cycle: int) -> None:
        stalls = cycles * ticks_per_cycle
        if state == TXU_NO_STRIP:
            self.stall_no_strip += stalls
        elif state == TXU_FIFO_FULL:
            self.stall_iim_full += stalls
        else:
            raise ValueError(f"not a stalled fast-plan state: {state}")

    def fast_advance_moving(self, cycles: int, rate: int,
                            lower: np.ndarray, upper: np.ndarray) -> None:
        """Move ``cycles * rate`` pixels ZBT -> IIM in one batch.

        ``lower``/``upper`` are the image's full word planes (the same
        values the DMA wrote into the ZBT banks, which is what makes the
        bulk copy equivalent to the per-cycle reads).
        """
        pixels = cycles * rate
        width = self.layout.fmt.width
        banks = self.current_banks
        self.zbt.count_accesses(banks[0], reads=pixels)
        self.zbt.count_accesses(banks[1], reads=pixels)
        self.zbt.count_pixel_ops(pixels)
        remaining = pixels
        while remaining:
            take = min(remaining, width - self._column)
            row, col = self._line, self._column
            self.fifo.fast_fill(row, col,
                                lower[row, col:col + take],
                                upper[row, col:col + take])
            self._column += take
            if self._column == width:
                self._column = 0
                self._line += 1
            remaining -= take
        self.pixels_moved += pixels
        if rate == 1:
            # Tick 1 moves, tick 2 finds the DMA-shared bank exhausted.
            self.stall_bank_busy += cycles


class OutputTransmissionUnit:
    """Drains the OIM into the result banks, one 32-bit word per cycle."""

    def __init__(self, zbt: ZBTMemory, layout: ZBTLayout,
                 oim: OutputIntermediateMemory) -> None:
        self.zbt = zbt
        self.layout = layout
        self.oim = oim
        self._switched = False
        #: Sequence index of the next result pixel within the active bank.
        self._bank_pixel_index = [0, 0]
        self.pixels_written = 0
        self.words_written = 0
        #: Words written per result bank (the readback DMA's high-water mark).
        self.bank_words = [0, 0]
        self.stall_oim_empty = 0
        self.stall_bank_busy = 0

    @property
    def switched(self) -> bool:
        return self._switched

    def switch_result_bank(self) -> None:
        """The single Res_block_A -> Res_block_B switch, performed "as soon
        as it is possible to start transferring the resulting image"."""
        if self._switched:
            raise RuntimeError("result bank switch already performed")
        self._switched = True

    @property
    def _active_slot(self) -> int:
        return 1 if self._switched else 0

    def tick(self) -> bool:
        """Write one result pixel (both words, same bank) OIM -> ZBT."""
        if self.oim.empty:
            self.stall_oim_empty += 1
            return False
        bank = self.layout.result_bank(self._switched)
        if not self.zbt.bank_free(bank, ops=2):
            self.stall_bank_busy += 1
            return False
        slot = self._active_slot
        pixel_index, lower, upper = self.oim.pop()
        del pixel_index
        base = self._bank_pixel_index[slot]
        self.zbt.write(bank, self.layout.result_address(base, 0), lower)
        self.zbt.write(bank, self.layout.result_address(base, 1), upper)
        self.zbt.count_pixel_op()
        self.words_written += 2
        self.bank_words[slot] += 2
        self._bank_pixel_index[slot] += 1
        self.pixels_written += 1
        return True

    # -- batched (fast-path) behaviour ----------------------------------------

    @property
    def active_bank(self) -> int:
        return self.layout.result_bank(self._switched)

    def fast_advance_empty(self, cycles: int) -> None:
        self.stall_oim_empty += cycles

    def fast_advance_draining(self, cycles: int, res_lower: np.ndarray,
                              res_upper: np.ndarray) -> None:
        """Write ``cycles`` result pixels (two words each) in one batch.

        Result pixels leave the OIM in scan order, so the next ``cycles``
        pixels are ``res_lower/res_upper[pixels_written :]`` of the
        precomputed result stream.  The caller has verified the OIM holds
        (or receives in-window, ahead of each pop) enough pixels and that
        the result bank is free of readback traffic.
        """
        slot = self._active_slot
        bank = self.active_bank
        start = self.pixels_written
        base = self._bank_pixel_index[slot]
        self.layout.result_address(base + cycles - 1, 1)  # overflow check
        words = np.empty(cycles * 2, dtype=np.uint32)
        words[0::2] = res_lower[start:start + cycles]
        words[1::2] = res_upper[start:start + cycles]
        self.zbt.bulk_write(bank, base * 2, words)
        self.zbt.count_pixel_ops(cycles)
        self.oim.fast_pop(cycles)
        self.words_written += cycles * 2
        self.bank_words[slot] += cycles * 2
        self._bank_pixel_index[slot] += cycles
        self.pixels_written += cycles
