"""Transmission units: line movers between the ZBT and the IIM/OIM.

Paper section 3.2: *"The transmission unit controls the transfer of lines
from the ZBT memory to the intermediate memory system, in both the OIM-
and the IIM structure."*

* :class:`InputTransmissionUnit` -- one per input image; streams pixels of
  the next needed line from the image's ZBT bank pair into its IIM FIFO,
  one pixel per cycle (lower and upper words read from the two sibling
  banks in the same cycle).
* :class:`OutputTransmissionUnit` -- drains the OIM into the result banks
  at one *pixel* per cycle: the two words of a result pixel are written
  back-to-back into the same bank (using the memory domain's double rate)
  so the PC reads them back properly ordered.  The process unit retires up
  to two pixel-cycles per clock, so this is the 2x speed mismatch against
  the processing rate that the OIM exists to absorb.
"""

from __future__ import annotations

from ..image.formats import STRIP_LINES
from .iim import LineStoreFifo
from .oim import OutputIntermediateMemory
from .zbt import ZBTMemory, ZBTLayout


class InputTransmissionUnit:
    """Streams one input image from its ZBT blocks into its IIM FIFO."""

    def __init__(self, zbt: ZBTMemory, layout: ZBTLayout, image: int,
                 fifo: LineStoreFifo) -> None:
        self.zbt = zbt
        self.layout = layout
        self.image = image
        self.fifo = fifo
        self._line = 0
        self._column = 0
        #: Set by the image level controller: strips fully present in ZBT.
        self.strips_available = 0
        self.pixels_moved = 0
        self.stall_no_strip = 0
        self.stall_iim_full = 0
        self.stall_bank_busy = 0

    @property
    def done(self) -> bool:
        return self._line >= self.layout.fmt.height

    def tick(self) -> bool:
        """Move one pixel ZBT -> IIM if possible; returns whether it did."""
        if self.done:
            return False
        strip_index = self._line // STRIP_LINES
        if strip_index >= self.strips_available:
            self.stall_no_strip += 1
            return False
        if not self.fifo.can_accept_pixel():
            self.stall_iim_full += 1
            return False
        banks = self.layout.input_banks(self.image, strip_index)
        if not self.zbt.banks_free(banks):
            self.stall_bank_busy += 1
            return False
        address = self.layout.input_address(self._column, self._line)
        lower = self.zbt.read(banks[0], address)
        upper = self.zbt.read(banks[1], address)
        self.zbt.count_pixel_op()
        self.fifo.push_pixel(lower, upper)
        self.pixels_moved += 1
        self._column += 1
        if self._column == self.layout.fmt.width:
            self._column = 0
            self._line += 1
        return True


class OutputTransmissionUnit:
    """Drains the OIM into the result banks, one 32-bit word per cycle."""

    def __init__(self, zbt: ZBTMemory, layout: ZBTLayout,
                 oim: OutputIntermediateMemory) -> None:
        self.zbt = zbt
        self.layout = layout
        self.oim = oim
        self._switched = False
        #: Sequence index of the next result pixel within the active bank.
        self._bank_pixel_index = [0, 0]
        self.pixels_written = 0
        self.words_written = 0
        #: Words written per result bank (the readback DMA's high-water mark).
        self.bank_words = [0, 0]
        self.stall_oim_empty = 0
        self.stall_bank_busy = 0

    @property
    def switched(self) -> bool:
        return self._switched

    def switch_result_bank(self) -> None:
        """The single Res_block_A -> Res_block_B switch, performed "as soon
        as it is possible to start transferring the resulting image"."""
        if self._switched:
            raise RuntimeError("result bank switch already performed")
        self._switched = True

    @property
    def _active_slot(self) -> int:
        return 1 if self._switched else 0

    def tick(self) -> bool:
        """Write one result pixel (both words, same bank) OIM -> ZBT."""
        if self.oim.empty:
            self.stall_oim_empty += 1
            return False
        bank = self.layout.result_bank(self._switched)
        if not self.zbt.bank_free(bank, ops=2):
            self.stall_bank_busy += 1
            return False
        slot = self._active_slot
        pixel_index, lower, upper = self.oim.pop()
        del pixel_index
        base = self._bank_pixel_index[slot]
        self.zbt.write(bank, self.layout.result_address(base, 0), lower)
        self.zbt.write(bank, self.layout.result_address(base, 1), upper)
        self.zbt.count_pixel_op()
        self.words_written += 2
        self.bank_words[slot] += 2
        self._bank_pixel_index[slot] += 1
        self.pixels_written += 1
        return True
