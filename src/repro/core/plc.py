"""The Pixel Level Controller: the processor's controlpath.

Paper section 3.2/3.4: the PLC is composed of four modules --

* the **control FSM** "generates the set of instructions to be performed
  in every pixel-cycle" (here: the bundle of SCAN / LOAD-or-SHIFT / OP /
  STORE instructions);
* the **instructions FSM** "can request and lock the resources in the
  Process Unit and generate the signals that steer" them (here: executing
  each in-flight instruction against the datapath, claiming its resource);
* the **arbiter** "makes sure that the instructions in the different
  stages will not access the same resources" (here: a per-cycle claim
  table that raises on conflicts);
* the **startpipeline** "deals with the correct order of the execution of
  the instructions allowing us also to have instructions of different
  pixel-cycles in the different stages of the Process Unit" (here: the
  in-order four-slot pipeline with hazard stalls).

The image level controller can disable the PLC (section 3.3) when the IIM
has no data or the OIM has no space; the PLC then "will not proceed with
any more pixel-cycles until this signal is enabled again".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .instructions import InstructionKind
from .process_unit import PixelBundle, ProcessUnit, ResultPixel

#: Fast-path boundary classes (:meth:`PixelLevelController.fast_mode`).
PLC_DONE = "done"
PLC_FLOW = "flow"
PLC_FROZEN_IIM = "frozen_iim"
PLC_FROZEN_DISABLED = "frozen_disabled"
PLC_IRREGULAR = "irregular"


class ArbiterConflict(RuntimeError):
    """Two same-cycle instructions claimed one Process Unit resource."""


class Arbiter:
    """Per-cycle resource claim table for the Process Unit."""

    def __init__(self) -> None:
        self._claims: Dict[str, str] = {}
        self.total_claims = 0

    def begin_cycle(self) -> None:
        self._claims.clear()

    def claim(self, resource: str, owner: str) -> None:
        """Lock ``resource`` for ``owner`` this cycle; conflicts raise."""
        if resource in self._claims:
            raise ArbiterConflict(
                f"resource {resource!r} claimed by {owner} while held by "
                f"{self._claims[resource]}")
        self._claims[resource] = owner
        self.total_claims += 1


@dataclass
class _Stage1State:
    pixel_cycle: int
    position: Tuple[int, int]
    row_start: bool


@dataclass
class _Stage3State:
    bundle: PixelBundle
    cycles_remaining: int


@dataclass
class PlcStats:
    """Stall and progress accounting of one call."""

    cycles: int = 0
    active_cycles: int = 0
    issued_pixel_cycles: int = 0
    retired_pixel_cycles: int = 0
    stall_iim_wait: int = 0
    stall_oim_full: int = 0
    stall_op_busy: int = 0
    stall_disabled: int = 0
    loads: int = 0
    shifts: int = 0

    @property
    def total_stalls(self) -> int:
        return (self.stall_iim_wait + self.stall_oim_full
                + self.stall_op_busy + self.stall_disabled)


class PixelLevelController:
    """Drives the four-stage Process Unit, one clock per :meth:`tick`."""

    def __init__(self, process_unit: ProcessUnit) -> None:
        self.pu = process_unit
        self.arbiter = Arbiter()
        self.stats = PlcStats()
        #: Enable signal from the image level controller.
        self.enabled = True
        self._s1: Optional[_Stage1State] = None
        self._s2: Optional[_Stage1State] = None
        self._s3: Optional[_Stage3State] = None
        self._s4: Optional[ResultPixel] = None
        self._s4_is_reduce_retire = False
        self._issued = 0

    # -- status ---------------------------------------------------------------

    @property
    def done(self) -> bool:
        """All pixel-cycles issued and drained."""
        return (self.pu.scan.exhausted
                and self._s1 is None and self._s2 is None
                and self._s3 is None and self._s4 is None)

    def stage_occupancy(self) -> Tuple[bool, bool, bool, bool]:
        """Which of the four stages holds an in-flight pixel-cycle."""
        return (self._s1 is not None, self._s2 is not None,
                self._s3 is not None,
                self._s4 is not None or self._s4_is_reduce_retire)

    # -- batched (fast-path) behaviour ----------------------------------------

    @property
    def fast_flow_rate(self) -> int:
        """Pixel-cycles issued/fetched/retired per *engine cycle* (two
        ticks) in the steady FLOW regime: 2 for single-cycle operations,
        1 for two-cycle operations (the stage-3 countdown halves the
        throughput).  Only meaningful for ``engine_cycles <= 2``."""
        return 2 if self.pu.config.op.engine_cycles == 1 else 1

    def fast_mode(self) -> str:
        """Classify the pipeline state at an engine-cycle boundary.

        The fast path may batch-advance only the recognised steady
        signatures; anything else (warm-up, drain, mixed stalls, OIM
        back-pressure) returns :data:`PLC_IRREGULAR` and is simulated
        cycle by cycle.  The signatures below are exactly the states the
        per-cycle :meth:`tick` reproduces after each full engine cycle of
        the corresponding regime, hand-traced for ``engine_cycles`` 1 and
        2 -- which is what makes the batched counter updates exact.
        """
        if self.done:
            return PLC_DONE
        s1, s2, s3, s4 = self._s1, self._s2, self._s3, self._s4
        flag = self._s4_is_reduce_retire
        if (self.enabled and s1 is not None and s2 is not None
                and s3 is not None and s3.cycles_remaining == 1
                and s2.pixel_cycle == s1.pixel_cycle - 1
                and s3.bundle.pixel_cycle == s1.pixel_cycle - 2):
            cycles = self.pu.config.op.engine_cycles
            if cycles == 1:
                if self.pu.config.reduce_to_scalar:
                    if s4 is None and flag:
                        return PLC_FLOW
                elif s4 is not None and not flag \
                        and s4.pixel_cycle == s1.pixel_cycle - 3:
                    return PLC_FLOW
            elif cycles == 2 and s4 is None and not flag:
                return PLC_FLOW
        if s3 is None and s4 is None and not flag:
            if (s2 is not None and not self.pu.stage2_ready(s2.position)
                    and (s1 is not None or self.pu.scan.exhausted)):
                return PLC_FROZEN_IIM
            if (s1 is None and s2 is None and not self.enabled
                    and not self.pu.scan.exhausted):
                return PLC_FROZEN_DISABLED
        return PLC_IRREGULAR

    def fast_advance_frozen(self, cycles: int, mode: str,
                            ticks_per_cycle: int) -> None:
        """Account ``cycles`` engine cycles of a frozen regime.

        Frozen pipelines make no progress: every tick lands on the same
        stall counter (stage 2's IIM wait, or stage 1's disable stall),
        exactly as ``ticks_per_cycle`` calls to :meth:`tick` would.
        """
        ticks = cycles * ticks_per_cycle
        self.stats.cycles += ticks
        if mode == PLC_FROZEN_IIM:
            self.stats.stall_iim_wait += ticks
        elif mode == PLC_FROZEN_DISABLED:
            self.stats.stall_disabled += ticks
        else:
            raise ValueError(f"not a frozen mode: {mode}")

    # -- one clock ------------------------------------------------------------

    def tick(self) -> None:
        """Advance the pipeline one engine clock (stages drain back-first)."""
        self.arbiter.begin_cycle()
        self.stats.cycles += 1
        progressed = False

        # Stage 4: store the result pixel into the OIM.
        if self._s4_is_reduce_retire:
            self._s4_is_reduce_retire = False
            self.stats.retired_pixel_cycles += 1
            progressed = True
        elif self._s4 is not None:
            if self.pu.oim.full:
                self.stats.stall_oim_full += 1
            else:
                self.arbiter.claim("oim_port", f"STORE#{self._s4.pixel_cycle}")
                self.pu.stage4_store(self._s4)
                self._s4 = None
                self.stats.retired_pixel_cycles += 1
                progressed = True

        # Stage 3: execute the pixel operation (may take several cycles).
        if self._s3 is not None:
            state = self._s3
            if state.cycles_remaining > 1:
                state.cycles_remaining -= 1
                self.stats.stall_op_busy += 1
            elif self._s4 is None and not self._s4_is_reduce_retire:
                self.arbiter.claim("alu", f"OP#{state.bundle.pixel_cycle}")
                result = self.pu.stage3_execute(state.bundle)
                if result is None:
                    self._s4_is_reduce_retire = True
                else:
                    self._s4 = result
                self._s3 = None
                progressed = True

        # Stage 2: fetch the neighbourhood into the matrix register.
        if self._s2 is not None and self._s3 is None:
            pending = self._s2
            if not self.pu.stage2_ready(pending.position):
                self.stats.stall_iim_wait += 1
            else:
                kind = (InstructionKind.LOAD if pending.row_start
                        else InstructionKind.SHIFT)
                self.arbiter.claim("iim_port",
                                   f"{kind.name}#{pending.pixel_cycle}")
                bundle = self.pu.stage2_fetch(pending.pixel_cycle,
                                              pending.position,
                                              pending.row_start)
                if pending.row_start:
                    self.stats.loads += 1
                else:
                    self.stats.shifts += 1
                self._s3 = _Stage3State(
                    bundle=bundle,
                    cycles_remaining=self.pu.config.op.engine_cycles)
                self._s2 = None
                progressed = True

        # Stage 1 -> stage 2 handoff.
        if self._s1 is not None and self._s2 is None:
            self._s2 = self._s1
            self._s1 = None
            progressed = True

        # Stage 1: issue the next pixel-cycle (needs the enable signal).
        if self._s1 is None and not self.pu.scan.exhausted:
            if not self.enabled:
                self.stats.stall_disabled += 1
            else:
                self.arbiter.claim("position_counters",
                                   f"SCAN#{self._issued}")
                position, row_start = self.pu.scan.advance()
                self._s1 = _Stage1State(pixel_cycle=self._issued,
                                        position=position,
                                        row_start=row_start)
                self._issued += 1
                self.stats.issued_pixel_cycles += 1
                progressed = True

        if progressed:
            self.stats.active_cycles += 1
