"""The matrix register: stage 2's neighbourhood holding registers.

Paper section 3.5: *"In the matrix register is stored the whole
neighbourhood that will be input for the next stage.  These instructions
are divided into two sets: LOAD instructions and SHIFT instructions
depending on whether they fill the whole matrix from scratch or whether
they only add some pixels shifting the pixels that were already in the
matrix."*

The model stores full 64-bit pixels per neighbourhood offset and counts
LOAD vs SHIFT events plus how many pixels each fetched from the IIM --
the pixel-reuse evidence behind the memory architecture's Table 2 win.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..addresslib.addressing import Neighbourhood

#: A pixel as its two ZBT words: (lower, upper).
PixelWords = Tuple[int, int]


class MatrixRegister:
    """Neighbourhood registers, one pixel slot per offset."""

    def __init__(self, neighbourhood: Neighbourhood) -> None:
        self.neighbourhood = neighbourhood
        self._slots: Dict[Tuple[int, int], PixelWords] = {}
        self.load_count = 0
        self.shift_count = 0
        self.pixels_fetched = 0

    @property
    def size(self) -> int:
        return self.neighbourhood.size

    def load(self, values: Dict[Tuple[int, int], PixelWords]) -> None:
        """LOAD: fill the whole matrix from scratch (row starts, seeks)."""
        self._check_offsets(values)
        if len(values) != self.size:
            raise ValueError(
                f"LOAD must fill all {self.size} slots, got {len(values)}")
        self._slots = dict(values)
        self.load_count += 1
        self.pixels_fetched += len(values)

    def shift(self, step: Tuple[int, int],
              fresh: Dict[Tuple[int, int], PixelWords]) -> None:
        """SHIFT: slide the window by ``step``, adding only ``fresh`` pixels.

        Slots whose shifted source falls outside the window must be
        supplied in ``fresh``; everything else is reused in place.
        """
        self._check_offsets(fresh)
        moved: Dict[Tuple[int, int], PixelWords] = {}
        for offset in self.neighbourhood.offsets:
            source = (offset[0] + step[0], offset[1] + step[1])
            if source in self._slots and offset not in fresh:
                moved[offset] = self._slots[source]
        moved.update(fresh)
        missing = [off for off in self.neighbourhood.offsets
                   if off not in moved]
        if missing:
            raise ValueError(
                f"SHIFT by {step} leaves slots {missing} unfilled; "
                f"fresh pixels provided: {sorted(fresh)}")
        self._slots = moved
        self.shift_count += 1
        self.pixels_fetched += len(fresh)

    def value(self, offset: Tuple[int, int]) -> PixelWords:
        """The pixel currently held for ``offset``."""
        if offset not in self._slots:
            raise KeyError(f"matrix slot {offset} is empty")
        return self._slots[offset]

    def snapshot(self) -> Dict[Tuple[int, int], PixelWords]:
        """Copy of all filled slots (the bundle handed to stage 3)."""
        return dict(self._slots)

    @property
    def filled(self) -> bool:
        return len(self._slots) == self.size

    def _check_offsets(
            self, values: Dict[Tuple[int, int], PixelWords]) -> None:
        for offset in values:
            if offset not in self.neighbourhood.offsets:
                raise KeyError(
                    f"offset {offset} not part of neighbourhood "
                    f"{self.neighbourhood.name}")

    def reset(self) -> None:
        self._slots.clear()
        self.load_count = 0
        self.shift_count = 0
        self.pixels_fetched = 0
