"""The on-board ZBT SRAM: six independent 32-bit banks.

Paper section 3: the ADM XRC-II board carries *"a ZBT SRAM segmented
memory (6 Mbytes) made up of 6 independent banks with one write-read 32
bits long port each"*.  Pixels are 64 bits, so the engine stores the
lower (colour) and upper (meta) words *at the same address in two sibling
banks* -- any pixel is reachable in a single memory cycle.

The model tracks three metrics per run:

* ``word_accesses`` -- individual 32-bit port operations;
* ``access_cycles`` -- memory cycles, where simultaneous operations on
  *different* banks count once (this is the hardware column of Table 2's
  underlying cycle behaviour);
* ``pixel_ops`` -- pixel-granular access operations (one per pixel fetch
  or store, however many banks it touched) -- the metric Table 2 reports.

The ZBT SSRAM parts on the ADM XRC-II are rated well above the 66 MHz
design clock, so the model clocks the memory domain at twice the engine
clock: a bank port accepts up to **two** operations per engine cycle
(:data:`BANK_PORT_OPS_PER_CYCLE`).  Exceeding that raises, so scheduling
bugs surface in tests instead of silently over-pumping a port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..image.formats import ImageFormat

#: Number of independent ZBT banks on the ADM XRC-II board.
BANK_COUNT = 6

#: Words per bank: 6 MBytes total / 6 banks / 4 bytes.
BANK_WORDS = (6 * 1024 * 1024) // BANK_COUNT // 4

#: Bank pair holding input image 0 (lower word, upper word).
IMAGE0_BANKS = (0, 1)

#: Bank pair holding input image 1 in inter mode.
IMAGE1_BANKS = (2, 3)

#: Banks holding the result blocks (Res_block_A / Res_block_B).
RESULT_BANKS = (4, 5)

#: Port operations one bank accepts per engine cycle (the ZBT chips run
#: in a double-rate clock domain relative to the 66 MHz design clock).
BANK_PORT_OPS_PER_CYCLE = 2


class BankPortConflict(RuntimeError):
    """Two operations hit the same single-port bank in one cycle."""


@dataclass
class BankStats:
    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class ZBTMemory:
    """Six single-port 32-bit banks with cycle-conflict checking.

    Accesses are grouped per engine cycle: callers open a cycle with
    :meth:`begin_cycle` (the engine does this once per clock) and then
    issue reads/writes; two operations on the same bank inside one cycle
    raise :class:`BankPortConflict`.
    """

    def __init__(self) -> None:
        self._banks = [np.zeros(BANK_WORDS, dtype=np.uint32)
                       for _ in range(BANK_COUNT)]
        self.stats: List[BankStats] = [BankStats() for _ in range(BANK_COUNT)]
        self.word_accesses = 0
        self.access_cycles = 0
        self.pixel_ops = 0
        self._cycle_ops: Dict[int, int] = {}
        self._cycle_had_access = False

    # -- cycle bookkeeping ----------------------------------------------------

    def begin_cycle(self) -> None:
        """Start a new engine cycle (resets the per-cycle port budgets)."""
        self._cycle_ops = {}
        self._cycle_had_access = False

    def bank_free(self, bank: int, ops: int = 1) -> bool:
        """Whether ``bank`` still has capacity for ``ops`` operations this
        cycle.

        Components call this before issuing, implementing the priority
        arbitration between DMA and the transmission units (higher-priority
        components tick first each cycle and thereby win the port).
        """
        if not 0 <= bank < BANK_COUNT:
            raise IndexError(f"bank {bank} outside 0..{BANK_COUNT - 1}")
        return (self._cycle_ops.get(bank, 0) + ops
                <= BANK_PORT_OPS_PER_CYCLE)

    def banks_free(self, banks, ops: int = 1) -> bool:
        """Whether every bank of ``banks`` has capacity for ``ops`` more
        operations this cycle."""
        return all(self.bank_free(bank, ops) for bank in banks)

    def _touch(self, bank: int) -> None:
        if not 0 <= bank < BANK_COUNT:
            raise IndexError(f"bank {bank} outside 0..{BANK_COUNT - 1}")
        used = self._cycle_ops.get(bank, 0)
        if used >= BANK_PORT_OPS_PER_CYCLE:
            raise BankPortConflict(
                f"bank {bank} exceeded {BANK_PORT_OPS_PER_CYCLE} port "
                f"operations in one cycle")
        self._cycle_ops[bank] = used + 1
        self.word_accesses += 1
        if not self._cycle_had_access:
            self._cycle_had_access = True
            self.access_cycles += 1

    # -- word access ----------------------------------------------------------

    def read(self, bank: int, address: int) -> int:
        """Read one 32-bit word (one port operation this cycle)."""
        self._touch(bank)
        self.stats[bank].reads += 1
        return int(self._banks[bank][address])

    def write(self, bank: int, address: int, value: int) -> None:
        """Write one 32-bit word (one port operation this cycle)."""
        self._touch(bank)
        self.stats[bank].writes += 1
        self._banks[bank][address] = value & 0xFFFFFFFF

    def count_pixel_op(self) -> None:
        """Record one pixel-granular access operation (Table 2's metric)."""
        self.pixel_ops += 1

    # -- batched (fast-path) access -------------------------------------------

    def bulk_write(self, bank: int, start_address: int,
                   values: np.ndarray) -> None:
        """Write a contiguous run of words in one call (fast-path batch).

        Counts every word exactly like :meth:`write` but bypasses the
        per-cycle port budget: the fast-path stepper only issues bulk
        operations for windows whose schedulability it has already
        proven, so the per-cycle conflict check is vacuous there.
        """
        count = len(values)
        if count == 0:
            return
        self._banks[bank][start_address:start_address + count] = values
        self.stats[bank].writes += count
        self.word_accesses += count

    def bulk_read(self, bank: int, start_address: int,
                  count: int) -> np.ndarray:
        """Read a contiguous run of words in one call (fast-path batch).

        Counting mirrors :meth:`read`; see :meth:`bulk_write` for why the
        port budget does not apply.
        """
        if count:
            self.stats[bank].reads += count
            self.word_accesses += count
        return self._banks[bank][start_address:start_address + count]

    def count_accesses(self, bank: int, reads: int = 0,
                       writes: int = 0) -> None:
        """Account accesses whose data moved through a bulk side channel
        (e.g. the transmission units' frame-array fills)."""
        self.stats[bank].reads += reads
        self.stats[bank].writes += writes
        self.word_accesses += reads + writes

    def count_access_cycles(self, cycles: int) -> None:
        """Account ``cycles`` engine cycles that each performed at least
        one memory access (the fast path adds these per batched window)."""
        self.access_cycles += cycles

    def count_pixel_ops(self, count: int) -> None:
        """Batched form of :meth:`count_pixel_op`."""
        self.pixel_ops += count

    # -- uncounted debug access ----------------------------------------------

    def bulk_poke(self, bank: int, start_address: int,
                  values: np.ndarray) -> None:
        """Uncounted contiguous write, for resident-frame preloads."""
        self._banks[bank][start_address:start_address + len(values)] = values

    def peek(self, bank: int, address: int) -> int:
        """Uncounted word read, for assertions in tests."""
        return int(self._banks[bank][address])

    def poke(self, bank: int, address: int, value: int) -> None:
        """Uncounted word write, for test setup."""
        self._banks[bank][address] = value & 0xFFFFFFFF

    def reset_counters(self) -> None:
        self.word_accesses = 0
        self.access_cycles = 0
        self.pixel_ops = 0
        self.stats = [BankStats() for _ in range(BANK_COUNT)]


@dataclass(frozen=True)
class ZBTLayout:
    """Address map of one call (the Figure 3 memory distribution).

    Input pixels live split across a bank pair: the lower word of pixel
    ``(x, y)`` in the pair's first bank, the upper word at the same
    address of the second bank -- one pixel per memory cycle.

    * **Intra mode** (one input image): strips alternate between *block A*
      (bank pair 0/1) and *block B* (bank pair 2/3), so the DMA writing
      strip *n+1* never contends with the transmission unit reading strip
      *n* -- "the strip stored in block_A is processed while the next
      strip is transferred to block_B and vice versa".
    * **Inter mode** (two input images): image 0 owns pair 0/1, image 1
      owns pair 2/3; strip DMA jobs interleave the images, so while one
      image's strip streams in, the other image's transmission unit has
      its pair to itself.

    Results go to the result banks (Res_block_A = bank 4, Res_block_B =
    bank 5), the two words of a pixel stored consecutively in the *same*
    bank so the PC reads them back properly ordered; the bank switch
    happens exactly once, when readback becomes possible.
    """

    fmt: ImageFormat
    #: Number of input images (1 = intra layout, 2 = inter layout).
    images_in: int = 1

    def __post_init__(self) -> None:
        if self.images_in not in (1, 2):
            raise ValueError("layout supports one or two input images")

    @property
    def words_per_line(self) -> int:
        return self.fmt.width

    @property
    def strip_words(self) -> int:
        """Words per strip per bank (16 lines of one 32-bit word/pixel)."""
        from ..image.formats import STRIP_LINES
        return STRIP_LINES * self.fmt.width

    def input_banks(self, image: int, strip_index: int) -> Tuple[int, int]:
        """(lower, upper) banks holding ``strip_index`` of input ``image``."""
        if self.images_in == 1:
            if image != 0:
                raise IndexError("intra layout has a single input image")
            return IMAGE1_BANKS if strip_index % 2 else IMAGE0_BANKS
        if image == 0:
            return IMAGE0_BANKS
        if image == 1:
            return IMAGE1_BANKS
        raise IndexError(f"input image index {image} outside 0..1")

    def input_address(self, x: int, y: int) -> int:
        """Word address of input pixel ``(x, y)`` within its bank.

        Intra: strips of the same parity stack inside their block's bank
        pair.  Inter: the whole image lives linearly in its own pair.
        """
        if not self.fmt.contains(x, y):
            raise IndexError(f"({x}, {y}) outside {self.fmt.name}")
        from ..image.formats import STRIP_LINES
        if self.images_in == 2:
            return y * self.fmt.width + x
        strip_index = y // STRIP_LINES
        slot = strip_index // 2
        line_in_strip = y % STRIP_LINES
        return slot * self.strip_words + line_in_strip * self.fmt.width + x

    def result_bank(self, switch_done: bool) -> int:
        """The active result bank: Res_block_A before the single switch,
        Res_block_B afterwards."""
        return RESULT_BANKS[1] if switch_done else RESULT_BANKS[0]

    def result_address(self, pixel_index: int, word: int) -> int:
        """Word address of result pixel ``pixel_index``'s ``word`` (0=lower,
        1=upper): consecutive words of the same bank."""
        if word not in (0, 1):
            raise IndexError("word must be 0 (lower) or 1 (upper)")
        address = pixel_index * 2 + word
        if address >= BANK_WORDS:
            raise IndexError(
                f"result pixel {pixel_index} overflows a result bank")
        return address
