"""The v2 extension: segment addressing in hardware (paper section 5).

*"The next step will be to implement the segment addressing scheme on
the same FPGA board."*  The v1 prototype leaves segment addressing on
the host; this module models the announced v2 segment unit so the
extension's costs and benefits can be quantified.

Architecture of the modelled unit:

* the whole input frame must be resident in the ZBT before expansion
  starts (segment addressing is random-access, so strip streaming does
  not apply -- expansion order is data-dependent);
* a **work-queue FIFO** in BRAM holds pending pixels in geodesic order
  (BRAM-internal push/pop is free of ZBT cycles);
* a **label plane** lives in the pixels' upper words (the Aux field), so
  visited tests ride along with the neighbour fetch and label writes are
  one port operation;
* per processed pixel the unit pays: one queue pop, the parallel fetch
  of the centre (1 cycle, sibling banks), neighbour fetch+test cycles
  (the image pair's two ports serve two neighbour words per cycle), and
  one label write-back.

The model executes the expansion *exactly* (same geodesic semantics as
:class:`~repro.addresslib.segment.SegmentProcessor`, verified by tests)
while accounting hardware cycles per event, and a closed-form timing is
provided for call-level planning.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

from ..image.formats import ImageFormat
from ..image.frame import Frame
from .pci import DEFAULT_JOB_OVERHEAD_CYCLES, PCI_CLOCK_HZ

#: Neighbour offsets of the hardware unit (4-connectivity, fixed in v2).
V2_CONNECTIVITY = ((0, -1), (-1, 0), (1, 0), (0, 1))

#: Work-queue capacity in pixels (one BRAM pair holds 2k entries of
#: packed 11+11-bit coordinates).
QUEUE_CAPACITY = 2048


@dataclass(frozen=True)
class SegmentCallConfig:
    """One v2 segment-addressing call.

    The hardware criterion is the paper's canonical homogeneity check:
    join when |Y(neighbour) - Y(tested-from)| <= ``luma_delta``.
    """

    fmt: ImageFormat
    luma_delta: int
    #: Keep the frame resident from a previous call (skips the input DMA
    #: -- the chaining optimisation the on-board memory enables).
    frame_resident: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.luma_delta <= 255:
            raise ValueError("luma_delta must be an 8-bit threshold")


@dataclass
class SegmentRunResult:
    """Outcome and accounting of one v2 segment call."""

    labels: np.ndarray
    distance: np.ndarray
    pixels_processed: int
    neighbour_tests: int
    queue_peak: int
    #: Engine cycles by phase.
    input_cycles: int
    expansion_cycles: int
    readback_cycles: int
    overhead_cycles: int

    @property
    def total_cycles(self) -> int:
        return (self.input_cycles + self.expansion_cycles
                + self.readback_cycles + self.overhead_cycles)

    def seconds(self, clock_hz: float = PCI_CLOCK_HZ) -> float:
        return self.total_cycles / clock_hz

    @property
    def cycles_per_processed_pixel(self) -> float:
        if self.pixels_processed == 0:
            return 0.0
        return self.expansion_cycles / self.pixels_processed


class QueueOverflow(RuntimeError):
    """The expansion front exceeded the work-queue FIFO's capacity.

    The hardware queue is a fixed BRAM; a front wider than
    :data:`QUEUE_CAPACITY` pixels would deadlock the unit.  Fronts scale
    with the frame perimeter (a whole-CIF flood peaks well under 1k), so
    the limit only bites on pathological criteria.
    """


class SegmentUnit:
    """The modelled v2 hardware segment-addressing unit."""

    def __init__(self, clock_hz: float = PCI_CLOCK_HZ,
                 dma_overhead_cycles: int = DEFAULT_JOB_OVERHEAD_CYCLES,
                 queue_capacity: int = QUEUE_CAPACITY) -> None:
        self.clock_hz = clock_hz
        self.dma_overhead_cycles = dma_overhead_cycles
        self.queue_capacity = queue_capacity

    # -- per-event hardware costs (cycles) ----------------------------------

    @staticmethod
    def _expansion_cost(neighbour_count: int) -> int:
        """Cycles of one pixel-cycle of the expansion.

        1 pop+centre fetch (queue is BRAM-parallel; centre words arrive
        from the sibling banks together), then the neighbour words at two
        per cycle through the image pair's two ports, then 1 label
        write-back.
        """
        neighbour_cycles = -(-neighbour_count // 2)
        return 1 + neighbour_cycles + 1

    def run_call(self, config: SegmentCallConfig, frame: Frame,
                 seeds: Sequence[Tuple[int, int]],
                 max_pixels: Optional[int] = None) -> SegmentRunResult:
        """Execute one segment call with exact expansion semantics."""
        fmt = config.fmt
        if frame.format.width != fmt.width or \
                frame.format.height != fmt.height:
            raise ValueError(
                f"frame {frame.format.name} does not match {fmt.name}")
        height, width = fmt.height, fmt.width
        luma = frame.y
        labels = np.full((height, width), -1, dtype=np.int32)
        distance = np.full((height, width), -1, dtype=np.int32)

        queue: Deque[Tuple[int, int]] = deque()
        for segment_id, (sx, sy) in enumerate(seeds):
            if not fmt.contains(sx, sy):
                raise ValueError(f"seed ({sx}, {sy}) outside frame")
            if labels[sy, sx] != -1:
                continue
            labels[sy, sx] = segment_id
            distance[sy, sx] = 0
            queue.append((sx, sy))

        expansion_cycles = 0
        neighbour_tests = 0
        processed = 0
        queue_peak = len(queue)

        while queue:
            if max_pixels is not None and processed >= max_pixels:
                break
            x, y = queue.popleft()
            processed += 1
            segment_id = int(labels[y, x])
            centre = int(luma[y, x])
            in_frame = []
            for dx, dy in V2_CONNECTIVITY:
                nx, ny = x + dx, y + dy
                if 0 <= nx < width and 0 <= ny < height:
                    in_frame.append((nx, ny))
            expansion_cycles += self._expansion_cost(len(in_frame))
            neighbour_tests += len(in_frame)
            for nx, ny in in_frame:
                if labels[ny, nx] != -1:
                    continue
                if abs(int(luma[ny, nx]) - centre) > config.luma_delta:
                    continue
                labels[ny, nx] = segment_id
                distance[ny, nx] = distance[y, x] + 1
                queue.append((nx, ny))
            if len(queue) > self.queue_capacity:
                raise QueueOverflow(
                    f"expansion front of {len(queue)} pixels exceeds the "
                    f"work queue's {self.queue_capacity} entries")
            queue_peak = max(queue_peak, len(queue))

        pixels = fmt.pixels
        input_cycles = 0 if config.frame_resident else 2 * pixels
        # Labels live in the upper words: one word per pixel back.
        readback_cycles = pixels
        jobs = (0 if config.frame_resident else fmt.strips) + 1
        overhead = jobs * self.dma_overhead_cycles
        # Seeds arrive as one word each ahead of the expansion.
        overhead += len(seeds)

        return SegmentRunResult(
            labels=labels, distance=distance,
            pixels_processed=processed,
            neighbour_tests=neighbour_tests, queue_peak=queue_peak,
            input_cycles=input_cycles,
            expansion_cycles=expansion_cycles,
            readback_cycles=readback_cycles,
            overhead_cycles=overhead)

    # -- closed-form planning -------------------------------------------------

    def call_cycles_estimate(self, config: SegmentCallConfig,
                             expected_pixels: int) -> int:
        """Closed-form call cycles for ``expected_pixels`` of expansion
        (interior pixels: 4 neighbours -> 4 cycles each)."""
        input_cycles = 0 if config.frame_resident else 2 * config.fmt.pixels
        jobs = (0 if config.frame_resident else config.fmt.strips) + 1
        return (input_cycles + 4 * expected_pixels + config.fmt.pixels
                + jobs * self.dma_overhead_cycles)


def v2_module_additions():
    """Extra blocks of the v2 design, for the resource outlook.

    The v1 report leaves 67 BRAMs free ("there is enough free memory for
    a possible extension of the design with other addressing schemes");
    the segment unit needs a handful: the work-queue FIFO pair, a seed
    buffer, and the criteria/address-generation logic.
    """
    from .resources import ModuleEstimate, ResourceEstimate
    return [
        ModuleEstimate("seg_work_queue", ResourceEstimate(
            slices=30, flip_flops=14, luts=20, brams=2)),
        ModuleEstimate("seg_seed_buffer", ResourceEstimate(
            slices=12, flip_flops=6, luts=8, brams=1)),
        ModuleEstimate("seg_address_generator", ResourceEstimate(
            slices=46, flip_flops=18, luts=30)),
        ModuleEstimate("seg_criteria_unit", ResourceEstimate(
            slices=24, flip_flops=8, luts=16)),
        ModuleEstimate("seg_label_writeback", ResourceEstimate(
            slices=18, flip_flops=8, luts=12)),
    ]
