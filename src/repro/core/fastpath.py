"""Batched fast-path stepper for the AddressEngine cycle model.

The per-cycle loop in :mod:`repro.core.engine` pays one Python iteration
per 66 MHz bus cycle, which makes full-length sequences impractically
slow.  This module exploits the property that makes a closed-form skip
safe: the engine's *control* trajectory is data-independent.  Pixel
values never influence an arbitration decision -- only counters do (DMA
word counts, strip arrivals, FIFO occupancies, the scan position).  So
between two control events every component advances uniformly, and a run
of ``n`` cycles can be applied as one closed-form counter update plus one
vectorized data movement.

The stepper alternates two moves:

* **batched window** -- ask every component for its event horizon ("how
  many cycles until your behaviour can change?"), take the minimum, and
  advance all components by that many cycles at once;
* **bridge cycle** -- when any component is within :data:`MIN_BATCH`
  cycles of an event (a strip arrival, a stall boundary, a pipeline
  warm-up, the last word of a DMA job), run one real engine cycle through
  the exact per-cycle code so interrupts, callbacks and arbitration
  decisions execute unchanged.

Because every window is cut *before* the next arbitration decision and
bridges run the real code, the fast path is cycle-exact: completion
cycles, every stall counter, per-bank ZBT access counts and the data
itself are identical to the per-cycle loop (enforced by the property
harness in ``tests/integration/test_fastpath_equivalence.py``).

Regimes the planner refuses to batch fall back to per-cycle stepping
automatically (every ``0`` horizon is a bridge): pipeline warm-up and
drain, operations with stage-3 latency above two cycles, single-strip
frames, the readback-chases-producer port contention on the result bank,
and the OIM-full throttle.  See ``docs/MODEL.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..addresslib.addressing import AddressingMode
from ..addresslib.executor import VectorExecutor, channels_of
from ..image.frame import Frame
from .config import EngineConfig
from .errors import EngineDeadlock, deadlock_message
from .iim import InputIntermediateMemory
from .image_controller import ImageLevelController
from .oim import OutputIntermediateMemory
from .pci import PCIBus
from .plc import (PLC_FLOW, PLC_FROZEN_DISABLED, PLC_FROZEN_IIM,
                  PLC_IRREGULAR, PixelLevelController, _Stage1State,
                  _Stage3State)
from .process_unit import PixelBundle, ProcessUnit, ResultPixel, _extract
from .txu import (TXU_FIFO_FULL, TXU_MOVING, TXU_NO_STRIP,
                  InputTransmissionUnit, OutputTransmissionUnit)
from .zbt import ZBTMemory

__all__ = ["EngineDeadlock", "FastStepper", "deadlock_message",
           "tick_engine_cycle"]

_INF = 1 << 60


def tick_engine_cycle(cycle: int, zbt: ZBTMemory, pci: PCIBus,
                      input_txus: List[InputTransmissionUnit],
                      ilc: ImageLevelController,
                      plc: PixelLevelController,
                      output_txu: Optional[OutputTransmissionUnit],
                      plc_ticks_per_cycle: int,
                      input_txu_ticks_per_cycle: int) -> None:
    """One real engine cycle -- the single source of truth for per-cycle
    order, shared by the per-cycle loop and the fast path's bridges."""
    zbt.begin_cycle()
    pci.tick(cycle)
    for _ in range(input_txu_ticks_per_cycle):
        for txu in input_txus:
            txu.tick()
    ilc.control(cycle)
    for _ in range(plc_ticks_per_cycle):
        if not plc.done:
            plc.tick()
    if output_txu is not None:
        output_txu.tick()


class FastStepper:
    """Strip-level batched stepper over one call's component set.

    Precomputes the functional result once (the vector executor is the
    same golden model the tests check against), then advances the
    components in uniform windows, bridging every arbitration boundary
    through :func:`tick_engine_cycle`.
    """

    #: Windows shorter than this are simulated per-cycle instead: below
    #: a few cycles the planning overhead exceeds the batching gain.
    MIN_BATCH = 4

    def __init__(self, config: EngineConfig, frames: List[Frame],
                 zbt: ZBTMemory, pci: PCIBus,
                 iim: InputIntermediateMemory,
                 oim: OutputIntermediateMemory, pu: ProcessUnit,
                 plc: PixelLevelController,
                 input_txus: List[InputTransmissionUnit],
                 output_txu: Optional[OutputTransmissionUnit],
                 ilc: ImageLevelController,
                 plc_ticks_per_cycle: int,
                 input_txu_ticks_per_cycle: int) -> None:
        self.config = config
        self.zbt = zbt
        self.pci = pci
        self.iim = iim
        self.oim = oim
        self.pu = pu
        self.plc = plc
        self.input_txus = input_txus
        self.output_txu = output_txu
        self.ilc = ilc
        self.plc_ticks_per_cycle = plc_ticks_per_cycle
        self.input_txu_ticks_per_cycle = input_txu_ticks_per_cycle

        fmt = config.fmt
        self.W = fmt.width
        self.H = fmt.height
        self.P = fmt.pixels
        self.words = ilc.input_words
        self.u = plc.fast_flow_rate
        self.produce = config.produces_image
        self.intra = config.mode is AddressingMode.INTRA
        self.channels = channels_of(config.channels)
        if self.intra:
            neighbourhood = config.op.neighbourhood
            self.offsets = neighbourhood.offsets
            self.fresh = neighbourhood.fresh_offsets(config.scan)
            _, self.min_dy, _, self.max_dy = neighbourhood.bounding_box()
        else:
            self.offsets = ((0, 0),)
            self.fresh = ((0, 0),)
            self.min_dy = 0
            self.max_dy = 0
        self._precompute_result(frames)
        # Per-window plans (set by _plan_window, consumed by _advance).
        self._pci_mode = "idle"
        self._plc_mode = PLC_IRREGULAR
        self._txu_plans: List[Tuple[str, int]] = []
        self._out_mode = "none"

    # -- precomputation -------------------------------------------------------

    def _precompute_result(self, frames: List[Frame]) -> None:
        """The result stream is data, not control: compute it once with
        the vectorized golden model, then feed the per-window batches
        (OIM pushes, result-bank writes, the reduce accumulator) from it.
        """
        config = self.config
        if config.reduce_to_scalar:
            contribution = np.zeros((self.H, self.W), dtype=np.int64)
            for channel in self.channels:
                values = config.op.apply_vector(frames[0].plane(channel),
                                                frames[1].plane(channel))
                contribution += values.astype(np.int64)
            self.reduce_cum = np.concatenate(
                (np.zeros(1, dtype=np.int64),
                 np.cumsum(contribution.reshape(-1))))
            self.res_lower = self.res_upper = None
            self.oim_pixels: Optional[List[Tuple[int, int, int]]] = None
            return
        if config.mode is AddressingMode.INTER:
            result = VectorExecutor.inter(config.op, frames[0], frames[1],
                                          config.channels)
        else:
            result = VectorExecutor.intra(config.op, frames[0],
                                          config.channels)
        lower2d, upper2d = result.to_words()
        self.res_lower = lower2d.reshape(-1)
        self.res_upper = upper2d.reshape(-1)
        self.oim_pixels = list(zip(range(self.P), self.res_lower.tolist(),
                                   self.res_upper.tolist()))
        self.reduce_cum = None

    # -- main loop ------------------------------------------------------------

    def run(self, max_cycles: int) -> int:
        """Advance until the call completes; returns the elapsed cycles
        (identical to the per-cycle loop's count)."""
        ilc = self.ilc
        cycle = 0
        while ilc.completion_cycle is None:
            if cycle >= max_cycles:
                raise EngineDeadlock(deadlock_message(
                    max_cycles, self.config, ilc, self.plc, self.pci,
                    self.input_txus))
            window = self._plan_window(max_cycles - cycle)
            if window >= self.MIN_BATCH:
                self._advance(window)
                cycle += window
            else:
                tick_engine_cycle(cycle, self.zbt, self.pci,
                                  self.input_txus, ilc, self.plc,
                                  self.output_txu, self.plc_ticks_per_cycle,
                                  self.input_txu_ticks_per_cycle)
                cycle += 1
        return cycle

    # -- window planning ------------------------------------------------------

    def _plan_window(self, budget: int) -> int:
        """Joint event horizon: the largest ``n`` for which every
        component provably repeats this cycle's behaviour ``n`` times.
        Returns 0 to request a bridge cycle."""
        ilc, plc, pci = self.ilc, self.plc, self.pci
        # ILC control events run only in bridge cycles: readback start
        # and the completion interrupt must go through real control.
        if ilc.input_complete and not ilc.readback_started:
            return 0
        # A disable without a sustaining cause (the transient OIM-full
        # throttle) is re-evaluated by control every cycle.
        if not plc.enabled and not (self.config.requires_full_frames
                                    and not ilc.input_complete):
            return 0
        caps = [budget]

        job = pci.activate_next_job()
        if job is None:
            self._pci_mode = "idle"
        elif job.overhead_remaining > 0:
            self._pci_mode = "overhead"
            caps.append(job.overhead_remaining)
        elif job.to_board:
            self._pci_mode = "words"
            horizon = job.total_words - job.words_done - 1
            if horizon <= 0:
                return 0
            caps.append(horizon)
        else:
            state, horizon = ilc.fast_readback_horizon()
            if state == "bridge":
                return 0
            self._pci_mode = "readback_" + state
            caps.append(horizon)
        input_dma_banks = job.banks if self._pci_mode == "words" else None

        self._txu_plans = []
        for txu in self.input_txus:
            contended = (input_dma_banks is not None and not txu.done
                         and input_dma_banks == txu.current_banks)
            state, horizon, rate = txu.fast_plan(contended)
            if state == TXU_MOVING and horizon <= 0:
                return 0
            self._txu_plans.append((state, rate))
            caps.append(horizon)

        mode = plc.fast_mode()
        self._plc_mode = mode
        if mode == PLC_IRREGULAR:
            return 0
        if mode == PLC_FLOW:
            horizon = self._plan_flow()
            if horizon <= 0:
                return 0
            caps.append(horizon)
        elif mode == PLC_FROZEN_IIM:
            horizon = self._plan_frozen_iim()
            if horizon <= 0:
                return 0
            caps.append(horizon)
        # PLC_DONE / PLC_FROZEN_DISABLED impose no PLC-side bound: the
        # events that end them (input completion, scan restart) are
        # bridged via other horizons.

        output_txu = self.output_txu
        if output_txu is None:
            self._out_mode = "none"
        else:
            pushes = self.u if (mode == PLC_FLOW and self.produce) else 0
            occupancy = self.oim.occupancy
            if occupancy == 0 and pushes == 0:
                self._out_mode = "empty"
            else:
                self._out_mode = "drain"
                if pushes == 0:
                    # Pure drain: one pop per cycle until the OIM dries.
                    caps.append(occupancy)

        window = min(caps)
        return window if window >= self.MIN_BATCH else 0

    def _plan_flow(self) -> int:
        """Horizon of the PLC's steady FLOW: bounded by the scan, by the
        lines currently resident in the IIM (no credit for lines arriving
        mid-window -- conservative keeps it exact), by the next
        line-releasing row-start fetch when a FIFO is full, and by the
        OIM headroom."""
        plc = self.plc
        u, W = self.u, self.W
        i1 = plc._s1.pixel_cycle
        f0 = i1 - 1  # next pixel-cycle stage 2 fetches
        caps = [(self.P - 1 - i1) // u]
        row = f0 // W
        if self.intra:
            resident = self.iim.fifo(0).resident_range()
            if resident is None:
                return 0
            low, high = resident
            if max(row + self.min_dy, 0) < low:
                return 0
            if high >= self.H - 1:
                y_max = self.H - 1
            else:
                y_max = min(self.H - 1, high - self.max_dy)
        else:
            y_max = self.H - 1
            for fifo in self.iim.fifos:
                resident = fifo.resident_range()
                if resident is None:
                    return 0
                low, high = resident
                if row < low:
                    return 0
                y_max = min(y_max, high)
        fetchable = (y_max + 1) * W - f0
        if fetchable < u:
            return 0
        caps.append(fetchable // u)
        if any(state == TXU_FIFO_FULL for state, _ in self._txu_plans):
            # A row-start fetch releases IIM lines and would unfreeze the
            # stalled transmission unit mid-window; stop short of it.
            if f0 % W == 0:
                return 0
            caps.append(((row + 1) * W - f0) // u)
        if self.produce:
            headroom = self.oim.capacity_pixels - self.oim.occupancy
            if u > 1:
                # Intra-cycle peak: occ + u + (n-1)(u-1) must stay within
                # capacity (pushes land before the same cycle's pop).
                caps.append((headroom - u) // (u - 1) + 1)
            elif headroom < 1:
                return 0
        return min(caps)

    def _plan_frozen_iim(self) -> int:
        """Horizon of a stage-2 data stall: one cycle short of the moment
        the co-flowing transmission unit completes the awaited line."""
        stalled = self.plc._s2
        assert stalled is not None
        y = stalled.position[1]
        ready_in = 0
        if self.intra:
            needed = min(y + self.max_dy, self.H - 1)
            ready_in = self._fifo_ready_cycles(0, needed)
        else:
            for image in range(len(self.input_txus)):
                ready_in = max(ready_in, self._fifo_ready_cycles(image, y))
        if ready_in <= 0:
            return 0
        return ready_in - 1 if ready_in < _INF else _INF

    def _fifo_ready_cycles(self, image: int, needed_line: int) -> int:
        fifo = self.iim.fifo(image)
        resident = fifo.resident_range()
        if resident is not None and resident[1] >= needed_line:
            return 0  # already resident: the stall must end next cycle
        state, rate = self._txu_plans[image]
        if state != TXU_MOVING:
            # The unit is stalled too; whatever unfreezes it (a strip
            # arrival) is a bridged event, so no bound from here.
            return _INF
        pixels = self.input_txus[image].pixels_until_line_complete(
            needed_line)
        if pixels <= 0:
            return 0
        return -(-pixels // rate)

    # -- window application ---------------------------------------------------

    def _advance(self, cycles: int) -> None:
        """Apply one planned window: every component advances ``cycles``
        cycles of its planned uniform behaviour in one batch."""
        had_access = False
        pci_mode = self._pci_mode
        if pci_mode == "idle":
            self.pci.fast_advance_idle(cycles)
        elif pci_mode == "overhead":
            self.pci.fast_advance_overhead(cycles)
        elif pci_mode in ("words", "readback_words"):
            self.pci.fast_advance_words(cycles)
            had_access = True
        else:  # readback_stalled: the scalar result is not retired yet
            self.pci.fast_advance_stalled(cycles)

        for txu, (state, rate) in zip(self.input_txus, self._txu_plans):
            if state == TXU_MOVING:
                lower, upper = self.words[txu.image]
                txu.fast_advance_moving(cycles, rate, lower, upper)
                had_access = True
            elif state in (TXU_NO_STRIP, TXU_FIFO_FULL):
                txu.fast_advance_stalled(cycles, state,
                                         self.input_txu_ticks_per_cycle)

        if self._plc_mode == PLC_FLOW:
            self._advance_flow(cycles)
        elif self._plc_mode in (PLC_FROZEN_IIM, PLC_FROZEN_DISABLED):
            self.plc.fast_advance_frozen(cycles, self._plc_mode,
                                         self.plc_ticks_per_cycle)

        if self._out_mode == "drain":
            self.output_txu.fast_advance_draining(cycles, self.res_lower,
                                                  self.res_upper)
            had_access = True
        elif self._out_mode == "empty":
            self.output_txu.fast_advance_empty(cycles)

        if had_access:
            self.zbt.count_access_cycles(cycles)

    def _advance_flow(self, cycles: int) -> None:
        """``cycles`` engine cycles of steady FLOW in closed form.

        Per cycle the pipeline issues/fetches/executes/retires ``u``
        pixel-cycles (2 for one-cycle ops, 1 for two-cycle ops), so the
        window moves ``k = u * cycles`` consecutive pixel-cycles through
        every stage; the stage registers are re-materialized at the
        window's final positions.
        """
        plc, pu = self.plc, self.pu
        u, W = self.u, self.W
        i1 = plc._s1.pixel_cycle
        k = u * cycles
        f0 = i1 - 1
        f_end = f0 + k
        stats = plc.stats
        ticks = cycles * self.plc_ticks_per_cycle
        stats.cycles += ticks
        stats.active_cycles += ticks
        stats.issued_pixel_cycles += k
        stats.retired_pixel_cycles += k
        if u == 1:
            # Two-cycle ops burn one tick per cycle in the stage-3
            # countdown.
            stats.stall_op_busy += cycles
        rows_started = (f_end - 1) // W - (f0 - 1) // W
        stats.loads += rows_started
        stats.shifts += k - rows_started
        matrix = pu.matrix
        matrix.load_count += rows_started
        matrix.shift_count += k - rows_started
        matrix.pixels_fetched += (rows_started * len(self.offsets)
                                  + (k - rows_started) * len(self.fresh))
        pu.ops_executed += k
        if self.produce:
            pu.results_stored += k
            first_retired = i1 - 3 if u == 2 else i1 - 2
            peak = self.oim.occupancy + u + (u - 1) * (cycles - 1)
            self.oim.fast_push(
                self.oim_pixels[first_retired:first_retired + k], peak)
        else:
            e0 = i1 - 2
            pu.reduce_accumulator += int(self.reduce_cum[e0 + k]
                                         - self.reduce_cum[e0])
        last_row = (f_end - 1) // W
        if last_row * W >= f0:
            # At least one row-start fetch happened: retire the lines the
            # scan can no longer touch (cumulative, so one call covers
            # every row start crossed in-window).
            if self.intra:
                last_dead = last_row + self.min_dy - 1
            else:
                last_dead = last_row - 1
            if last_dead >= 0:
                for fifo in self.iim.fifos:
                    fifo.release_through(last_dead)
        pu.scan._index = i1 + k + 1
        plc._issued = i1 + k + 1
        self._materialize_stages(i1 + k)

    def _materialize_stages(self, issue_head: int) -> None:
        """Rebuild the PLC stage registers exactly as ``k`` per-cycle
        steps would have left them, so the next bridge cycle runs real
        code from a truthful state."""
        plc = self.plc
        W = self.W
        plc._s1 = self._stage1_state(issue_head)
        plc._s2 = self._stage1_state(issue_head - 1)
        bundle, slots = self._make_bundle(issue_head - 2)
        plc._s3 = _Stage3State(bundle=bundle, cycles_remaining=1)
        self.pu.matrix._slots = slots
        if self.u == 2 and self.produce:
            index = issue_head - 3
            plc._s4 = ResultPixel(pixel_cycle=index,
                                  position=(index % W, index // W),
                                  lower=int(self.res_lower[index]),
                                  upper=int(self.res_upper[index]))
            plc._s4_is_reduce_retire = False
        elif self.u == 2:
            plc._s4 = None
            plc._s4_is_reduce_retire = True
        else:
            plc._s4 = None
            plc._s4_is_reduce_retire = False

    def _stage1_state(self, index: int) -> _Stage1State:
        x, y = index % self.W, index // self.W
        return _Stage1State(pixel_cycle=index, position=(x, y),
                            row_start=(x == 0))

    def _make_bundle(self, index: int
                     ) -> Tuple[PixelBundle,
                                Dict[Tuple[int, int], Tuple[int, int]]]:
        """The stage-2 output for pixel-cycle ``index``, built from the
        input word planes (the same values the IIM holds), plus the
        matrix-register slots at that scan position."""
        W, H = self.W, self.H
        x, y = index % W, index // W
        lower0, upper0 = self.words[0]
        if self.intra:
            slots = {}
            for offset in self.offsets:
                cx = min(max(x + offset[0], 0), W - 1)
                cy = min(max(y + offset[1], 0), H - 1)
                slots[offset] = (int(lower0[cy, cx]), int(upper0[cy, cx]))
            values = {channel: [_extract(slots[offset], channel)
                                for offset in self.offsets]
                      for channel in self.channels}
            bundle = PixelBundle(pixel_cycle=index, position=(x, y),
                                 center_words=slots[(0, 0)], values=values)
            return bundle, slots
        lower1, upper1 = self.words[1]
        words_a = (int(lower0[y, x]), int(upper0[y, x]))
        words_b = (int(lower1[y, x]), int(upper1[y, x]))
        values = {channel: [_extract(words_a, channel)]
                  for channel in self.channels}
        inter_b = {channel: _extract(words_b, channel)
                   for channel in self.channels}
        bundle = PixelBundle(pixel_cycle=index, position=(x, y),
                             center_words=words_a, values=values,
                             inter_b=inter_b)
        return bundle, {(0, 0): words_a}
