"""The Process Unit: the four-stage datapath (paper section 3.5).

* **Stage 1** scans the image: the position counters compute the centre
  of the next pixel-cycle's neighbourhood.
* **Stage 2** fetches data from the IIM into the matrix register, via
  LOAD (whole matrix) or SHIFT (fresh pixels only) instructions.
* **Stage 3** executes the pixel operation on the neighbourhood
  (gradient, histogram, filters, ...).
* **Stage 4** stores the result pixel into the OIM.

The :class:`ProcessUnit` is the datapath only: each ``stage*`` method is
one instruction's worth of work, invoked by the pixel level controller
(:mod:`repro.core.plc`), which owns sequencing, hazards and stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..addresslib.addressing import AddressingMode, ScanOrder
from ..addresslib.executor import channels_of
from ..image.pixel import Channel
from .config import EngineConfig
from .iim import InputIntermediateMemory
from .matrix_register import MatrixRegister, PixelWords
from .oim import OutputIntermediateMemory

#: Bit layout of the colour channels inside the lower ZBT word.
_CHANNEL_SHIFT = {Channel.Y: 0, Channel.U: 8, Channel.V: 16}


def _extract(words: PixelWords, channel: Channel) -> int:
    lower, upper = words
    if channel in _CHANNEL_SHIFT:
        return (lower >> _CHANNEL_SHIFT[channel]) & 0xFF
    if channel is Channel.ALFA:
        return upper & 0xFFFF
    return (upper >> 16) & 0xFFFF


def _insert(lower: int, channel: Channel, value: int) -> int:
    shift = _CHANNEL_SHIFT[channel]
    return (lower & ~(0xFF << shift)) | ((value & 0xFF) << shift)


@dataclass
class PixelBundle:
    """Stage 2's output: everything stage 3 needs for one pixel-cycle."""

    pixel_cycle: int
    position: Tuple[int, int]
    #: Centre pixel of the (first) input image, for channel pass-through.
    center_words: PixelWords
    #: Intra: neighbourhood values per channel, in offset order.
    values: Dict[Channel, List[int]] = field(default_factory=dict)
    #: Inter: the second image's centre-pixel channel values.
    inter_b: Optional[Dict[Channel, int]] = None


@dataclass
class ResultPixel:
    """Stage 3's output: the packed result pixel."""

    pixel_cycle: int
    position: Tuple[int, int]
    lower: int
    upper: int


class ScanCounters:
    """Stage 1's position counters: the raster scan over the frame."""

    def __init__(self, config: EngineConfig) -> None:
        self._config = config
        self._fmt = config.fmt
        self._scan = config.scan
        self._index = 0

    @property
    def total_pixels(self) -> int:
        return self._fmt.pixels

    @property
    def exhausted(self) -> bool:
        return self._index >= self.total_pixels

    def advance(self) -> Tuple[Tuple[int, int], bool]:
        """Produce the next ``(position, row_start)``; one SCAN instruction."""
        if self.exhausted:
            raise RuntimeError("scan already exhausted")
        if self._scan is ScanOrder.HORIZONTAL:
            y, x = divmod(self._index, self._fmt.width)
            row_start = x == 0
        else:
            x, y = divmod(self._index, self._fmt.height)
            row_start = y == 0
        self._index += 1
        return (x, y), row_start


class ProcessUnit:
    """The datapath: scan counters, matrix register(s), ALU, store port."""

    def __init__(self, config: EngineConfig,
                 iim: InputIntermediateMemory,
                 oim: OutputIntermediateMemory) -> None:
        self.config = config
        self.iim = iim
        self.oim = oim
        self.scan = ScanCounters(config)
        if config.mode is AddressingMode.INTRA:
            self.matrix = MatrixRegister(config.op.neighbourhood)
        else:
            # Inter mode consumes one pixel per image per pixel-cycle;
            # model it as a single-slot matrix for the first image.
            from ..addresslib.addressing import CON_0
            self.matrix = MatrixRegister(CON_0)
        self.ops_executed = 0
        self.results_stored = 0
        #: Scalar accumulator for reduce calls (SAD register).
        self.reduce_accumulator = 0
        self._channels = channels_of(config.channels)

    # -- stage 2 helpers ------------------------------------------------------

    def _clamped_line(self, y: int, dy: int) -> int:
        return min(max(y + dy, 0), self.config.fmt.height - 1)

    def _clamped_column(self, x: int, dx: int) -> int:
        return min(max(x + dx, 0), self.config.fmt.width - 1)

    def stage2_ready(self, position: Tuple[int, int]) -> bool:
        """Whether the IIM holds every line this pixel-cycle needs.

        When it does not, the image level controller keeps the PLC halted
        -- the FULL/EMPTY handshake of section 3.3.
        """
        x, y = position
        del x
        if self.config.mode is AddressingMode.INTER:
            return all(fifo.lines_resident(y, y) for fifo in self.iim.fifos)
        min_dx, min_dy, max_dx, max_dy = \
            self.config.op.neighbourhood.bounding_box()
        del min_dx, max_dx
        first = self._clamped_line(y, min_dy)
        last = self._clamped_line(y, max_dy)
        return self.iim.fifo(0).lines_resident(first, last)

    def stage2_fetch(self, pixel_cycle: int, position: Tuple[int, int],
                     row_start: bool) -> PixelBundle:
        """Execute the LOAD or SHIFT instruction: IIM -> matrix register.

        All needed pixels arrive in this single cycle -- the IIM's
        parallel line stores make even the perpendicular worst case
        (Figure 4) a one-cycle fetch.
        """
        if self.config.mode is AddressingMode.INTER:
            return self._stage2_fetch_inter(pixel_cycle, position, row_start)
        return self._stage2_fetch_intra(pixel_cycle, position, row_start)

    def _stage2_fetch_intra(self, pixel_cycle: int,
                            position: Tuple[int, int],
                            row_start: bool) -> PixelBundle:
        x, y = position
        neighbourhood = self.config.op.neighbourhood
        fifo = self.iim.fifo(0)

        def read(offset: Tuple[int, int]) -> PixelWords:
            column = self._clamped_column(x, offset[0])
            line = self._clamped_line(y, offset[1])
            return fifo.read_pixel(column, line)

        if row_start or not self.matrix.filled:
            self.matrix.load({off: read(off)
                              for off in neighbourhood.offsets})
        else:
            step = ((1, 0) if self.config.scan is ScanOrder.HORIZONTAL
                    else (0, 1))
            fresh_offsets = neighbourhood.fresh_offsets(self.config.scan)
            self.matrix.shift(step, {off: read(off)
                                     for off in fresh_offsets})
        snapshot = self.matrix.snapshot()
        values = {
            channel: [_extract(snapshot[off], channel)
                      for off in neighbourhood.offsets]
            for channel in self._channels
        }
        self._release_dead_lines(y, row_start)
        return PixelBundle(pixel_cycle=pixel_cycle, position=position,
                           center_words=snapshot[(0, 0)], values=values)

    def _stage2_fetch_inter(self, pixel_cycle: int,
                            position: Tuple[int, int],
                            row_start: bool) -> PixelBundle:
        x, y = position
        words_a = self.iim.fifo(0).read_pixel(x, y)
        words_b = self.iim.fifo(1).read_pixel(x, y)
        if row_start or not self.matrix.filled:
            self.matrix.load({(0, 0): words_a})
        else:
            step = ((1, 0) if self.config.scan is ScanOrder.HORIZONTAL
                    else (0, 1))
            self.matrix.shift(step, {(0, 0): words_a})
        values = {channel: [_extract(words_a, channel)]
                  for channel in self._channels}
        inter_b = {channel: _extract(words_b, channel)
                   for channel in self._channels}
        self._release_dead_lines(y, row_start)
        return PixelBundle(pixel_cycle=pixel_cycle, position=position,
                           center_words=words_a, values=values,
                           inter_b=inter_b)

    def _release_dead_lines(self, y: int, row_start: bool) -> None:
        """Retire IIM lines the rest of the scan can no longer touch."""
        if not row_start:
            return
        if self.config.mode is AddressingMode.INTER:
            last_dead = y - 1
        else:
            min_dy = self.config.op.neighbourhood.bounding_box()[1]
            last_dead = y + min_dy - 1
        if last_dead >= 0:
            for fifo in self.iim.fifos:
                fifo.release_through(last_dead)

    # -- stage 3 --------------------------------------------------------------

    def stage3_execute(self, bundle: PixelBundle) -> Optional[ResultPixel]:
        """Execute the OP instruction; ``None`` when reducing to a scalar."""
        self.ops_executed += 1
        lower, upper = bundle.center_words
        if self.config.mode is AddressingMode.INTER:
            assert bundle.inter_b is not None
            results = {
                channel: self.config.op.apply_scalar(
                    bundle.values[channel][0], bundle.inter_b[channel])
                for channel in self._channels
            }
        else:
            results = {
                channel: self.config.op.apply_scalar(bundle.values[channel])
                for channel in self._channels
            }
        if self.config.reduce_to_scalar:
            self.reduce_accumulator += sum(results.values())
            return None
        for channel, value in results.items():
            lower = _insert(lower, channel, value)
        return ResultPixel(pixel_cycle=bundle.pixel_cycle,
                           position=bundle.position,
                           lower=lower, upper=upper)

    # -- stage 4 --------------------------------------------------------------

    def stage4_store(self, result: ResultPixel) -> None:
        """Execute the STORE instruction: result pixel into the OIM."""
        fmt = self.config.fmt
        x, y = result.position
        pixel_index = y * fmt.width + x
        self.oim.push(pixel_index, result.lower, result.upper)
        self.results_stored += 1
