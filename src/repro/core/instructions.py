"""The micro-instruction vocabulary of the pixel level controller.

Paper section 3.4/3.5: the datapath has four stages and *"in order to
generate a result pixel one instruction has to be performed in each one
of the stages"*; the PLC's control FSM *"generates the set of
instructions to be performed in every pixel-cycle"*.

A pixel-cycle is therefore a bundle of four instructions -- one per stage
-- that the startpipeline overlaps with neighbouring pixel-cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple


class InstructionKind(Enum):
    """Micro-instructions, tagged with the datapath stage executing them."""

    #: Stage 1: advance the pixel position counters (image scanning).
    SCAN = 1
    #: Stage 2: fill the whole matrix register from the IIM.
    LOAD = 2
    #: Stage 2: slide the matrix register, fetching only fresh pixels.
    SHIFT = 2
    #: Stage 3: execute the configured pixel operation.
    OP = 3
    #: Stage 4: store the result pixel into the OIM.
    STORE = 4

    @property
    def stage(self) -> int:
        return self.value


#: Datapath resources the arbiter guards.  Each instruction kind claims a
#: fixed resource; two same-cycle claims on one resource are a control bug.
RESOURCE_OF = {
    InstructionKind.SCAN: "position_counters",
    InstructionKind.LOAD: "iim_port",
    InstructionKind.SHIFT: "iim_port",
    InstructionKind.OP: "alu",
    InstructionKind.STORE: "oim_port",
}


@dataclass(frozen=True)
class Instruction:
    """One micro-instruction of one pixel-cycle."""

    kind: InstructionKind
    #: The pixel-cycle (issue sequence number) this instruction belongs to.
    pixel_cycle: int
    #: The frame position the pixel-cycle targets.
    position: Tuple[int, int]

    @property
    def stage(self) -> int:
        return self.kind.stage

    @property
    def resource(self) -> str:
        return RESOURCE_OF[self.kind]

    def __str__(self) -> str:
        x, y = self.position
        return f"{self.kind.name}#{self.pixel_cycle}@({x},{y})"


def bundle_for(pixel_cycle: int, position: Tuple[int, int],
               row_start: bool) -> Tuple[Instruction, ...]:
    """The four-instruction bundle of one pixel-cycle.

    Stage 2 uses LOAD at scan-row starts (the matrix has no reusable
    content) and SHIFT elsewhere.
    """
    fetch = InstructionKind.LOAD if row_start else InstructionKind.SHIFT
    return (
        Instruction(InstructionKind.SCAN, pixel_cycle, position),
        Instruction(fetch, pixel_cycle, position),
        Instruction(InstructionKind.OP, pixel_cycle, position),
        Instruction(InstructionKind.STORE, pixel_cycle, position),
    )
