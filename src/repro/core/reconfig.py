"""Dynamic partial reconfiguration of the pixel-processing block.

Paper section 5 (outlook): *"The pixel addressing will be implemented in
a statically configured block of the FPGA, as all supported algorithms
are using the same AddressLib scheme, whereas the pixel processing,
which might be changed during the process of video analysis, will be
implemented in a dynamically reconfigurable block."*

This module models that split so the trade-off can be quantified:

* the **static region** (addressing: IIM/OIM, TxUs, PLC, ILC, PCI) never
  reconfigures;
* the **dynamic region** hosts exactly one pixel operation; switching
  operations costs a partial-bitstream load through the configuration
  port (SelectMAP/ICAP-class bandwidth), proportional to the region's
  frame count;
* the alternative -- a *statically configured* device (the v1 situation)
  -- must load a **full** bitstream to change the hardwired operation,
  or keep the operation on the host.

:class:`ReconfigurableEngine` wraps an :class:`AddressEngine` and an
operation schedule, accounting reconfiguration time between calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..addresslib.ops import InterOp, IntraOp
from .engine import AddressEngine, EngineRunResult
from .pci import PCI_CLOCK_HZ

#: Full-device configuration bitstream of the XC2V3000, in bytes
#: (Virtex-II data sheet: 10,494,368 bits).
FULL_BITSTREAM_BYTES = 10_494_368 // 8

#: Configuration port bandwidth, bytes/second (SelectMAP at 50 MHz,
#: 8 bits per cycle -- the Virtex-II generation's fast config path).
CONFIG_BANDWIDTH_BYTES_PER_S = 50_000_000

#: Partial bitstream of the dynamic pixel-processing region, in bytes.
#: Virtex-II reconfigures in full-height frames; a 4-CLB-column region
#: of the 2V3000 is on the order of 1.5 % of the device.
PARTIAL_BITSTREAM_BYTES = int(FULL_BITSTREAM_BYTES * 0.015)


@dataclass(frozen=True)
class ReconfigurationModel:
    """Times to change the operation in the dynamic region."""

    partial_bitstream_bytes: int = PARTIAL_BITSTREAM_BYTES
    full_bitstream_bytes: int = FULL_BITSTREAM_BYTES
    config_bandwidth: float = CONFIG_BANDWIDTH_BYTES_PER_S

    @property
    def partial_seconds(self) -> float:
        """Swap the pixel operation: load only the dynamic region."""
        return self.partial_bitstream_bytes / self.config_bandwidth

    @property
    def full_seconds(self) -> float:
        """The static alternative: reload the whole device."""
        return self.full_bitstream_bytes / self.config_bandwidth

    @property
    def speedup(self) -> float:
        """How much faster an operation swap becomes with partial
        dynamic reconfiguration."""
        return self.full_seconds / self.partial_seconds


@dataclass
class ScheduleReport:
    """Accounting of one operation schedule on a reconfigurable engine."""

    calls: int
    reconfigurations: int
    call_seconds: float
    reconfig_seconds: float
    per_op_calls: Dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.call_seconds + self.reconfig_seconds

    @property
    def reconfig_fraction(self) -> float:
        total = self.total_seconds
        if total == 0:
            return 0.0
        return self.reconfig_seconds / total


class ReconfigurableEngine:
    """An AddressEngine whose stage-3 operation lives in a dynamic region.

    ``run_schedule`` executes a sequence of (config, frames) calls,
    inserting a partial reconfiguration whenever the operation changes.
    With ``dynamic=False`` it models the static device instead: every
    operation change costs a full-device bitstream load.
    """

    def __init__(self, engine: Optional[AddressEngine] = None,
                 model: Optional[ReconfigurationModel] = None,
                 dynamic: bool = True,
                 clock_hz: float = PCI_CLOCK_HZ) -> None:
        self.engine = engine or AddressEngine()
        self.model = model or ReconfigurationModel()
        self.dynamic = dynamic
        self.clock_hz = clock_hz
        self._loaded_op: Optional[str] = None
        self.reconfigurations = 0
        self.reconfig_seconds = 0.0

    def _ensure_op(self, op: Union[InterOp, IntraOp]) -> None:
        if self._loaded_op == op.name:
            return
        if self._loaded_op is not None:
            cost = (self.model.partial_seconds if self.dynamic
                    else self.model.full_seconds)
            self.reconfig_seconds += cost
            self.reconfigurations += 1
        self._loaded_op = op.name

    def run_call(self, config, frame_a, frame_b=None) -> EngineRunResult:
        """One call, paying a reconfiguration first if the op changed."""
        self._ensure_op(config.op)
        return self.engine.run_call(config, frame_a, frame_b)

    def run_schedule(self, calls: List[Tuple],
                     use_cycle_model: bool = False) -> ScheduleReport:
        """Execute ``[(config, frame_a[, frame_b]), ...]``.

        With ``use_cycle_model=False`` (default) call times come from
        the closed-form timing model, so long schedules stay cheap.
        """
        from ..perf.timing import EngineTimingModel
        timing = EngineTimingModel(clock_hz=self.clock_hz)
        call_seconds = 0.0
        per_op: Dict[str, int] = {}
        for entry in calls:
            config = entry[0]
            self._ensure_op(config.op)
            per_op[config.op_name] = per_op.get(config.op_name, 0) + 1
            if use_cycle_model:
                frames = entry[1:]
                run = self.engine.run_call(config, *frames)
                call_seconds += run.seconds
            else:
                call_seconds += timing.board_seconds(config)
        return ScheduleReport(
            calls=len(calls),
            reconfigurations=self.reconfigurations,
            call_seconds=call_seconds,
            reconfig_seconds=self.reconfig_seconds,
            per_op_calls=per_op)
