"""Hierarchical object representation: similarity-ordered region merging.

The second half of the reference-[2] substrate: starting from the
region-growing partition, adjacent segments merge in order of luminance
similarity, producing a binary merge tree whose cut levels are the
"hierarchical object representations".  This is *high-level* work -- it
runs on a region graph of hundreds of nodes, not on pixels -- which is
exactly why the paper keeps it on the host CPU and why the offloadable
(pixel-level) share of the whole algorithm is so large.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np

from ..addresslib.profiling import InstructionCost, OpProfile
from .labels import adjacency, segment_means, segment_sizes

#: Host instructions per heap operation in the merge loop (comparison
#: tree walks plus bookkeeping) -- used to profile the high-level share.
MERGE_STEP_COST = InstructionCost(addr=6, load=8, store=4, alu=10, branch=8)


@dataclass(frozen=True)
class MergeEvent:
    """One merge of the hierarchy: ``absorbed`` joins ``survivor``."""

    survivor: int
    absorbed: int
    dissimilarity: float
    #: Number of regions remaining after this merge.
    regions_after: int


@dataclass
class Hierarchy:
    """The full merge tree over an initial partition."""

    initial_labels: np.ndarray
    events: List[MergeEvent] = field(default_factory=list)
    #: Instruction profile of the merge computation (host-resident work).
    profile: OpProfile = field(default_factory=OpProfile)

    def labels_at(self, region_count: int) -> np.ndarray:
        """The partition cut at ``region_count`` regions."""
        initial = len(np.unique(
            self.initial_labels[self.initial_labels >= 0]))
        if region_count > initial:
            raise ValueError(
                f"cannot cut at {region_count} regions; partition starts "
                f"with {initial}")
        labels = self.initial_labels.copy()
        parent: Dict[int, int] = {}

        def find(node: int) -> int:
            while node in parent:
                node = parent[node]
            return node

        for event in self.events:
            if event.regions_after < region_count:
                break
            parent[event.absorbed] = event.survivor
        flat = labels.reshape(-1)
        for index, value in enumerate(flat):
            if value >= 0:
                flat[index] = find(int(value))
        return labels


class HierarchyBuilder:
    """Builds the merge tree by repeated best-pair merging."""

    def __init__(self, min_regions: int = 1) -> None:
        if min_regions < 1:
            raise ValueError("min_regions must be at least 1")
        self.min_regions = min_regions

    def build(self, labels: np.ndarray, luma: np.ndarray) -> Hierarchy:
        """Merge the partition down to ``min_regions`` regions.

        Dissimilarity between adjacent regions is the absolute difference
        of mean luminance, size-weighted (small regions merge first for
        equal contrast), the classic region-merging order.
        """
        hierarchy = Hierarchy(initial_labels=labels.copy())
        profile = hierarchy.profile

        graph = adjacency(labels)
        means = segment_means(labels, luma.astype(np.float64))
        sizes = segment_sizes(labels)
        profile.add_cost(MERGE_STEP_COST,
                         sum(len(n) for n in graph.values()) + len(graph))

        def dissimilarity(a: int, b: int) -> float:
            weight = min(sizes[a], sizes[b]) ** 0.5
            return abs(means[a] - means[b]) * weight

        heap: List[Tuple[float, int, int]] = []
        for a, neighbours in graph.items():
            for b in neighbours:
                if a < b:
                    heapq.heappush(heap, (dissimilarity(a, b), a, b))
                    profile.add_cost(MERGE_STEP_COST)

        alive: Set[int] = set(graph)
        regions = len(alive)
        while heap and regions > max(self.min_regions, 1):
            cost, a, b = heapq.heappop(heap)
            profile.add_cost(MERGE_STEP_COST)
            if a not in alive or b not in alive:
                continue  # stale entry
            if abs(dissimilarity(a, b) - cost) > 1e-9:
                continue  # stale priority
            # Merge b into a.
            total = sizes[a] + sizes[b]
            means[a] = (means[a] * sizes[a] + means[b] * sizes[b]) / total
            sizes[a] = total
            graph[a] = (graph[a] | graph[b]) - {a, b}
            for neighbour in graph[b]:
                graph[neighbour].discard(b)
                if neighbour != a:
                    graph[neighbour].add(a)
            del graph[b], means[b], sizes[b]
            alive.discard(b)
            regions -= 1
            hierarchy.events.append(MergeEvent(
                survivor=a, absorbed=b, dissimilarity=cost,
                regions_after=regions))
            for neighbour in graph[a]:
                heapq.heappush(heap,
                               (dissimilarity(*sorted((a, neighbour))),
                                *sorted((a, neighbour))))
                profile.add_cost(MERGE_STEP_COST)
        return hierarchy
