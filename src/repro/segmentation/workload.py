"""The profiling workload behind the paper's factor-30 estimate.

Section 1: *"Based on instruction level profiling of a video object
segmentation algorithm [3] the maximum achievable acceleration with
AddressEngine is estimated as a factor of 30, taking into account that
all high level parts of the algorithm are executed on the main CPU and
only low level operations are executed on AddressEngine."*

:func:`profile_segmentation_workload` runs the full reference-[2]
pipeline -- gradient, seeded region growing with segment-indexed
statistics, residual sweep, hierarchical merging -- and splits the
instruction profile into the offloadable low-level share (everything
inside AddressLib calls) and the host-resident high-level share (the
region-graph merge).  The Amdahl bound over that split is the paper's
estimate; the addressing-class dominance *within* the low-level share
backs the claim that pixel addressing, not pixel processing, is the
target worth optimising.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..addresslib.library import AddressLib
from ..addresslib.profiling import InstructionCost, OpProfile
from ..image.frame import Frame
from .hierarchy import Hierarchy, HierarchyBuilder
from .region_grow import (RegionGrowSegmenter, RegionGrowSettings,
                          SegmentationOutput)

#: Host instructions per region-pair comparison in the inter-frame object
#: tracking stage of the profiled algorithm (paper ref [3]): descriptor
#: distance, gating tests, correspondence bookkeeping.  The tracking
#: stage itself is not rebuilt here (it contributes no pixel work); its
#: instruction volume is modelled so the high-level share of the profile
#: matches the shape behind the paper's factor-30 estimate.
TRACKING_PAIR_COST = InstructionCost(addr=8, load=12, store=4, alu=14,
                                     branch=9)


def tracking_profile(region_count: int) -> OpProfile:
    """Host-resident inter-frame tracking: all-pairs region matching."""
    profile = OpProfile()
    profile.add_cost(TRACKING_PAIR_COST, region_count * region_count)
    profile.add_call()
    return profile


@dataclass
class WorkloadProfile:
    """The instruction-level split of one segmentation run."""

    low_level: OpProfile
    high_level: OpProfile
    segmentation: SegmentationOutput
    hierarchy: Hierarchy

    @property
    def total_instructions(self) -> float:
        return (self.low_level.total_instructions
                + self.high_level.total_instructions)

    @property
    def offloadable_fraction(self) -> float:
        """Share of instructions inside AddressLib calls (engine-eligible)."""
        total = self.total_instructions
        if total == 0:
            return 0.0
        return self.low_level.total_instructions / total

    @property
    def amdahl_bound(self) -> float:
        """Maximum whole-algorithm speedup with the low-level share free:
        the paper's 'estimated as a factor of 30'."""
        serial = 1.0 - self.offloadable_fraction
        if serial <= 0.0:
            return float("inf")
        return 1.0 / serial

    @property
    def addressing_fraction_of_low_level(self) -> float:
        """Within the offloadable work, the share of addressing-class
        instructions -- the 'pixel addressing dominates' claim."""
        return self.low_level.addressing_fraction


def profile_segmentation_workload(frame: Frame,
                                  settings: RegionGrowSettings = None,
                                  min_regions: int = 4) -> WorkloadProfile:
    """Run and profile the full segmentation algorithm on one frame."""
    lib = AddressLib()
    segmenter = RegionGrowSegmenter(lib, settings)
    output = segmenter.segment_frame(frame)
    hierarchy = HierarchyBuilder(min_regions=min_regions).build(
        output.labels, frame.y)
    high_level = OpProfile()
    high_level.merge(hierarchy.profile)
    high_level.merge(tracking_profile(output.segment_count))
    return WorkloadProfile(
        low_level=lib.log.merged_profile(),
        high_level=high_level,
        segmentation=output,
        hierarchy=hierarchy)
