"""Video object segmentation (the reference-[2] substrate).

Seeded region growing over segment addressing plus hierarchical region
merging -- the algorithm whose instruction profile motivates the
AddressEngine (factor-30 estimate, claim C1 in DESIGN.md).
"""

from .hierarchy import Hierarchy, HierarchyBuilder, MergeEvent
from .labels import (adjacency, boundary_mask, coverage, merge_labels,
                     relabel_compact, segment_means, segment_sizes)
from .region_grow import (RegionGrowSegmenter, RegionGrowSettings,
                          SegmentationOutput)
from .workload import WorkloadProfile, profile_segmentation_workload

__all__ = [
    "Hierarchy",
    "HierarchyBuilder",
    "MergeEvent",
    "RegionGrowSegmenter",
    "RegionGrowSettings",
    "SegmentationOutput",
    "WorkloadProfile",
    "adjacency",
    "boundary_mask",
    "coverage",
    "merge_labels",
    "profile_segmentation_workload",
    "relabel_compact",
    "segment_means",
    "segment_sizes",
]
