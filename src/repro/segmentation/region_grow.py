"""Full-frame video object segmentation via segment addressing.

The substrate of the paper's reference [2] (Herrmann et al., "A Video
Segmentation Algorithm for Hierarchical Object Representations"): the
frame is partitioned into homogeneous segments by seeded region growing,
where every segment expands in geodesic-distance order under a
luminance-homogeneity criterion -- precisely the workload whose
instruction profile motivates the AddressEngine (the paper's factor-30
estimate, reproduced by ``benchmarks/test_claim_profiling.py``).

Pipeline per frame, all pixel-level stages as AddressLib calls:

1. ``intra`` gradient call -- boundary strength per pixel;
2. seed selection at gradient minima on a coarse grid (host);
3. segment addressing -- criteria-gated expansion from all seeds, with
   segment-indexed statistics;
4. residual sweep -- unassigned pixels (blocked by the criterion) start
   new segments until the frame is covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..addresslib.addressing import CON_4, Neighbourhood
from ..addresslib.library import AddressLib
from ..addresslib.ops import INTRA_GRAD
from ..addresslib.segment import luma_delta_criterion
from ..image.frame import Frame
from .labels import coverage, relabel_compact, segment_sizes


@dataclass(frozen=True)
class RegionGrowSettings:
    """Tunables of the region-growing segmenter."""

    #: Luminance homogeneity threshold for joining a segment.
    luma_delta: int = 12
    #: Seed grid pitch in pixels (seeds snap to local gradient minima).
    seed_pitch: int = 24
    #: Window radius for the gradient-minimum snap.
    seed_snap_radius: int = 4
    #: Connectivity of the expansion.
    connectivity: Neighbourhood = CON_4


@dataclass
class SegmentationOutput:
    """A complete frame partition."""

    labels: np.ndarray
    segment_count: int
    seeds: List[Tuple[int, int]] = field(default_factory=list)
    #: Geodesic distance map of the primary expansion.
    distance: Optional[np.ndarray] = None

    @property
    def sizes(self):
        return segment_sizes(self.labels)


class RegionGrowSegmenter:
    """Seeded region growing over AddressLib's segment addressing."""

    def __init__(self, lib: AddressLib,
                 settings: Optional[RegionGrowSettings] = None) -> None:
        self.lib = lib
        self.settings = settings or RegionGrowSettings()

    # -- seeds -----------------------------------------------------------------

    def select_seeds(self, gradient: np.ndarray) -> List[Tuple[int, int]]:
        """Grid seeds snapped to the local gradient minimum.

        Seeding at low-gradient (homogeneous) points keeps seeds away
        from object boundaries, so each seed's segment expands cleanly.
        """
        pitch = self.settings.seed_pitch
        radius = self.settings.seed_snap_radius
        height, width = gradient.shape
        seeds: List[Tuple[int, int]] = []
        for cy in range(pitch // 2, height, pitch):
            for cx in range(pitch // 2, width, pitch):
                y0, y1 = max(cy - radius, 0), min(cy + radius + 1, height)
                x0, x1 = max(cx - radius, 0), min(cx + radius + 1, width)
                window = gradient[y0:y1, x0:x1]
                local = np.unravel_index(int(window.argmin()), window.shape)
                seeds.append((x0 + int(local[1]), y0 + int(local[0])))
        return seeds

    # -- the segmentation -------------------------------------------------------

    def segment_frame(self, frame: Frame) -> SegmentationOutput:
        """Partition ``frame`` into homogeneous segments."""
        settings = self.settings
        gradient_frame = self.lib.intra(INTRA_GRAD, frame)
        seeds = self.select_seeds(gradient_frame.y.astype(np.float64))

        criterion = luma_delta_criterion(settings.luma_delta)
        primary = self.lib.segment(frame, seeds, criterion,
                                   connectivity=settings.connectivity)
        labels = primary.labels.copy()
        next_id = len(seeds)

        # Residual sweep: pixels the criterion fenced off become their own
        # segments, grown the same way, until the partition is complete.
        while True:
            unassigned = np.argwhere(labels < 0)
            if unassigned.size == 0:
                break
            sy, sx = (int(unassigned[0][0]), int(unassigned[0][1]))
            residual = self.lib.segment(frame, [(sx, sy)], criterion,
                                        connectivity=settings.connectivity)
            grown = (residual.labels >= 0) & (labels < 0)
            if not grown.any():
                labels[sy, sx] = next_id  # isolated pixel
            else:
                labels[grown] = next_id
            next_id += 1

        assert coverage(labels) == 1.0
        labels, count = relabel_compact(labels)
        return SegmentationOutput(labels=labels, segment_count=count,
                                  seeds=seeds, distance=primary.distance)
