"""Label-map utilities for segmentation results.

A label map is an ``int32`` array with one segment id per pixel (>= 0)
and ``-1`` for unassigned pixels.  These helpers are shared by the
region-growing front end and the hierarchical merger.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np


def relabel_compact(labels: np.ndarray) -> Tuple[np.ndarray, int]:
    """Renumber segment ids to ``0..n-1`` (order of first appearance).

    Unassigned pixels (``-1``) stay unassigned.  Returns the new map and
    the segment count.
    """
    out = np.full_like(labels, -1)
    mapping: Dict[int, int] = {}
    flat = labels.reshape(-1)
    out_flat = out.reshape(-1)
    for index, value in enumerate(flat):
        if value < 0:
            continue
        value = int(value)
        if value not in mapping:
            mapping[value] = len(mapping)
        out_flat[index] = mapping[value]
    return out, len(mapping)


def segment_sizes(labels: np.ndarray) -> Dict[int, int]:
    """Pixel count per segment id (unassigned excluded)."""
    ids, counts = np.unique(labels[labels >= 0], return_counts=True)
    return {int(i): int(c) for i, c in zip(ids, counts)}


def segment_means(labels: np.ndarray, values: np.ndarray) -> Dict[int, float]:
    """Mean of ``values`` per segment."""
    means: Dict[int, float] = {}
    for segment_id in np.unique(labels[labels >= 0]):
        mask = labels == segment_id
        means[int(segment_id)] = float(values[mask].mean())
    return means


def adjacency(labels: np.ndarray) -> Dict[int, Set[int]]:
    """The region adjacency graph (4-connected) of a complete label map."""
    graph: Dict[int, Set[int]] = {int(i): set()
                                  for i in np.unique(labels[labels >= 0])}

    def link(a: np.ndarray, b: np.ndarray) -> None:
        different = (a != b) & (a >= 0) & (b >= 0)
        for left, right in zip(a[different].tolist(),
                               b[different].tolist()):
            graph[int(left)].add(int(right))
            graph[int(right)].add(int(left))

    link(labels[:, :-1], labels[:, 1:])
    link(labels[:-1, :], labels[1:, :])
    return graph


def boundary_mask(labels: np.ndarray) -> np.ndarray:
    """Boolean mask of pixels that touch a different segment (4-conn)."""
    mask = np.zeros(labels.shape, dtype=bool)
    mask[:, :-1] |= labels[:, :-1] != labels[:, 1:]
    mask[:, 1:] |= labels[:, :-1] != labels[:, 1:]
    mask[:-1, :] |= labels[:-1, :] != labels[1:, :]
    mask[1:, :] |= labels[:-1, :] != labels[1:, :]
    return mask


def coverage(labels: np.ndarray) -> float:
    """Fraction of pixels assigned to some segment."""
    return float((labels >= 0).mean())


def merge_labels(labels: np.ndarray,
                 merges: List[Tuple[int, int]]) -> np.ndarray:
    """Apply ``(survivor, absorbed)`` merges to a label map."""
    out = labels.copy()
    for survivor, absorbed in merges:
        out[out == absorbed] = survivor
    return out
