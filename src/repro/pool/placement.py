"""Pluggable placement: which board gets the next wave.

A placement policy sees the wave's calls and the list of *alive*
workers and picks one.  Policies only read modeled state (``busy_until``
backlogs, residency banks) -- they never execute anything -- so swapping
policies can change latency and per-board utilisation but never the
results, which stay bit-exact with serial submission by construction.

Ties break on the lowest ``worker_id`` so routing is deterministic for
a given submission order, keeping replays and the equivalence corpus
stable across runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..addresslib.library import BatchCall
from .worker import EngineWorker


class PlacementPolicy(ABC):
    """Chooses the worker a wave is dispatched to."""

    #: Short policy name, surfaced in pool reports.
    name: str = "abstract"

    @abstractmethod
    def choose(self, calls: Sequence[BatchCall],
               workers: Sequence[EngineWorker]) -> EngineWorker:
        """Pick one of ``workers`` (never empty) for ``calls``."""


class LeastLoadedPlacement(PlacementPolicy):
    """Send the wave to the board with the earliest modeled free time."""

    name = "least_loaded"

    def choose(self, calls: Sequence[BatchCall],
               workers: Sequence[EngineWorker]) -> EngineWorker:
        return min(workers, key=lambda w: (w.busy_until, w.worker_id))


class RoundRobinPlacement(PlacementPolicy):
    """Rotate waves across boards regardless of backlog.

    Mostly a baseline to measure the smarter policies against; it keeps
    per-board call counts level even when wave costs are skewed.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, calls: Sequence[BatchCall],
               workers: Sequence[EngineWorker]) -> EngineWorker:
        worker = workers[self._next % len(workers)]
        self._next += 1
        return worker


class ResidencyAffinityPlacement(PlacementPolicy):
    """Prefer the board whose ZBT banks already hold the wave's frames.

    A frame resident on a board makes that board cheaper for calls
    reading it (the PCI upload is skipped), so waves are attracted to
    the board with the highest residency score; backlog breaks ties, so
    with no resident inputs anywhere this degrades to least-loaded.
    """

    name = "residency_affinity"

    def choose(self, calls: Sequence[BatchCall],
               workers: Sequence[EngineWorker]) -> EngineWorker:
        return min(
            workers,
            key=lambda w: (-w.affinity_score(calls), w.busy_until,
                           w.worker_id))
