"""One pool worker: an engine-backed AddressLib plus its modeled clock.

A worker is the pool's unit of replication -- the modelled equivalent of
one ADM-XRC-II board in its own PCI slot.  Each worker owns a *private*
:class:`~repro.addresslib.library.AddressLib` (and therefore its own
driver books and :class:`~repro.host.driver.FrameResidencyCache` bank
state), an optional :class:`~repro.host.scheduler.CallScheduler`, and a
modeled ``busy_until`` horizon the placement policies load-balance on.

Execution is the same vector executor every other path runs, so results
are bit-exact with serial submission whichever worker a wave lands on;
only the modeled timing (and the per-board accounting) depends on the
routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..addresslib.library import AddressLib, BatchCall
from ..host.scheduler import CallScheduler
from ..image.frame import Frame
from ..perf.report import base_report_dict
from ..perf.timing import EngineTimingModel, list_scheduled_makespan
from .pricing import call_cost_seconds


@dataclass
class WorkerReport:
    """The books of one pool worker, cut at report time."""

    worker_id: int
    calls_routed: int = 0
    waves: int = 0
    busy_seconds: float = 0.0
    #: Fraction of the report clock this board was busy (0.0 when the
    #: clock has not advanced).
    utilization: float = 0.0
    #: Residency-cache counters of this board's banks (all zero when
    #: the worker's backend keeps no residency state).
    residency: Dict[str, int] = field(default_factory=dict)
    #: Board driver books (absent for software-backed workers).
    calls_submitted: int = 0
    calls_shed: int = 0
    #: Calls this worker abandoned mid-wave to a surviving worker.
    calls_requeued: int = 0
    failed: bool = False
    #: Scheduler transport books (empty for workers with no scheduler):
    #: shm/pickle/bypass call counts, round trips, and plane-store state.
    transport: Dict[str, object] = field(default_factory=dict)

    @property
    def residency_hit_rate(self) -> Optional[float]:
        """Hits plus result reuses over all residency lookups; ``None``
        when the board never looked one up."""
        hits = (self.residency.get("hits", 0)
                + self.residency.get("result_reuses", 0))
        total = hits + self.residency.get("misses", 0)
        if total == 0:
            return None
        return hits / total

    def to_dict(self, clock_hz: float) -> Dict[str, object]:
        """Schema-conforming books (see ``perf.report``)."""
        return base_report_dict(
            "pool_worker",
            calls=self.calls_routed,
            cycles=self.busy_seconds * clock_hz,
            cache=self.residency,
            shed=self.calls_shed,
            worker_id=self.worker_id,
            waves=self.waves,
            busy_seconds=self.busy_seconds,
            utilization=self.utilization,
            residency_hit_rate=self.residency_hit_rate,
            calls_submitted=self.calls_submitted,
            calls_requeued=self.calls_requeued,
            failed=self.failed,
            transport=self.transport,
        )


class EngineWorker:
    """One engine-backed library with its own books and modeled clock.

    ``modeled_engines`` exists for the degenerate single-worker pool
    that preserves the legacy ``virtual_engines`` accounting of
    :class:`~repro.service.EngineService`: a real pool runs N workers
    that each model one board, the adapter runs one worker that models
    N boards.  Either way the wave cost is the LPT makespan of the
    per-call overlap-model costs across the worker's modelled boards.
    """

    def __init__(self, worker_id: int,
                 lib: Optional[AddressLib] = None,
                 scheduler: Optional[CallScheduler] = None,
                 modeled_engines: int = 1,
                 timing: Optional[EngineTimingModel] = None) -> None:
        self.worker_id = worker_id
        self.lib = lib if lib is not None else AddressLib()
        self.scheduler = scheduler
        self.modeled_engines = max(1, modeled_engines)
        self.timing = timing or (scheduler.timing if scheduler
                                 else EngineTimingModel())
        self.special_inter_ops = frozenset(
            getattr(self.lib.backend, "special_inter_ops", frozenset()))
        #: Modeled time this board is busy until.
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.calls_routed = 0
        self.waves_run = 0
        #: Calls handed back to the pool after a mid-wave failure.
        self.calls_requeued = 0
        #: Set when a wave raised ``EngineDeadlock``: the board is out
        #: of rotation until the operator resets it.
        self.failed = False

    # -- board attachments ----------------------------------------------------

    @property
    def driver(self):
        """The board driver, or ``None`` for software-backed workers."""
        return getattr(self.lib.backend, "driver", None)

    @property
    def residency(self):
        """The board's residency cache, or ``None`` without one."""
        return getattr(self.lib.backend, "residency", None)

    # -- modeled pricing ------------------------------------------------------

    def price(self, call: BatchCall) -> Tuple[float, float]:
        """(serial, overlapped) modeled seconds of ``call`` here."""
        return call_cost_seconds(call, self.timing,
                                 self.special_inter_ops)

    def wave_cost_seconds(self, calls: Sequence[BatchCall]) -> float:
        """Modeled makespan of one wave across this worker's boards."""
        costs = [self.price(call)[1] for call in calls]
        return list_scheduled_makespan(costs, self.modeled_engines)

    def affinity_score(self, calls: Sequence[BatchCall]) -> int:
        """How many of the wave's input frames are already resident in
        this board's banks (identity, never content comparison)."""
        cache = self.residency
        if cache is None:
            return 0
        score = 0
        for call in calls:
            for frame in call.frames:
                if cache.contains(frame):
                    score += 1
        return score

    # -- execution and books --------------------------------------------------

    def run_wave(self, calls: Sequence[BatchCall]
                 ) -> List[Union[Frame, int]]:
        """Execute one wave through this worker's own library."""
        return self.lib.run_batch(calls, scheduler=self.scheduler)

    def book_wave(self, calls: Sequence[BatchCall], start: float,
                  end: float) -> None:
        """Advance the board clock and tally the routed wave."""
        self.busy_until = end
        self.busy_seconds += end - start
        self.waves_run += 1
        self.calls_routed += len(calls)

    def report(self, clock_seconds: float = 0.0) -> WorkerReport:
        """This board's books; ``clock_seconds`` sets utilization."""
        cache = self.residency
        residency = {}
        if cache is not None:
            residency = {"hits": cache.hits, "misses": cache.misses,
                         "result_reuses": cache.result_reuses,
                         "evictions": cache.evictions}
        driver = self.driver
        return WorkerReport(
            worker_id=self.worker_id,
            calls_routed=self.calls_routed,
            waves=self.waves_run,
            busy_seconds=self.busy_seconds,
            utilization=(self.busy_seconds / clock_seconds
                         if clock_seconds > 0.0 else 0.0),
            residency=residency,
            calls_submitted=(driver.calls_submitted if driver else 0),
            calls_shed=(driver.calls_shed if driver else 0),
            calls_requeued=self.calls_requeued,
            failed=self.failed,
            transport=(self.scheduler.transport_stats()
                       if self.scheduler is not None else {}),
        )

    def close(self) -> None:
        """Shut down this worker's scheduler pool, if any."""
        if self.scheduler is not None:
            self.scheduler.close()
