"""Closed-form pricing of batch calls, shared across the stack.

Every layer that reasons about multi-engine execution -- the admission
controller, the call scheduler's makespan books, and the
:class:`~repro.pool.EnginePool` workers -- must price one call with the
*same* arithmetic, or modeled dispatch decisions drift from the
accounting.  This module is that single definition; it depends only on
the addressing geometry and the validated
:class:`~repro.perf.timing.EngineTimingModel`, so the pool can sit
below the service layer without an import cycle.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from ..addresslib.addressing import AddressingMode
from ..addresslib.library import BatchCall
from ..perf.timing import EngineTimingModel


def call_cost_seconds(call: BatchCall, timing: EngineTimingModel,
                      special_inter_ops: FrozenSet[str] = frozenset()
                      ) -> Tuple[float, float]:
    """(serial-model, overlap-model) seconds of one call's geometry.

    The same arithmetic :class:`~repro.host.scheduler.CallScheduler`
    prices batches with, so service admission, scheduler makespans,
    pool placement and driver submission all account one call
    identically.
    """
    fmt = call.fmt
    images_in = 2 if call.mode is AddressingMode.INTER else 1
    produces_image = not call.reduce_to_scalar
    full_frames = (call.mode is AddressingMode.INTER
                   and call.op.name in special_inter_ops)
    serial = timing.serial_call_seconds_raw(
        fmt.pixels, fmt.strips, images_in, produces_image, full_frames)
    overlapped = timing.overlapped_call_seconds_raw(
        fmt.pixels, fmt.strips, images_in, produces_image, full_frames)
    return serial, overlapped
