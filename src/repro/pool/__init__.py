"""Multi-engine sharding: N modelled boards behind one dispatch API.

The paper runs one AddressEngine on the PCI bus; its outlook scales by
adding boards.  This package models that pool: each
:class:`EngineWorker` is one board with private driver books and
ZBT-bank residency, an :class:`EnginePool` routes micro-batched waves
onto them through a pluggable :class:`PlacementPolicy`, and results
stay bit-exact with serial submission for every pool size and policy.
"""

from .placement import (LeastLoadedPlacement, PlacementPolicy,
                        ResidencyAffinityPlacement, RoundRobinPlacement)
from .pool import EnginePool, PoolReport, WaveDispatch
from .pricing import call_cost_seconds
from .worker import EngineWorker, WorkerReport

__all__ = [
    "EnginePool",
    "EngineWorker",
    "LeastLoadedPlacement",
    "PlacementPolicy",
    "PoolReport",
    "ResidencyAffinityPlacement",
    "RoundRobinPlacement",
    "WaveDispatch",
    "WorkerReport",
    "call_cost_seconds",
]
