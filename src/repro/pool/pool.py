"""EnginePool: N modelled boards behind one dispatch interface.

The paper's outlook scales by putting more AddressEngines on the bus;
this module models that deployment.  An :class:`EnginePool` owns N
:class:`~repro.pool.worker.EngineWorker` boards -- each with its own
:class:`~repro.addresslib.library.AddressLib`, driver books, and
ZBT-bank residency state -- and routes each micro-batched wave to one
board through a pluggable :class:`~repro.pool.placement.PlacementPolicy`.

Routing never changes results: every board executes through the same
vector executor, and a wave runs whole on one board, so the outputs are
bit-exact with serial submission for any pool size or policy.  What the
pool *does* change is the modeled clock -- waves land on boards whose
backlogs overlap -- and the per-board books the service report
aggregates.

Failure semantics: a board that raises
:class:`~repro.core.errors.EngineDeadlock` mid-wave is marked failed
and taken out of rotation; its wave re-places among the surviving
boards and re-runs whole (no partial results are kept, so a failover is
invisible in the outputs).  A pool with no surviving board re-raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, List, Optional, Sequence, Tuple,
                    Union)

from ..addresslib.library import AddressLib, BatchCall
from ..core.errors import EngineDeadlock
from ..host import shm
from ..host.backend import EngineBackend
from ..host.driver import AddressEngineDriver
from ..host.scheduler import CallScheduler
from ..image.frame import Frame
from ..perf.report import base_report_dict
from ..perf.timing import EngineTimingModel
from .placement import (LeastLoadedPlacement, PlacementPolicy,
                        ResidencyAffinityPlacement)
from .worker import EngineWorker, WorkerReport


@dataclass(frozen=True)
class WaveDispatch:
    """What one routed wave came back with."""

    #: Functional results, in the wave's submission order.
    results: Tuple[Union[Frame, int], ...]
    #: The board that ran the wave (after any failovers).
    worker_id: int
    #: Modeled wave start/end on that board's clock.
    start_seconds: float
    end_seconds: float
    #: Boards that failed out from under this wave before it ran.
    failovers: int = 0


@dataclass
class PoolReport:
    """Aggregated books of every board in the pool."""

    placement: str
    workers: List[WorkerReport] = field(default_factory=list)
    waves: int = 0
    #: Waves routed by an explicit placement hint, not the policy.
    hinted_waves: int = 0
    failovers: int = 0
    calls_requeued: int = 0
    calls_shed: int = 0
    clock_hz: float = 0.0

    @property
    def calls_routed(self) -> int:
        return sum(w.calls_routed for w in self.workers)

    @property
    def busy_seconds(self) -> float:
        """Total board-busy time summed across the pool."""
        return sum(w.busy_seconds for w in self.workers)

    @property
    def residency(self) -> Dict[str, int]:
        """Residency counters summed across every board's banks."""
        total: Dict[str, int] = {}
        for worker in self.workers:
            for key, value in worker.residency.items():
                total[key] = total.get(key, 0) + value
        return total

    @property
    def residency_hit_rate(self) -> Optional[float]:
        """Pool-wide hit rate; ``None`` when no board looked one up."""
        counters = self.residency
        hits = counters.get("hits", 0) + counters.get("result_reuses", 0)
        total = hits + counters.get("misses", 0)
        if total == 0:
            return None
        return hits / total

    @property
    def transport(self) -> Dict[str, int]:
        """Scheduler transport call counters summed across every board
        (boards without a scheduler contribute nothing)."""
        keys = ("round_trips", "pool_calls", "inline_calls",
                "bypass_calls", "shm_calls", "pickle_calls",
                "worker_cache_hits", "worker_cache_attaches")
        total = {key: 0 for key in keys}
        for worker in self.workers:
            for key in keys:
                value = worker.transport.get(key)
                if isinstance(value, int):
                    total[key] += value
        return total

    def to_dict(self) -> Dict[str, object]:
        """Schema-conforming books (see ``perf.report``)."""
        return base_report_dict(
            "pool",
            calls=self.calls_routed,
            cycles=self.busy_seconds * self.clock_hz,
            cache=self.residency,
            shed=self.calls_shed,
            placement=self.placement,
            waves=self.waves,
            hinted_waves=self.hinted_waves,
            failovers=self.failovers,
            calls_requeued=self.calls_requeued,
            residency_hit_rate=self.residency_hit_rate,
            transport=self.transport,
            workers=[w.to_dict(self.clock_hz) for w in self.workers],
        )


class EnginePool:
    """Owns N engine workers and routes waves onto them.

    Construct with :meth:`of_engines` for a real N-board pool, or
    :meth:`adopt` to wrap one existing library as a single worker (the
    compatibility shape :class:`~repro.service.EngineService` uses when
    it is handed a bare ``lib``).
    """

    def __init__(self, workers: Sequence[EngineWorker],
                 placement: Optional[PlacementPolicy] = None) -> None:
        if not workers:
            raise ValueError("a pool needs at least one worker")
        self.workers: List[EngineWorker] = list(workers)
        self.placement = placement or ResidencyAffinityPlacement()
        self.timing = self.workers[0].timing
        self.waves_dispatched = 0
        self.hinted_waves = 0
        self.failovers = 0
        self.calls_requeued = 0
        self.calls_shed = 0
        self._least_loaded = LeastLoadedPlacement()

    # -- construction ---------------------------------------------------------

    @classmethod
    def of_engines(cls, count: int,
                   placement: Optional[PlacementPolicy] = None,
                   timing: Optional[EngineTimingModel] = None,
                   chain_frames: bool = True,
                   special_inter_ops: Tuple[str, ...] = ()
                   ) -> "EnginePool":
        """A pool of ``count`` engine-backed boards, one driver each.

        Workers run their waves serially on their own board (no nested
        scheduler), so each board's residency chaining stays live and
        the affinity policy has real bank state to route on.
        """
        if count < 1:
            raise ValueError(f"pool size {count} < 1")
        timing = timing or EngineTimingModel()
        workers = []
        for worker_id in range(count):
            backend = EngineBackend(
                driver=AddressEngineDriver(timing=timing),
                special_inter_ops=special_inter_ops,
                chain_frames=chain_frames)
            workers.append(EngineWorker(
                worker_id, lib=AddressLib(backend), timing=timing))
        return cls(workers, placement=placement)

    @classmethod
    def adopt(cls, lib: AddressLib,
              scheduler: Optional[CallScheduler] = None,
              modeled_engines: int = 1,
              timing: Optional[EngineTimingModel] = None) -> "EnginePool":
        """Wrap one caller-owned library as a single-worker pool.

        ``modeled_engines`` keeps the legacy ``virtual_engines``
        accounting: the one worker prices each wave as an LPT makespan
        across that many modelled boards, so a service built on a bare
        ``lib`` books exactly what it did before pools existed.
        """
        worker = EngineWorker(0, lib=lib, scheduler=scheduler,
                              modeled_engines=modeled_engines,
                              timing=timing)
        return cls([worker], placement=LeastLoadedPlacement())

    # -- pool state -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.workers)

    def alive(self) -> List[EngineWorker]:
        """Boards still in rotation."""
        return [w for w in self.workers if not w.failed]

    def min_busy_until(self) -> float:
        """Earliest modeled time any alive board comes free.

        This is when the service can start its next wave; a dead pool
        answers the latest board clock so time never runs backwards.
        """
        alive = self.alive()
        if not alive:
            return max(w.busy_until for w in self.workers)
        return min(w.busy_until for w in alive)

    @property
    def total_modeled_engines(self) -> int:
        return sum(w.modeled_engines for w in self.alive())

    @property
    def special_inter_ops(self) -> FrozenSet[str]:
        """Union across boards (pools are normally homogeneous)."""
        ops: FrozenSet[str] = frozenset()
        for worker in self.workers:
            ops = ops | worker.special_inter_ops
        return ops

    # -- routing and dispatch -------------------------------------------------

    def place(self, calls: Sequence[BatchCall],
              hint: Optional[int] = None) -> EngineWorker:
        """The board the next wave goes to.

        ``hint`` pins the wave to a worker id when that board is alive;
        a hint naming a dead or unknown board falls back to the policy
        (a hint is a preference, not a correctness constraint).
        """
        alive = self.alive()
        if not alive:
            raise EngineDeadlock("engine pool has no surviving workers")
        if hint is not None:
            for worker in alive:
                if worker.worker_id == hint:
                    self.hinted_waves += 1
                    return worker
        return self.placement.choose(calls, alive)

    def dispatch(self, calls: Sequence[BatchCall],
                 not_before: float = 0.0,
                 hint: Optional[int] = None) -> WaveDispatch:
        """Route one wave to a board, run it, and book the clock.

        The wave starts at ``max(board free time, not_before)`` and
        costs the LPT makespan of its calls across the board's modelled
        engines.  On :class:`EngineDeadlock` the board is failed out and
        the whole wave re-places among survivors (results never mix
        boards); with no survivors the deadlock propagates.
        """
        failovers = 0
        while True:
            worker = self.place(calls, hint)
            try:
                results = worker.run_wave(calls)
            except EngineDeadlock:
                worker.failed = True
                worker.calls_requeued += len(calls)
                self.failovers += 1
                self.calls_requeued += len(calls)
                failovers += 1
                hint = None
                if not self.alive():
                    raise
                requeued = self._requeue(calls)
                observer = shm.get_transport_observer()
                if observer is not None:
                    observer.pool_requeued(calls, requeued)
                calls = requeued
                continue
            observer = shm.get_transport_observer()
            if observer is not None:
                observer.pool_wave(worker.worker_id, calls, results)
            start = max(worker.busy_until, not_before)
            end = start + worker.wave_cost_seconds(calls)
            worker.book_wave(calls, start, end)
            self.waves_dispatched += 1
            return WaveDispatch(
                results=tuple(results), worker_id=worker.worker_id,
                start_seconds=start, end_seconds=end,
                failovers=failovers)

    def _requeue(self, calls: Sequence[BatchCall]) -> List[BatchCall]:
        """The calls a failed-out wave re-runs with.

        The contract is *verbatim replay*: the same calls, same order,
        re-placed whole on a survivor.  This seam exists so the
        sanitizer selftests can model a buggy override (reordering or
        merging on requeue -- the POOL001 hazard) against the real
        dispatch loop; production code must not override it.
        """
        return list(calls)

    def account_shed(self, calls: int = 1) -> None:
        """Book shed calls against the pool and one board's driver.

        Shed work never picked a board, so it lands on the least-loaded
        survivor's driver -- the board that *would* have run it next.
        """
        if calls < 0:
            raise ValueError(f"cannot shed {calls} calls")
        self.calls_shed += calls
        alive = self.alive() or self.workers
        worker = self._least_loaded.choose((), alive)
        driver = worker.driver
        if driver is not None:
            driver.account_shed(calls)

    # -- books and lifecycle --------------------------------------------------

    def report(self, clock_seconds: float = 0.0) -> PoolReport:
        """Every board's books plus the pool-level routing counters."""
        return PoolReport(
            placement=self.placement.name,
            workers=[w.report(clock_seconds) for w in self.workers],
            waves=self.waves_dispatched,
            hinted_waves=self.hinted_waves,
            failovers=self.failovers,
            calls_requeued=self.calls_requeued,
            calls_shed=self.calls_shed,
            clock_hz=self.timing.clock_hz,
        )

    def close(self) -> None:
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
