"""repro: a reproduction of "A Coprocessor for Accelerating Visual
Information Processing" (Stechele et al., DATE 2005).

The package rebuilds the paper's whole system in Python:

* :mod:`repro.image` -- the 64-bit pixel / QCIF / CIF frame substrate;
* :mod:`repro.addresslib` -- AddressLib: the four structured pixel
  addressing schemes and the pixel sub-function algebra;
* :mod:`repro.core` -- the AddressEngine: a cycle-level model of the FPGA
  coprocessor (ZBT, PCI/DMA, IIM/OIM, Process Unit, PLC, ILC) plus the
  structural resource estimator behind Table 1;
* :mod:`repro.host` -- the host driver, the engine-backed AddressLib
  backend and the evaluation platforms;
* :mod:`repro.perf` -- CPU and engine timing models, memory accounting;
* :mod:`repro.service` -- the serving front end: admission control,
  priority queueing, deadlines and micro-batching over the engine;
* :mod:`repro.gme` -- the MPEG-7 global motion estimation / mosaicing
  evaluation workload (Table 3);
* :mod:`repro.segmentation` -- the video object segmentation substrate
  behind the factor-30 profiling estimate.

Quick start::

    from repro.image import CIF, gradient_frame
    from repro.addresslib import AddressLib, INTRA_GRAD
    from repro.host import EngineBackend

    lib = AddressLib(EngineBackend())          # offload to the coprocessor
    edges = lib.intra(INTRA_GRAD, gradient_frame(CIF))
"""

__version__ = "0.1.0"

__all__ = [
    "addresslib",
    "core",
    "gme",
    "host",
    "image",
    "perf",
    "segmentation",
    "service",
]
