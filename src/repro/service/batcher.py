"""Micro-batching: coalesce compatible queued calls into one wave.

The paper's host submits one call, waits for the completion interrupt,
submits the next.  A loaded service can do better: queued calls that
share a configuration (same addressing mode, same op, same format and
channel set) are *already* what :meth:`AddressLib.run_batch` calls a
batch -- mutually independent by the service contract -- so the batcher
pulls them forward into one wave and hands that to the call scheduler.

Bit-exactness is structural, not hoped for: each request's result
depends only on its own input frames (no request reads another's
output), so executing compatible requests together -- in any order, on
any worker -- produces exactly the frames serial one-at-a-time
submission would.  The equivalence tests hold this over the same
randomized corpus the scheduler is held to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..addresslib.library import BatchCall
from .policy import ServicePolicy, coerce_service_policy
from .queue import RequestQueue
from .request import ServiceRequest


@dataclass(frozen=True)
class BatchKey:
    """What must match for two calls to share a micro-batch.

    Mode/op/format is the engine's *configuration* identity: calls with
    equal keys would program the board identically, so a multi-engine
    deployment can run them side by side with zero reconfiguration.
    ``op_id`` is the op object's identity, not its name -- two distinct
    parameterized ops that happen to share a name must not coalesce.
    """

    mode: str
    op_id: int
    format_name: str
    channels: str
    reduce_to_scalar: bool

    @classmethod
    def of(cls, call: BatchCall) -> "BatchKey":
        return cls(mode=call.mode.value, op_id=id(call.op),
                   format_name=call.fmt.name,
                   channels=call.channels.name,
                   reduce_to_scalar=call.reduce_to_scalar)


def _deadline_rank(request: ServiceRequest) -> float:
    """Followers sort by absolute deadline, undated work last."""
    deadline = request.absolute_deadline
    return float("inf") if deadline is None else deadline


class MicroBatcher:
    """Forms dispatch waves from the head of the request queue.

    Configure with ``policy=ServicePolicy(...)``; the pre-tenancy
    ``max_batch=`` keyword still works but warns with
    :class:`DeprecationWarning`.
    """

    def __init__(self, max_batch: Optional[int] = None,
                 policy: Optional[ServicePolicy] = None) -> None:
        self.policy = coerce_service_policy(
            policy, owner="MicroBatcher", legacy={"max_batch": max_batch})
        self.max_batch = self.policy.max_batch
        #: Waves formed so far.
        self.waves = 0
        #: Requests that rode a wave with at least one companion.
        self.coalesced_requests = 0

    def form_wave(self, queue: RequestQueue) -> List[ServiceRequest]:
        """Pop the next wave: the head request plus up to
        ``max_batch - 1`` compatible followers.

        The head is always the request strict priority order would
        dispatch next, so coalescing never inverts priorities -- it only
        lets compatible work *join* the head's wave early.  Followers
        come in queue (drain) order; with
        ``policy.deadline_aware_batching`` the compatible candidates
        are instead ranked by absolute deadline (stably, so undated
        work keeps drain order behind dated work) -- near-deadline
        requests ride the earliest compatible wave instead of waiting
        out a full queue pass.  A wave is dispatched to one pool worker
        whole, so requests only coalesce when their placement hints
        agree with the head's (two requests pinned to different boards
        must not share a wave).
        """
        if not queue:
            return []
        head = queue.pop_next()
        key = BatchKey.of(head.call)
        prefer = (_deadline_rank if self.policy.deadline_aware_batching
                  else None)
        wave = [head] + queue.pop_compatible(
            lambda request: (BatchKey.of(request.call) == key
                             and request.placement == head.placement),
            self.max_batch - 1, prefer=prefer)
        self.waves += 1
        if len(wave) > 1:
            self.coalesced_requests += len(wave)
        return wave
