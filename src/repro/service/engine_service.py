"""EngineService: the synchronous request front end over the stack.

The paper's deployment is one application owning the board.  The
ROADMAP's north star is the opposite: many independent clients and one
(modelled) engine pool.  :class:`EngineService` is the layer between --
it accepts :class:`~repro.addresslib.library.BatchCall` requests,
admits or sheds them (:mod:`repro.service.admission`), queues them with
priorities and bounded depth (:mod:`repro.service.queue`), coalesces
compatible calls into waves (:mod:`repro.service.batcher`) and routes
each wave to one board of an :class:`~repro.pool.EnginePool` through
its placement policy.

Time is *modeled* time: the service keeps a virtual clock in seconds of
the validated overlap timing model, exactly as the Table 3 evaluation
keeps modelled wall clocks.  That makes every admission decision,
deadline, and latency percentile deterministic and machine-independent
-- and bit-exactness trivially auditable, because execution itself is
the same vector executor the serial path runs, whichever board a wave
lands on.

The flow::

    from repro.api import (EngineService, EnginePool, ServicePolicy,
                           SubmitOptions)

    service = EngineService(pool=EnginePool.of_engines(4),
                            policy=ServicePolicy(
                                queue_depth=64,
                                admission=AdmissionPolicy(0.050)))
    ticket = service.submit(BatchCall.intra(INTRA_GRAD, frame),
                            options=SubmitOptions(
                                priority=Priority.INTERACTIVE,
                                deadline_seconds=0.030))
    report = service.drain()          # -> ServiceReport
    edges = ticket.result()           # bit-exact Frame
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Union

from ..addresslib.library import AddressLib, BatchCall, SoftwareBackend
from ..host.scheduler import CallScheduler
from ..image.frame import Frame
from ..perf.latency import LatencyTracker
from ..perf.report import base_report_dict
from ..perf.timing import EngineTimingModel
from ..pool import EnginePool, PoolReport
from .admission import AdmissionController
from .batcher import MicroBatcher
from .policy import ServicePolicy, coerce_service_policy
from .queue import RequestQueue
from .request import (Priority, RejectReason, RequestState, ServiceError,
                      ServiceRequest, ServiceTicket)

if TYPE_CHECKING:
    from ..api import SubmitOptions


@dataclass
class ServiceReport:
    """The books of one service run, surfaced alongside ``RunReport``."""

    #: Requests offered to :meth:`EngineService.submit`.
    submitted: int = 0
    accepted: int = 0
    completed: int = 0
    #: Requests refused at admission, by :class:`RejectReason` value.
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Requests whose deadline expired (after exhausting retries).
    timed_out: int = 0
    #: Deadline-miss re-enqueues (a request may retry several times).
    retried: int = 0
    #: Dispatch waves executed.
    waves: int = 0
    #: Requests that rode a wave with at least one compatible companion.
    coalesced_requests: int = 0
    queue_depth: int = 0
    queue_high_water: int = 0
    #: Modeled engine-busy seconds (sum of wave makespans over the pool).
    busy_seconds: float = 0.0
    #: What the executed calls would cost serially under the no-overlap
    #: (sum) model -- the denominator of :attr:`overlap_efficiency`.
    modeled_serial_seconds: float = 0.0
    #: Modeled end-to-end latency of completed requests.
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    #: Service clock when the report was cut.
    clock_seconds: float = 0.0
    #: Completed calls tallied per tenant label (untagged calls absent).
    calls_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: Rejections *and* deadline expiries tallied per tenant label --
    #: the "who absorbed the shedding" book ``calls_by_tenant`` (a
    #: completions-only tally) never answered.
    sheds_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: Per-board books of the pool that served this run.
    pool: Optional[PoolReport] = None
    #: Clock the ``cycles`` figure of :meth:`to_dict` is expressed in.
    clock_hz: float = 0.0

    @property
    def rejected(self) -> int:
        return sum(self.rejected_by_reason.values())

    @property
    def reject_rate(self) -> float:
        """Rejected over submitted; 0.0 before any submission."""
        if self.submitted == 0:
            return 0.0
        return self.rejected / self.submitted

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the serial (sum) model the pipeline + wave
        dispatch hid: ``1 - busy / serial``, 0.0 when nothing ran."""
        if self.modeled_serial_seconds <= 0.0:
            return 0.0
        return 1.0 - self.busy_seconds / self.modeled_serial_seconds

    @property
    def in_flight(self) -> int:
        """Accepted requests not yet resolved (still queued); retried
        requests stay in this count until they complete or expire."""
        return self.accepted - self.completed - self.timed_out

    def to_dict(self) -> Dict[str, object]:
        """Schema-conforming books (see ``perf.report``): the shared
        keys plus the serving figures, with the pool's per-board books
        nested under ``pool``."""
        return base_report_dict(
            "service",
            calls=self.completed,
            cycles=self.busy_seconds * self.clock_hz,
            cache=(self.pool.residency if self.pool else {}),
            shed=self.rejected + self.timed_out,
            submitted=self.submitted,
            accepted=self.accepted,
            completed=self.completed,
            rejected_by_reason=dict(self.rejected_by_reason),
            timed_out=self.timed_out,
            retried=self.retried,
            waves=self.waves,
            coalesced_requests=self.coalesced_requests,
            queue_depth=self.queue_depth,
            queue_high_water=self.queue_high_water,
            busy_seconds=self.busy_seconds,
            modeled_serial_seconds=self.modeled_serial_seconds,
            overlap_efficiency=self.overlap_efficiency,
            reject_rate=self.reject_rate,
            clock_seconds=self.clock_seconds,
            latency=self.latency.to_dict(),
            calls_by_tenant=dict(self.calls_by_tenant),
            sheds_by_tenant=dict(self.sheds_by_tenant),
            pool=(self.pool.to_dict() if self.pool else None),
        )


class EngineService:
    """Synchronous submit/drain front end over an engine pool.

    Hand it a :class:`~repro.pool.EnginePool` (``pool=``) to serve N
    modelled boards behind the one submission API.  The legacy shape --
    a bare ``lib`` (plus optional ``scheduler``) -- still works: the
    service wraps it as a single-worker pool whose worker models
    ``virtual_engines`` boards, so the books are bit-identical to what
    the pre-pool service produced.  Execution is bit-exact in every
    shape; only the modelled timing and per-board accounting change --
    the same machine-independence contract as the scheduler's
    ``BatchReport``.
    """

    def __init__(self, lib: Optional[AddressLib] = None,
                 scheduler: Optional[CallScheduler] = None,
                 queue_depth: Optional[int] = None,
                 max_batch: Optional[int] = None,
                 policy: object = None,
                 admission: Optional[AdmissionController] = None,
                 virtual_engines: Optional[int] = None,
                 timing: Optional[EngineTimingModel] = None,
                 pool: Optional[EnginePool] = None) -> None:
        #: Every serving knob, in one frozen record.  The legacy
        #: ``queue_depth=``/``max_batch=``/``policy=AdmissionPolicy``
        #: spellings are folded in with a :class:`DeprecationWarning`.
        self.policy: ServicePolicy = coerce_service_policy(
            policy, owner="EngineService",
            legacy={"queue_depth": queue_depth, "max_batch": max_batch})
        if pool is not None:
            if lib is not None or scheduler is not None:
                raise ValueError(
                    "pass either pool= or lib=/scheduler=, not both")
            self.pool = pool
            self.scheduler = None
            self.lib = pool.workers[0].lib
            self.timing = timing or pool.timing
            self.virtual_engines = pool.total_modeled_engines
        else:
            self.lib = lib or AddressLib(SoftwareBackend())
            self.scheduler = scheduler
            self.timing = timing or (scheduler.timing if scheduler
                                     else EngineTimingModel())
            self.virtual_engines = max(1, virtual_engines
                                       or (scheduler.max_workers
                                           if scheduler else 1))
            self.pool = EnginePool.adopt(
                self.lib, scheduler=scheduler,
                modeled_engines=self.virtual_engines, timing=self.timing)
        special = self.pool.special_inter_ops
        self.admission = admission or AdmissionController(
            timing=self.timing, policy=self.policy,
            special_inter_ops=special)
        self.queue = RequestQueue(policy=self.policy)
        self.batcher = MicroBatcher(policy=self.policy)
        #: The service's modeled "now": advanced by arrivals and waves.
        self.clock = 0.0
        self.report_data = ServiceReport()
        self._pending_cost_seconds = 0.0
        self._pending_cost_by_tenant: Dict[Optional[str], float] = {}
        self._in_flight_by_tenant: Dict[Optional[str], int] = {}
        self._next_request_id = 0
        self._tickets: Dict[int, ServiceTicket] = {}
        #: Observer hook: called with every ticket the moment it leaves
        #: the QUEUED state (completed, rejected, or timed out).  The
        #: asyncio facade (:mod:`repro.aio`) uses it to resolve
        #: awaitable tickets without scanning; it must be cheap and
        #: must not mutate the service reentrantly.
        self.on_resolved: Optional[Callable[[ServiceTicket], None]] = None

    @property
    def busy_until(self) -> float:
        """Modeled time the pool's earliest board comes free."""
        return self.pool.min_busy_until()

    # -- submission -----------------------------------------------------------

    def submit(self, call: BatchCall,
               options: Optional["SubmitOptions"] = None,
               *legacy_args: object,
               priority: Optional[Priority] = None,
               deadline_seconds: Optional[float] = None,
               max_retries: Optional[int] = None,
               arrival_seconds: Optional[float] = None) -> ServiceTicket:
        """Offer one call; returns a ticket that is either queued or
        already rejected (explicit backpressure, never an exception).

        All serving metadata arrives through ``options`` (a
        :class:`~repro.api.SubmitOptions`): priority class, relative
        deadline, retry budget, tenant label, placement hint, and
        ``arrival_seconds`` to place the request on the modeled clock
        (an open-loop load generator submits a whole trace this way --
        arrivals default to "now" and never move the clock backwards).
        The pre-pool keyword and positional signature
        (``priority=, deadline_seconds=, max_retries=,
        arrival_seconds=``) still works but warns with
        :class:`DeprecationWarning`.
        """
        options = self._coerce_options(
            options, legacy_args, priority, deadline_seconds,
            max_retries, arrival_seconds)
        if options.sanitize:
            # Arm (or widen) the process-wide transport sanitizer for
            # the requested domains; findings surface through whichever
            # scheduler serves the pool.  Never alters results.
            from ..analysis.sanitize import ensure_sanitizer
            ensure_sanitizer(options.sanitize)
        if options.arrival_seconds is not None:
            self.clock = max(self.clock, options.arrival_seconds)
        arrival = self.clock
        # Every submission -- accepted or shed -- feeds the per-tenant
        # arrival-rate estimate: it is the *offered* stream being sized.
        self.admission.observe(options.tenant, self.clock)
        serial_cost, overlapped_cost = self.admission.price(call)
        request = ServiceRequest(
            request_id=self._next_request_id, call=call,
            priority=options.priority, arrival_seconds=arrival,
            deadline_seconds=options.deadline_seconds,
            max_retries=options.max_retries,
            estimated_cost_seconds=overlapped_cost,
            tenant=options.tenant, placement=options.placement)
        self._next_request_id += 1
        ticket = ServiceTicket(request_id=request.request_id,
                               priority=options.priority,
                               arrival_seconds=arrival)
        self._tickets[request.request_id] = ticket
        self.report_data.submitted += 1

        cap = self.policy.tenant(request.tenant).max_in_flight
        if (cap is not None
                and self._in_flight_by_tenant.get(request.tenant, 0)
                >= cap):
            self._reject(ticket, RejectReason.TENANT_QUOTA,
                         request.tenant)
            return ticket
        reason = self._admit(request)
        if reason is not None:
            self._reject(ticket, reason, request.tenant)
            return ticket
        offered = self.queue.offer(request)
        if offered is not None:
            self._reject(ticket, offered, request.tenant)
            return ticket
        self._pending_cost_seconds += request.estimated_cost_seconds
        self._add_tenant_pending(request, +1)
        self._in_flight_by_tenant[request.tenant] = (
            self._in_flight_by_tenant.get(request.tenant, 0) + 1)
        self.report_data.accepted += 1
        return ticket

    def _coerce_options(self, options, legacy_args, priority,
                        deadline_seconds, max_retries,
                        arrival_seconds) -> "SubmitOptions":
        """One SubmitOptions from whichever signature the caller used."""
        from ..api import SubmitOptions
        if options is not None and not isinstance(options, SubmitOptions):
            # Old positional signature: submit(call, priority, ...).
            legacy_args = (options,) + legacy_args
            options = None
        if legacy_args:
            if len(legacy_args) > 4:
                raise TypeError(
                    f"submit takes at most a call and SubmitOptions; "
                    f"got {len(legacy_args) + 1} positional arguments")
            names = ("priority", "deadline_seconds", "max_retries",
                     "arrival_seconds")
            legacy_kw = dict(zip(names, legacy_args))
            priority = legacy_kw.get("priority", priority)
            deadline_seconds = legacy_kw.get("deadline_seconds",
                                             deadline_seconds)
            max_retries = legacy_kw.get("max_retries", max_retries)
            arrival_seconds = legacy_kw.get("arrival_seconds",
                                            arrival_seconds)
        legacy_used = any(v is not None for v in (
            priority, deadline_seconds, max_retries, arrival_seconds))
        if options is not None:
            if legacy_used:
                raise TypeError(
                    "pass serving metadata through options= OR the "
                    "deprecated keywords, not both")
            return options
        if legacy_used:
            warnings.warn(
                "EngineService.submit(priority=, deadline_seconds=, "
                "max_retries=, arrival_seconds=) is deprecated; pass "
                "submit(call, options=SubmitOptions(...))",
                DeprecationWarning, stacklevel=3)
        return SubmitOptions(
            priority=(priority if priority is not None
                      else Priority.STANDARD),
            deadline_seconds=deadline_seconds,
            max_retries=max_retries or 0,
            arrival_seconds=arrival_seconds)

    def _admit(self, request: ServiceRequest) -> Optional[RejectReason]:
        alive = len(self.pool.alive()) or 1
        busy_tail = max(0.0, self.busy_until - self.clock)
        backlog = busy_tail + self._pending_cost_seconds / alive
        tenant_backlog = backlog
        if self.policy.fair_queueing:
            # Under WFQ a tenant's work drains at its weight share of
            # the pool, so the tail *its* next request faces is its own
            # queued cost expanded by that share -- never more than the
            # global figure (with one bucket the two coincide exactly,
            # which is what keeps untagged decisions bit-identical to
            # the pre-tenancy controller).
            own = self._pending_cost_by_tenant.get(request.tenant, 0.0)
            share = self._weight_share(request.tenant)
            tenant_backlog = busy_tail + min(
                self._pending_cost_seconds, own / share) / alive
        return self.admission.admit(request, backlog, tenant_backlog,
                                    now=self.clock)

    def _weight_share(self, tenant: Optional[str]) -> float:
        """``tenant``'s weight share among tenants with queued work."""
        active = set(self._pending_cost_by_tenant)
        active.add(tenant)
        total = sum(self.policy.weight(name) for name in active)
        if total <= 0.0:
            return 1.0
        return self.policy.weight(tenant) / total

    def _add_tenant_pending(self, request: ServiceRequest,
                            sign: int) -> None:
        """Track queued estimated cost per tenant (the WFQ backlog
        book); entries are pruned at zero so the active-tenant set
        never accretes float residue."""
        book = self._pending_cost_by_tenant
        value = (book.get(request.tenant, 0.0)
                 + sign * request.estimated_cost_seconds)
        if abs(value) < 1e-15:
            book.pop(request.tenant, None)
        else:
            book[request.tenant] = value

    def _reject(self, ticket: ServiceTicket, reason: RejectReason,
                tenant: Optional[str] = None) -> None:
        ticket.state = RequestState.REJECTED
        ticket.reject_reason = reason
        by_reason = self.report_data.rejected_by_reason
        by_reason[reason.value] = by_reason.get(reason.value, 0) + 1
        if tenant is not None:
            sheds = self.report_data.sheds_by_tenant
            sheds[tenant] = sheds.get(tenant, 0) + 1
        self.pool.account_shed()
        if self.on_resolved is not None:
            self.on_resolved(ticket)

    # -- dispatch -------------------------------------------------------------

    def step(self) -> bool:
        """Dispatch one micro-batched wave; False when queue is empty."""
        wave = self.batcher.form_wave(self.queue)
        if not wave:
            return False
        for request in wave:
            self._pending_cost_seconds -= request.estimated_cost_seconds
            self._add_tenant_pending(request, -1)
        not_before = max(r.effective_arrival_seconds for r in wave)
        start_estimate = max(self.busy_until, not_before)
        survivors = [r for r in wave
                     if not self._expire(r, start_estimate)]
        if not survivors:
            return True
        dispatch = self.pool.dispatch(
            [r.call for r in survivors], not_before=not_before,
            hint=survivors[0].placement)
        for request in survivors:
            serial, overlapped = self.admission.price(request.call)
            self.report_data.modeled_serial_seconds += serial
        wave_end = dispatch.end_seconds
        self.clock = max(self.clock, wave_end)
        self.report_data.busy_seconds += (wave_end
                                          - dispatch.start_seconds)
        self.report_data.waves += 1
        for request, result in zip(survivors, dispatch.results):
            request.attempts += 1
            self._complete(request, result, wave_end)
        return True

    def _expire(self, request: ServiceRequest, start: float) -> bool:
        """Deadline check at dispatch: True when the request must not
        run now.  A miss with retry budget re-enqueues at the front with
        the deadline re-based to "now" (the client re-issuing); a miss
        without budget times out -- the work is shed, never executed."""
        deadline = request.absolute_deadline
        if deadline is None:
            return False
        if start + request.estimated_cost_seconds <= deadline + 1e-12:
            return False
        request.attempts += 1
        if request.attempts <= request.max_retries:
            request.effective_arrival_seconds = max(start, self.clock)
            self.queue.requeue_front(request)
            self._pending_cost_seconds += request.estimated_cost_seconds
            self._add_tenant_pending(request, +1)
            self.report_data.retried += 1
            return True
        ticket = self._tickets[request.request_id]
        ticket.state = RequestState.TIMED_OUT
        ticket.attempts = request.attempts
        self.report_data.timed_out += 1
        self._release_in_flight(request)
        if request.tenant is not None:
            sheds = self.report_data.sheds_by_tenant
            sheds[request.tenant] = sheds.get(request.tenant, 0) + 1
        self.pool.account_shed()
        if self.on_resolved is not None:
            self.on_resolved(ticket)
        return True

    def _release_in_flight(self, request: ServiceRequest) -> None:
        remaining = (self._in_flight_by_tenant.get(request.tenant, 0)
                     - 1)
        if remaining > 0:
            self._in_flight_by_tenant[request.tenant] = remaining
        else:
            self._in_flight_by_tenant.pop(request.tenant, None)

    def _complete(self, request: ServiceRequest,
                  result: Union[Frame, int], wave_end: float) -> None:
        ticket = self._tickets[request.request_id]
        ticket.state = RequestState.COMPLETED
        ticket.outcome = result
        ticket.completion_seconds = wave_end
        ticket.attempts = request.attempts
        self._release_in_flight(request)
        self.report_data.completed += 1
        self.report_data.latency.record(
            wave_end - request.arrival_seconds)
        # The per-tenant books tally *completions* -- they are bumped
        # here, nowhere else, so ``calls_by_tenant`` can never drift
        # from ``completed`` (it used to be tallied separately in the
        # dispatch loop, which let a wave that died between the two
        # loops leave tenant tallies with no completion behind them).
        if request.tenant is not None:
            by_tenant = self.report_data.calls_by_tenant
            by_tenant[request.tenant] = (
                by_tenant.get(request.tenant, 0) + 1)
        if self.on_resolved is not None:
            self.on_resolved(ticket)

    # -- draining -------------------------------------------------------------

    def run_until(self, seconds: float) -> None:
        """Advance the modeled clock to ``seconds``, dispatching every
        wave the pool can start before then (open-loop serving)."""
        while self.queue and self.busy_until < seconds:
            self.step()
        self.clock = max(self.clock, seconds)

    def drain(self) -> ServiceReport:
        """Dispatch until the queue is empty; returns the books.

        Always finalises -- a drain that completed zero requests still
        returns a coherent report whose latency percentiles read
        ``None`` (undefined) and whose per-tenant books are empty: zero
        completions means zero per-tenant completions, whatever stale
        tallies an earlier accounting bug (or a caller poking
        ``report_data``) may have left behind.
        """
        while self.queue:
            self.step()
        if self.report_data.completed == 0:
            self.report_data.calls_by_tenant.clear()
        if self.report_data.rejected + self.report_data.timed_out == 0:
            # Same stale-tally contract for the shedding book: zero
            # sheds means zero per-tenant sheds.
            self.report_data.sheds_by_tenant.clear()
        return self.report()

    def release(self, ticket: ServiceTicket) -> None:
        """Forget a *resolved* ticket's service-side record.

        The service keeps every ticket (and its result frame) alive so
        late ``result()`` calls work; a million-request open-loop
        replay cannot afford that.  Releasing drops the internal
        request-id entry -- the caller's ticket object still works, the
        books are untouched, only the service-side reference is gone.
        Raises :class:`~repro.service.request.ServiceError` for a
        ticket still in flight (its completion would dangle).
        """
        if not ticket.done:
            raise ServiceError(
                f"request {ticket.request_id} is still queued; only "
                f"resolved tickets can be released")
        self._tickets.pop(ticket.request_id, None)

    def report(self) -> ServiceReport:
        """The books so far (live object; drain() returns the same)."""
        self.report_data.queue_depth = len(self.queue)
        self.report_data.queue_high_water = self.queue.high_water
        self.report_data.coalesced_requests = (
            self.batcher.coalesced_requests)
        self.report_data.clock_seconds = self.clock
        self.report_data.clock_hz = self.timing.clock_hz
        self.report_data.pool = self.pool.report(self.clock)
        return self.report_data
