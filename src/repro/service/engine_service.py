"""EngineService: the synchronous request front end over the stack.

The paper's deployment is one application owning the board.  The
ROADMAP's north star is the opposite: many independent clients and one
(modelled) engine pool.  :class:`EngineService` is the layer between --
it accepts :class:`~repro.addresslib.library.BatchCall` requests,
admits or sheds them (:mod:`repro.service.admission`), queues them with
priorities and bounded depth (:mod:`repro.service.queue`), coalesces
compatible calls into waves (:mod:`repro.service.batcher`) and executes
each wave through :meth:`AddressLib.run_batch`, optionally sharded by a
:class:`~repro.host.scheduler.CallScheduler`.

Time is *modeled* time: the service keeps a virtual clock in seconds of
the validated overlap timing model, exactly as the Table 3 evaluation
keeps modelled wall clocks.  That makes every admission decision,
deadline, and latency percentile deterministic and machine-independent
-- and bit-exactness trivially auditable, because execution itself is
the same vector executor the serial path runs.

The flow::

    service = EngineService(queue_depth=64,
                            policy=AdmissionPolicy(0.050))
    ticket = service.submit(BatchCall.intra(INTRA_GRAD, frame),
                            priority=Priority.INTERACTIVE,
                            deadline_seconds=0.030)
    report = service.drain()          # -> ServiceReport
    edges = ticket.result()           # bit-exact Frame
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..addresslib.library import AddressLib, BatchCall, SoftwareBackend
from ..host.scheduler import CallScheduler
from ..image.frame import Frame
from ..perf.latency import LatencyTracker
from ..perf.timing import EngineTimingModel
from .admission import AdmissionController, AdmissionPolicy
from .batcher import MicroBatcher
from .queue import RequestQueue
from .request import (Priority, RejectReason, RequestState, ServiceRequest,
                      ServiceTicket)


def _makespan(costs: Sequence[float], engines: int) -> float:
    """LPT list-scheduled makespan of ``costs`` across ``engines``
    (the same modelled-dispatch rule the call scheduler prices with)."""
    loads = [0.0] * max(1, engines)
    for cost in sorted(costs, reverse=True):
        slot = loads.index(min(loads))
        loads[slot] += cost
    return max(loads)


@dataclass
class ServiceReport:
    """The books of one service run, surfaced alongside ``RunReport``."""

    #: Requests offered to :meth:`EngineService.submit`.
    submitted: int = 0
    accepted: int = 0
    completed: int = 0
    #: Requests refused at admission, by :class:`RejectReason` value.
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Requests whose deadline expired (after exhausting retries).
    timed_out: int = 0
    #: Deadline-miss re-enqueues (a request may retry several times).
    retried: int = 0
    #: Dispatch waves executed.
    waves: int = 0
    #: Requests that rode a wave with at least one compatible companion.
    coalesced_requests: int = 0
    queue_depth: int = 0
    queue_high_water: int = 0
    #: Modeled engine-busy seconds (sum of wave makespans).
    busy_seconds: float = 0.0
    #: What the executed calls would cost serially under the no-overlap
    #: (sum) model -- the denominator of :attr:`overlap_efficiency`.
    modeled_serial_seconds: float = 0.0
    #: Modeled end-to-end latency of completed requests.
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    #: Service clock when the report was cut.
    clock_seconds: float = 0.0

    @property
    def rejected(self) -> int:
        return sum(self.rejected_by_reason.values())

    @property
    def reject_rate(self) -> float:
        """Rejected over submitted; 0.0 before any submission."""
        if self.submitted == 0:
            return 0.0
        return self.rejected / self.submitted

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the serial (sum) model the pipeline + wave
        dispatch hid: ``1 - busy / serial``, 0.0 when nothing ran."""
        if self.modeled_serial_seconds <= 0.0:
            return 0.0
        return 1.0 - self.busy_seconds / self.modeled_serial_seconds

    @property
    def in_flight(self) -> int:
        """Accepted requests not yet resolved (still queued); retried
        requests stay in this count until they complete or expire."""
        return self.accepted - self.completed - self.timed_out


class EngineService:
    """Synchronous submit/drain front end over an AddressLib stack.

    ``lib`` defaults to a software-backed library; hand it an
    engine-backed one (``AddressLib(EngineBackend())``) to serve the
    coprocessor model, or pass a :class:`CallScheduler` to shard waves
    across engine workers.  ``virtual_engines`` sets how many modelled
    boards the makespan accounting assumes (defaults to the scheduler's
    worker count, or 1): execution is bit-exact either way, only the
    modelled timing changes -- the same machine-independence contract as
    the scheduler's ``BatchReport``.
    """

    def __init__(self, lib: Optional[AddressLib] = None,
                 scheduler: Optional[CallScheduler] = None,
                 queue_depth: int = 64,
                 max_batch: int = 8,
                 policy: Optional[AdmissionPolicy] = None,
                 admission: Optional[AdmissionController] = None,
                 virtual_engines: Optional[int] = None,
                 timing: Optional[EngineTimingModel] = None) -> None:
        self.lib = lib or AddressLib(SoftwareBackend())
        self.scheduler = scheduler
        self.timing = timing or (scheduler.timing if scheduler
                                 else EngineTimingModel())
        special = frozenset(getattr(self.lib.backend,
                                    "special_inter_ops", frozenset()))
        self.admission = admission or AdmissionController(
            timing=self.timing, policy=policy, special_inter_ops=special)
        self.queue = RequestQueue(max_depth=queue_depth)
        self.batcher = MicroBatcher(max_batch=max_batch)
        self.virtual_engines = max(1, virtual_engines
                                   or (scheduler.max_workers
                                       if scheduler else 1))
        #: The service's modeled "now": advanced by arrivals and waves.
        self.clock = 0.0
        #: Modeled time the engine pool is busy until.
        self.busy_until = 0.0
        self.report_data = ServiceReport()
        self._pending_cost_seconds = 0.0
        self._next_request_id = 0
        self._tickets: Dict[int, ServiceTicket] = {}

    # -- submission -----------------------------------------------------------

    def submit(self, call: BatchCall,
               priority: Priority = Priority.STANDARD,
               deadline_seconds: Optional[float] = None,
               max_retries: int = 0,
               arrival_seconds: Optional[float] = None) -> ServiceTicket:
        """Offer one call; returns a ticket that is either queued or
        already rejected (explicit backpressure, never an exception).

        ``arrival_seconds`` places the request on the modeled clock (an
        open-loop load generator submits a whole trace this way); it
        defaults to "now" and never moves the clock backwards.
        """
        if arrival_seconds is not None:
            self.clock = max(self.clock, arrival_seconds)
        arrival = self.clock
        serial_cost, overlapped_cost = self.admission.price(call)
        request = ServiceRequest(
            request_id=self._next_request_id, call=call,
            priority=priority, arrival_seconds=arrival,
            deadline_seconds=deadline_seconds, max_retries=max_retries,
            estimated_cost_seconds=overlapped_cost)
        self._next_request_id += 1
        ticket = ServiceTicket(request_id=request.request_id,
                               priority=priority,
                               arrival_seconds=arrival)
        self._tickets[request.request_id] = ticket
        self.report_data.submitted += 1

        reason = self._admit(request)
        if reason is not None:
            self._reject(ticket, reason)
            return ticket
        offered = self.queue.offer(request)
        if offered is not None:
            self._reject(ticket, offered)
            return ticket
        self._pending_cost_seconds += request.estimated_cost_seconds
        self.report_data.accepted += 1
        return ticket

    def _admit(self, request: ServiceRequest) -> Optional[RejectReason]:
        backlog = (max(0.0, self.busy_until - self.clock)
                   + self._pending_cost_seconds)
        return self.admission.admit(request, backlog)

    def _reject(self, ticket: ServiceTicket,
                reason: RejectReason) -> None:
        ticket.state = RequestState.REJECTED
        ticket.reject_reason = reason
        by_reason = self.report_data.rejected_by_reason
        by_reason[reason.value] = by_reason.get(reason.value, 0) + 1
        self._account_shed()

    def _account_shed(self) -> None:
        """Driver accounting hook: shed calls show in the board books."""
        driver = getattr(self.lib.backend, "driver", None)
        if driver is not None:
            driver.account_shed()

    # -- dispatch -------------------------------------------------------------

    def step(self) -> bool:
        """Dispatch one micro-batched wave; False when queue is empty."""
        wave = self.batcher.form_wave(self.queue)
        if not wave:
            return False
        for request in wave:
            self._pending_cost_seconds -= request.estimated_cost_seconds
        start = max(self.busy_until,
                    max(r.effective_arrival_seconds for r in wave))
        survivors = [r for r in wave if not self._expire(r, start)]
        if not survivors:
            return True
        results = self.lib.run_batch([r.call for r in survivors],
                                     scheduler=self.scheduler)
        costs = []
        for request in survivors:
            serial, overlapped = self.admission.price(request.call)
            self.report_data.modeled_serial_seconds += serial
            costs.append(overlapped)
        wave_end = start + _makespan(costs, self.virtual_engines)
        self.busy_until = wave_end
        self.clock = max(self.clock, wave_end)
        self.report_data.busy_seconds += wave_end - start
        self.report_data.waves += 1
        for request, result in zip(survivors, results):
            request.attempts += 1
            self._complete(request, result, wave_end)
        return True

    def _expire(self, request: ServiceRequest, start: float) -> bool:
        """Deadline check at dispatch: True when the request must not
        run now.  A miss with retry budget re-enqueues at the front with
        the deadline re-based to "now" (the client re-issuing); a miss
        without budget times out -- the work is shed, never executed."""
        deadline = request.absolute_deadline
        if deadline is None:
            return False
        if start + request.estimated_cost_seconds <= deadline + 1e-12:
            return False
        request.attempts += 1
        if request.attempts <= request.max_retries:
            request.effective_arrival_seconds = max(start, self.clock)
            self.queue.requeue_front(request)
            self._pending_cost_seconds += request.estimated_cost_seconds
            self.report_data.retried += 1
            return True
        ticket = self._tickets[request.request_id]
        ticket.state = RequestState.TIMED_OUT
        ticket.attempts = request.attempts
        self.report_data.timed_out += 1
        self._account_shed()
        return True

    def _complete(self, request: ServiceRequest,
                  result: Union[Frame, int], wave_end: float) -> None:
        ticket = self._tickets[request.request_id]
        ticket.state = RequestState.COMPLETED
        ticket.outcome = result
        ticket.completion_seconds = wave_end
        ticket.attempts = request.attempts
        self.report_data.completed += 1
        self.report_data.latency.record(
            wave_end - request.arrival_seconds)

    # -- draining -------------------------------------------------------------

    def run_until(self, seconds: float) -> None:
        """Advance the modeled clock to ``seconds``, dispatching every
        wave the engine can start before then (open-loop serving)."""
        while self.queue and self.busy_until < seconds:
            self.step()
        self.clock = max(self.clock, seconds)

    def drain(self) -> ServiceReport:
        """Dispatch until the queue is empty; returns the books."""
        while self.queue:
            self.step()
        return self.report()

    def report(self) -> ServiceReport:
        """The books so far (live object; drain() returns the same)."""
        self.report_data.queue_depth = len(self.queue)
        self.report_data.queue_high_water = self.queue.high_water
        self.report_data.coalesced_requests = (
            self.batcher.coalesced_requests)
        self.report_data.clock_seconds = self.clock
        return self.report_data
