"""Admission control: price the call, then accept or shed.

The key asset is that every AddressEngine call has a *closed-form* cost
(:class:`~repro.perf.timing.EngineTimingModel`, validated against the
cycle model): the controller can know, at enqueue time and without
executing anything, how long the backlog in front of a request will
take.  Admission then stops being a heuristic ("queue length < N") and
becomes a latency statement: a request is accepted only if the modeled
backlog still fits inside its class's deadline budget.

Priority classes get *graduated* budgets: BULK is shed first (it can
retry any time), INTERACTIVE last -- the classic way a multimedia
service keeps its interactive tail latency flat under overload.

Tenancy adds two refinements, both driven by the
:class:`~repro.service.policy.ServicePolicy`:

* **p95 targets cap the budget.**  A tenant with
  ``p95_target_seconds`` is never admitted against a backlog its
  target could not absorb -- the budget it is judged by is
  ``min(class budget, p95 target)``.
* **Arrival-rate shading.**  The controller keeps an exponentially
  decayed per-tenant arrival counter on the *modeled* clock
  (deterministic: same trace, same estimates on any machine).  A
  tenant whose observed share of the arrival stream exceeds its
  fair weight share has its budget shaded by
  ``fair_share / observed_share`` -- a 3x-flooding tenant is judged
  against a third of the budget, so it absorbs the shedding while the
  tenants inside their share keep the full one.

The backlog a tenant is judged against is its *own* weighted-fair
backlog (the service computes it from the per-tenant queued cost and
the WFQ share), so one tenant's flood never inflates the figure a
well-behaved neighbour is admitted under.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Optional, Tuple

from ..addresslib.library import BatchCall
from ..perf.timing import EngineTimingModel
# The canonical pricing arithmetic lives with the pool (the lowest
# layer that needs it); re-exported here because admission is where
# service code historically imported it from.
from ..pool.pricing import call_cost_seconds
from .policy import (AdmissionPolicy, ServicePolicy,
                     coerce_service_policy)
from .request import Priority, RejectReason, ServiceRequest

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "call_cost_seconds",
]


class _RateEstimate:
    """Exponentially decayed arrival counter for one tenant."""

    __slots__ = ("count", "last_seconds")

    def __init__(self) -> None:
        self.count = 0.0
        self.last_seconds = 0.0

    def decayed(self, now: float, tau: float) -> float:
        """The counter decayed to ``now`` (without mutating)."""
        elapsed = max(0.0, now - self.last_seconds)
        return self.count * math.exp(-elapsed / tau)


class AdmissionController:
    """Prices requests and sheds the ones the backlog would drown.

    Configure with ``policy=ServicePolicy(...)``; the pre-tenancy
    ``policy=AdmissionPolicy(...)`` spelling still works but warns
    with :class:`DeprecationWarning`.
    """

    def __init__(self, timing: Optional[EngineTimingModel] = None,
                 policy: object = None,
                 special_inter_ops: FrozenSet[str] = frozenset()) -> None:
        self.timing = timing or EngineTimingModel()
        self.service_policy: ServicePolicy = coerce_service_policy(
            policy, owner="AdmissionController", legacy={})
        #: Legacy alias: the load-shedding budget knobs.
        self.policy: AdmissionPolicy = self.service_policy.admission
        self.special_inter_ops = special_inter_ops
        #: Requests shed, by reason value (for the service report).
        self.shed_by_reason: Dict[str, int] = {}
        self._rates: Dict[Optional[str], _RateEstimate] = {}

    def price(self, call: BatchCall) -> Tuple[float, float]:
        """(serial, overlapped) modeled seconds of ``call``."""
        return call_cost_seconds(call, self.timing,
                                 self.special_inter_ops)

    # -- arrival-rate estimation ----------------------------------------------

    def observe(self, tenant: Optional[str], now: float) -> None:
        """Fold one arrival of ``tenant`` at modeled time ``now`` into
        the decayed per-tenant rate estimate (every submission counts,
        accepted or shed -- it is the *offered* stream being sized)."""
        tau = self.service_policy.rate_tau_seconds
        estimate = self._rates.get(tenant)
        if estimate is None:
            estimate = self._rates[tenant] = _RateEstimate()
        estimate.count = estimate.decayed(now, tau) + 1.0
        estimate.last_seconds = max(estimate.last_seconds, now)

    def observed_rate(self, tenant: Optional[str],
                      now: float) -> float:
        """``tenant``'s decayed arrival rate (requests per modeled s)."""
        estimate = self._rates.get(tenant)
        if estimate is None:
            return 0.0
        tau = self.service_policy.rate_tau_seconds
        return estimate.decayed(now, tau) / tau

    def _share_shade(self, tenant: Optional[str], now: float) -> float:
        """``min(1, fair share / observed share)`` of ``tenant``.

        1.0 for tenants inside their weighted fair share of the
        observed arrival stream; < 1.0 for the ones flooding past it.
        """
        tau = self.service_policy.rate_tau_seconds
        own = 0.0
        total_rate = 0.0
        total_weight = 0.0
        for name, estimate in self._rates.items():
            rate = estimate.decayed(now, tau) / tau
            if rate <= 1e-9:
                continue
            total_rate += rate
            total_weight += self.service_policy.weight(name)
            if name == tenant:
                own = rate
        if own <= 1e-9 or total_rate <= 1e-9 or total_weight <= 0.0:
            return 1.0
        fair = self.service_policy.weight(tenant) / total_weight
        observed = own / total_rate
        if observed <= fair:
            return 1.0
        return fair / observed

    # -- the decision ---------------------------------------------------------

    def effective_budget(self, priority: Priority,
                         tenant: Optional[str],
                         now: Optional[float] = None) -> Optional[float]:
        """The backlog budget this (class, tenant) pair is judged by:
        the graduated class budget, capped at the tenant's p95 target,
        shaded by the tenant's arrival overshare.  ``None`` disables
        shedding (no budget, no target)."""
        budget = self.service_policy.admission.budget_for(priority)
        target = self.service_policy.tenant(tenant).p95_target_seconds
        if target is not None:
            budget = target if budget is None else min(budget, target)
        if budget is not None and now is not None:
            budget *= self._share_shade(tenant, now)
        return budget

    def admit(self, request: ServiceRequest, backlog_seconds: float,
              tenant_backlog_seconds: Optional[float] = None,
              now: Optional[float] = None) -> Optional[RejectReason]:
        """Accept (``None``) or shed ``request`` given the backlog.

        ``backlog_seconds`` is the modeled time until the engine would
        *start* this request: the current wave's unfinished tail plus
        the estimated cost of everything already queued.
        ``tenant_backlog_seconds``, when the caller computes one, is
        the weighted-fair refinement -- the tail this tenant's *own*
        work faces under WFQ, never more than the global figure -- and
        is what the budget is compared against, so an untagged
        single-bucket service reproduces the pre-tenancy decision
        exactly.  If the backlog exceeds the effective budget the
        request is shed now rather than queued to rot.  The request's
        *own* deadline is deliberately not examined here -- admission
        enforces the service's latency posture, while individual
        deadlines are enforced at dispatch (timeout + bounded retry),
        where the real start time is known.
        """
        budget = self.effective_budget(request.priority, request.tenant,
                                       now)
        backlog = (tenant_backlog_seconds
                   if tenant_backlog_seconds is not None
                   else backlog_seconds)
        if budget is not None and backlog > budget:
            self._count(RejectReason.OVERLOAD)
            return RejectReason.OVERLOAD
        return None

    def _count(self, reason: RejectReason) -> None:
        self.shed_by_reason[reason.value] = (
            self.shed_by_reason.get(reason.value, 0) + 1)
