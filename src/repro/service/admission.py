"""Admission control: price the call, then accept or shed.

The key asset is that every AddressEngine call has a *closed-form* cost
(:class:`~repro.perf.timing.EngineTimingModel`, validated against the
cycle model): the controller can know, at enqueue time and without
executing anything, how long the backlog in front of a request will
take.  Admission then stops being a heuristic ("queue length < N") and
becomes a latency statement: a request is accepted only if the modeled
backlog still fits inside its class's deadline budget.

Priority classes get *graduated* budgets: BULK is shed first (it can
retry any time), INTERACTIVE last -- the classic way a multimedia
service keeps its interactive tail latency flat under overload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..addresslib.library import BatchCall
from ..perf.timing import EngineTimingModel
# The canonical pricing arithmetic lives with the pool (the lowest
# layer that needs it); re-exported here because admission is where
# service code historically imported it from.
from ..pool.pricing import call_cost_seconds
from .request import Priority, RejectReason, ServiceRequest

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "call_cost_seconds",
]


def _default_budget_fractions() -> Dict[Priority, float]:
    return {Priority.INTERACTIVE: 1.0,
            Priority.STANDARD: 0.75,
            Priority.BULK: 0.5}


@dataclass
class AdmissionPolicy:
    """The knobs of the load-shedding decision."""

    #: Modeled backlog (busy tail + queued cost) a newly admitted
    #: INTERACTIVE request may face; ``None`` disables shedding.
    deadline_budget_seconds: Optional[float] = None
    #: Per-class fraction of the budget (BULK sheds first).
    budget_fractions: Dict[Priority, float] = field(
        default_factory=_default_budget_fractions)

    def budget_for(self, priority: Priority) -> Optional[float]:
        if self.deadline_budget_seconds is None:
            return None
        return (self.deadline_budget_seconds
                * self.budget_fractions.get(priority, 1.0))


class AdmissionController:
    """Prices requests and sheds the ones the backlog would drown."""

    def __init__(self, timing: Optional[EngineTimingModel] = None,
                 policy: Optional[AdmissionPolicy] = None,
                 special_inter_ops: FrozenSet[str] = frozenset()) -> None:
        self.timing = timing or EngineTimingModel()
        self.policy = policy or AdmissionPolicy()
        self.special_inter_ops = special_inter_ops
        #: Requests shed, by reason value (for the service report).
        self.shed_by_reason: Dict[str, int] = {}

    def price(self, call: BatchCall) -> Tuple[float, float]:
        """(serial, overlapped) modeled seconds of ``call``."""
        return call_cost_seconds(call, self.timing,
                                 self.special_inter_ops)

    def admit(self, request: ServiceRequest,
              backlog_seconds: float) -> Optional[RejectReason]:
        """Accept (``None``) or shed ``request`` given the backlog.

        ``backlog_seconds`` is the modeled time until the engine would
        *start* this request: the current wave's unfinished tail plus
        the estimated cost of everything already queued.  If it exceeds
        the class budget the request is shed now rather than queued to
        rot.  The request's *own* deadline is deliberately not examined
        here -- admission enforces the service's latency posture, while
        individual deadlines are enforced at dispatch (timeout + bounded
        retry), where the real start time is known.
        """
        budget = self.policy.budget_for(request.priority)
        if budget is not None and backlog_seconds > budget:
            self._count(RejectReason.OVERLOAD)
            return RejectReason.OVERLOAD
        return None

    def _count(self, reason: RejectReason) -> None:
        self.shed_by_reason[reason.value] = (
            self.shed_by_reason.get(reason.value, 0) + 1)
