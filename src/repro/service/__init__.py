"""The AddressEngine service layer: a request front end over the stack.

Turns the driver + scheduler stack into a servable engine: bounded
priority queueing with explicit backpressure (:class:`RequestQueue`),
model-priced admission control (:class:`AdmissionController`),
micro-batching of compatible calls (:class:`MicroBatcher`), per-request
deadlines with bounded retry, and a :class:`ServiceReport` of the
serving health -- all on the deterministic modeled clock of the overlap
timing model.  See ``docs/SERVICE.md``.
"""

from .admission import (AdmissionController, AdmissionPolicy,
                        call_cost_seconds)
from .batcher import BatchKey, MicroBatcher
from .engine_service import EngineService, ServiceReport
from .policy import ServicePolicy, TenantPolicy
from .queue import RequestQueue
from .request import (Priority, RejectReason, RequestState, ServiceError,
                      ServiceRequest, ServiceTicket)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BatchKey",
    "EngineService",
    "MicroBatcher",
    "Priority",
    "RejectReason",
    "RequestQueue",
    "RequestState",
    "ServiceError",
    "ServicePolicy",
    "ServiceReport",
    "ServiceRequest",
    "ServiceTicket",
    "TenantPolicy",
    "call_cost_seconds",
]
