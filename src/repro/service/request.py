"""Service requests: one AddressLib call wrapped for the front end.

A request is a :class:`~repro.addresslib.library.BatchCall` plus the
serving metadata the paper's Image Level Controller never needed --
arrival time, priority class, deadline, retry budget -- because the
board served exactly one application.  A front end serving many
independent clients needs all four.

Everything here is pure data plus a :class:`ServiceTicket` handle the
client polls; the mechanics live in :mod:`repro.service.engine_service`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from ..addresslib.library import BatchCall
from ..image.frame import Frame


class Priority(enum.IntEnum):
    """Request priority classes; lower value drains first.

    The classes mirror how a visual-processing service is actually
    loaded: INTERACTIVE for viewfinder/preview calls a user is waiting
    on, STANDARD for per-frame pipeline work, BULK for background
    re-processing that tolerates arbitrary queueing delay.
    """

    INTERACTIVE = 0
    STANDARD = 1
    BULK = 2

    def __str__(self) -> str:
        return self.name.lower()


class RejectReason(enum.Enum):
    """Why admission refused a request (explicit backpressure)."""

    #: The bounded queue is at depth; the client must back off.
    QUEUE_FULL = "queue_full"
    #: The modeled backlog already exceeds the class's deadline budget:
    #: accepting the call would only let it time out in the queue.
    OVERLOAD = "overload"
    #: The tenant is at its own queued or in-flight cap
    #: (:class:`~repro.service.policy.TenantPolicy`); everyone else's
    #: capacity is untouched.
    TENANT_QUOTA = "tenant_quota"

    def __str__(self) -> str:
        return self.value


class RequestState(enum.Enum):
    """Lifecycle of one request inside the service."""

    QUEUED = "queued"
    COMPLETED = "completed"
    REJECTED = "rejected"
    TIMED_OUT = "timed_out"

    def __str__(self) -> str:
        return self.value


@dataclass
class ServiceRequest:
    """One admitted call with its serving metadata (internal record)."""

    request_id: int
    call: BatchCall
    priority: Priority
    #: When the request arrived, in modeled seconds on the service clock.
    arrival_seconds: float
    #: Relative completion budget; ``None`` means no deadline.
    deadline_seconds: Optional[float]
    #: How many times a deadline miss may re-enqueue the request.
    max_retries: int = 0
    #: Dispatch attempts so far (grows on every deadline retry).
    attempts: int = 0
    #: Admission-time cost estimate (overlap timing model seconds).
    estimated_cost_seconds: float = 0.0
    #: The deadline is re-based here on retry (client re-issues).
    effective_arrival_seconds: float = 0.0
    #: Tenant label the books attribute this call to (``None``: untagged).
    tenant: Optional[str] = None
    #: Preferred pool worker id (a placement *hint*, not a constraint).
    placement: Optional[int] = None

    def __post_init__(self) -> None:
        self.effective_arrival_seconds = self.arrival_seconds

    @property
    def absolute_deadline(self) -> Optional[float]:
        """Latest modeled completion time this attempt tolerates."""
        if self.deadline_seconds is None:
            return None
        return self.effective_arrival_seconds + self.deadline_seconds


class ServiceError(RuntimeError):
    """Asking a ticket for a result it does not have."""


@dataclass
class ServiceTicket:
    """The client's handle: filled in as the request moves through.

    ``submit`` returns the ticket immediately; a rejected request comes
    back already resolved (``state`` REJECTED with a ``reject_reason``),
    an accepted one resolves during ``drain``/``run_until``.
    """

    request_id: int
    priority: Priority
    arrival_seconds: float
    state: RequestState = RequestState.QUEUED
    reject_reason: Optional[RejectReason] = None
    #: Functional result once COMPLETED (frame, or scalar for reduces).
    outcome: Optional[Union[Frame, int]] = field(default=None, repr=False)
    #: Modeled completion time (service clock) once COMPLETED.
    completion_seconds: Optional[float] = None
    #: Dispatch attempts consumed (>= 2 means the request was retried).
    attempts: int = 0

    @property
    def done(self) -> bool:
        return self.state is not RequestState.QUEUED

    @property
    def accepted(self) -> bool:
        return self.state is not RequestState.REJECTED

    @property
    def latency_seconds(self) -> Optional[float]:
        """Modeled end-to-end latency from *original* arrival."""
        if self.completion_seconds is None:
            return None
        return self.completion_seconds - self.arrival_seconds

    def result(self) -> Union[Frame, int]:
        """The call's functional result; raises unless COMPLETED."""
        if self.state is not RequestState.COMPLETED:
            raise ServiceError(
                f"request {self.request_id} has no result: state is "
                f"{self.state}"
                + (f" ({self.reject_reason})" if self.reject_reason
                   else ""))
        assert self.outcome is not None
        return self.outcome
