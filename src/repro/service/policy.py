"""ServicePolicy: every serving knob of the front end, in one record.

The service layer grew knob by knob -- ``queue_depth=`` on the service,
``max_depth=`` on the queue, ``max_batch=`` on the batcher,
``policy=AdmissionPolicy(...)`` on the controller -- four constructors,
four loose keyword sets.  This module is the redesign that stops that,
the same move :class:`~repro.api.SubmitOptions` made for per-request
metadata: one frozen :class:`ServicePolicy` carries the queue bound,
the wave width, the admission budget, and the per-tenant SLO contract
(:class:`TenantPolicy`: fair-queueing weight, queued/in-flight quotas,
p95 deadline target), and is accepted by ``EngineService``,
``RequestQueue``, ``MicroBatcher`` and ``AdmissionController`` alike.
The legacy keyword spellings still work but warn with
:class:`DeprecationWarning`; mixing a policy object with loose
keywords in one constructor call is a :class:`TypeError`.

Deliberately light: this module imports nothing beyond
:mod:`repro.service.request`, so the static analyzer
(:mod:`repro.analysis`, rule SVC003) can inspect a policy without
dragging in the pool or the timing model.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .request import Priority

__all__ = [
    "AdmissionPolicy",
    "ServicePolicy",
    "TenantPolicy",
]


def _default_budget_fractions() -> Dict[Priority, float]:
    return {Priority.INTERACTIVE: 1.0,
            Priority.STANDARD: 0.75,
            Priority.BULK: 0.5}


@dataclass
class AdmissionPolicy:
    """The knobs of the load-shedding decision."""

    #: Modeled backlog (busy tail + queued cost) a newly admitted
    #: INTERACTIVE request may face; ``None`` disables shedding.
    deadline_budget_seconds: Optional[float] = None
    #: Per-class fraction of the budget (BULK sheds first).
    budget_fractions: Dict[Priority, float] = field(
        default_factory=_default_budget_fractions)

    def budget_for(self, priority: Priority) -> Optional[float]:
        if self.deadline_budget_seconds is None:
            return None
        return (self.deadline_budget_seconds
                * self.budget_fractions.get(priority, 1.0))


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's SLO contract with the service.

    ``weight`` is the tenant's fair-queueing share *within* each
    priority class: at equal weights tenants interleave one-for-one;
    a weight-2 tenant drains two requests for every one of a weight-1
    neighbour.  The quotas are hard per-tenant caps enforced before
    admission pricing (``TENANT_QUOTA`` rejects); the p95 target makes
    admission shade that tenant's backlog budget so its modeled
    completion tail stays inside the target even while another tenant
    floods.
    """

    #: Fair-queueing weight within each priority class (> 0).
    weight: float = 1.0
    #: Most requests this tenant may hold queued at once; ``None``
    #: leaves only the global depth bound.
    max_queued: Optional[int] = None
    #: Most accepted-but-unresolved requests at once; ``None``: no cap.
    max_in_flight: Optional[int] = None
    #: Modeled p95 completion target admission protects; ``None``: no
    #: target (the tenant rides the plain class budget).
    p95_target_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(
                f"tenant weight must be > 0, got {self.weight}")
        if self.max_queued is not None and self.max_queued < 1:
            raise ValueError(
                f"max_queued must be >= 1, got {self.max_queued}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}")
        if (self.p95_target_seconds is not None
                and self.p95_target_seconds <= 0):
            raise ValueError(
                f"p95_target_seconds must be > 0, got "
                f"{self.p95_target_seconds}")


#: The neutral contract untagged (and unconfigured) tenants serve under.
DEFAULT_TENANT_POLICY = TenantPolicy()


@dataclass(frozen=True)
class ServicePolicy:
    """Every constructor knob of the service stack, in one record.

    ``ServicePolicy()`` reproduces the historical defaults exactly
    (depth 64, waves of 8, no shedding, no tenants), so threading a
    default policy through the stack changes nothing -- the property
    the 208-case bit-exactness corpus holds with fairness enabled.
    """

    #: Global request-queue depth bound.
    queue_depth: int = 64
    #: Widest wave the micro-batcher may form.
    max_batch: int = 8
    #: The load-shedding budget (``None`` budget disables shedding).
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: Per-tenant SLO contracts, by tenant label.
    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)
    #: The contract for untagged requests and unlisted tenants.
    default_tenant: TenantPolicy = DEFAULT_TENANT_POLICY
    #: Weighted fair interleave across tenants within each class
    #: (``False``: plain FIFO within class, the pre-tenancy order).
    fair_queueing: bool = True
    #: Prefer near-deadline compatible followers when forming waves.
    deadline_aware_batching: bool = True
    #: Decay constant of the per-tenant arrival-rate estimator, in
    #: modeled seconds (admission's noisy-neighbour detector).
    rate_tau_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(
                f"queue depth must be >= 1, got {self.queue_depth}")
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.rate_tau_seconds <= 0:
            raise ValueError(
                f"rate_tau_seconds must be > 0, got "
                f"{self.rate_tau_seconds}")

    def tenant(self, name: Optional[str]) -> TenantPolicy:
        """The contract ``name`` serves under (default when unlisted)."""
        if name is None:
            return self.default_tenant
        return self.tenants.get(name, self.default_tenant)

    def weight(self, name: Optional[str]) -> float:
        return self.tenant(name).weight


def coerce_service_policy(policy: object, *, owner: str,
                          legacy: Mapping[str, object],
                          stacklevel: int = 3) -> ServicePolicy:
    """One ServicePolicy from whichever constructor shape was used.

    ``legacy`` maps deprecated keyword names to the values the caller
    passed (``None`` meaning "not passed").  A :class:`ServicePolicy`
    wins outright -- mixing it with loose keywords is a
    :class:`TypeError`, exactly like mixing ``options=`` with the
    deprecated ``submit`` keywords.  A bare :class:`AdmissionPolicy`
    or any loose keyword warns and is folded into a policy object.
    """
    passed = {name: value for name, value in legacy.items()
              if value is not None}
    if isinstance(policy, ServicePolicy):
        if passed:
            raise TypeError(
                f"pass {owner} configuration through "
                f"policy=ServicePolicy(...) OR the deprecated "
                f"keywords ({', '.join(sorted(passed))}), not both")
        return policy
    # Legacy spellings that differ from the ServicePolicy field name.
    rename = {"max_depth": "queue_depth"}
    fields: Dict[str, object] = {rename.get(name, name): value
                                 for name, value in passed.items()}
    if isinstance(policy, AdmissionPolicy):
        fields["admission"] = policy
        passed["policy=AdmissionPolicy(...)"] = policy
    elif policy is not None:
        raise TypeError(
            f"{owner} policy must be a ServicePolicy (or a deprecated "
            f"AdmissionPolicy), got {type(policy).__name__}")
    if passed:
        warnings.warn(
            f"{owner}({', '.join(sorted(passed))}) is deprecated; "
            f"pass {owner}(policy=ServicePolicy(...))",
            DeprecationWarning, stacklevel=stacklevel)
    return ServicePolicy(**fields)  # type: ignore[arg-type]
