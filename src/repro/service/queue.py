"""The bounded, tenant-fair, priority-classed request queue.

The queue is deliberately small and explicit: strict priority across
classes, one global depth bound, and *reject-with-reason* when full --
never unbounded growth.  An overloaded service that queues without
bound converts overload into unbounded latency for everyone; a bounded
queue converts it into fast, explicit backpressure for the marginal
request, which is the behaviour the admission controller builds on.

Within one priority class the drain order is **weighted fair
queueing** over tenants (start-time fair queueing): every offer is
stamped with a virtual finish tag ``max(class vtime, tenant's last
finish) + 1/weight`` and pops take the smallest tag.  Tenants at equal
weight interleave one-for-one however unevenly they arrive; a weight-2
tenant drains two for a neighbour's one; and a queue whose requests
are all untagged collapses to a single bucket whose tags increase with
every offer -- exact FIFO, bit-identical to the pre-tenancy order.
Per-tenant ``max_queued`` quotas ride the same bookkeeping: a tenant
at its cap is answered ``TENANT_QUOTA`` while everyone else still has
the whole remaining depth.  All knobs come from one
:class:`~repro.service.policy.ServicePolicy`.

The synchronous front end surfaces a full queue as an immediate
``QUEUE_FULL`` rejection; the asyncio facade (:mod:`repro.aio`)
instead *suspends* the producer until a slot frees.  The wake signal
lives here: :meth:`RequestQueue.add_space_listener` registers a
zero-argument callback fired whenever a pop reopens space in a queue
that was at depth.  Listeners are notification-only -- they must
re-check :attr:`has_space` themselves (several producers may race for
one freed slot) and must not mutate the queue reentrantly.  Quota
rejections deliberately do not ride the listener path: a tenant at its
own cap is shed explicitly, not suspended against space it may never
be allowed to take.
"""

from __future__ import annotations

from collections import deque
from typing import (Callable, Deque, Dict, Iterator, List, Optional,
                    Tuple)

from .policy import ServicePolicy, coerce_service_policy
from .request import Priority, RejectReason, ServiceRequest

#: One queued entry: (virtual finish tag, offer sequence, request).
_Entry = Tuple[float, int, ServiceRequest]


class RequestQueue:
    """Weighted-fair within a class, strict priority across classes."""

    def __init__(self, max_depth: Optional[int] = None,
                 policy: Optional[ServicePolicy] = None) -> None:
        self.policy = coerce_service_policy(
            policy, owner="RequestQueue", legacy={"max_depth": max_depth})
        self.max_depth = self.policy.queue_depth
        #: priority -> tenant bucket -> FIFO of stamped entries.
        self._classes: Dict[Priority,
                            Dict[Optional[str], Deque[_Entry]]] = {
            priority: {} for priority in Priority}
        #: Per-class virtual time (advances with every head pop).
        self._vtime: Dict[Priority, float] = {
            priority: 0.0 for priority in Priority}
        #: Per-class, per-bucket last assigned finish tag.
        self._finish: Dict[Priority, Dict[Optional[str], float]] = {
            priority: {} for priority in Priority}
        self._size = 0
        self._seq = 0
        #: Decreasing stamp so later requeues sort *ahead* of earlier
        #: ones -- the appendleft semantics of the pre-tenancy queue.
        self._front_seq = -1
        #: Queued requests per tenant label (the max_queued quota book).
        self._queued_by_tenant: Dict[Optional[str], int] = {}
        #: Deepest the queue ever got (capacity-planning signal).
        self.high_water = 0
        self._space_listeners: List[Callable[[], None]] = []

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def depth_of(self, priority: Priority) -> int:
        return sum(len(bucket)
                   for bucket in self._classes[priority].values())

    def queued_of(self, tenant: Optional[str]) -> int:
        """Requests ``tenant`` currently holds queued."""
        return self._queued_by_tenant.get(tenant, 0)

    @property
    def has_space(self) -> bool:
        """Whether :meth:`offer` would currently accept a request."""
        return self._size < self.max_depth

    def _bucket_key(self, request: ServiceRequest) -> Optional[str]:
        if not self.policy.fair_queueing:
            return None
        return request.tenant

    # -- backpressure signaling -----------------------------------------------

    def add_space_listener(self, listener: Callable[[], None]) -> None:
        """Register a wake callback for the full-to-space transition.

        Fired after any pop that takes a queue *at depth* back below
        its bound -- the moment a suspended producer could offer again.
        The callback carries no payload: a woken producer re-checks
        :attr:`has_space` (another producer may have claimed the slot
        first) and goes back to waiting if it lost the race.
        """
        self._space_listeners.append(listener)

    def remove_space_listener(self,
                              listener: Callable[[], None]) -> None:
        """Unregister ``listener``; unknown listeners are a no-op."""
        try:
            self._space_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_space(self, depth_before: int) -> None:
        """Wake listeners when a pop reopened space at the bound."""
        if (self._space_listeners and depth_before >= self.max_depth
                and self._size < self.max_depth):
            for listener in tuple(self._space_listeners):
                listener()

    # -- offering -------------------------------------------------------------

    def offer(self, request: ServiceRequest) -> Optional[RejectReason]:
        """Enqueue, or explain why not (``None`` means accepted)."""
        if self._size >= self.max_depth:
            return RejectReason.QUEUE_FULL
        cap = self.policy.tenant(request.tenant).max_queued
        if (cap is not None
                and self._queued_by_tenant.get(request.tenant, 0) >= cap):
            return RejectReason.TENANT_QUOTA
        priority = request.priority
        bucket = self._bucket_key(request)
        weight = (self.policy.weight(request.tenant)
                  if self.policy.fair_queueing else 1.0)
        start = max(self._vtime[priority],
                    self._finish[priority].get(bucket, 0.0))
        finish = start + 1.0 / weight
        self._finish[priority][bucket] = finish
        self._classes[priority].setdefault(bucket, deque()).append(
            (finish, self._seq, request))
        self._seq += 1
        self._account_add(request)
        return None

    def requeue_front(self, request: ServiceRequest) -> None:
        """Put a retried request at the *front* of its class.

        A deadline retry has already waited one full queue pass; sending
        it to the back would starve it behind younger work.  The depth
        bound and tenant quota are not re-checked: the request held its
        slot until a moment ago and nothing else can have claimed it
        mid-dispatch.  The entry carries a ``-inf`` finish tag, so it
        sorts ahead of every fair-queued entry without dragging the
        class's virtual time backwards.
        """
        bucket = self._bucket_key(request)
        self._classes[request.priority].setdefault(
            bucket, deque()).appendleft(
                (float("-inf"), self._front_seq, request))
        self._front_seq -= 1
        self._account_add(request)

    def _account_add(self, request: ServiceRequest) -> None:
        self._size += 1
        self._queued_by_tenant[request.tenant] = (
            self._queued_by_tenant.get(request.tenant, 0) + 1)
        self.high_water = max(self.high_water, self._size)

    def _account_remove(self, request: ServiceRequest) -> None:
        self._size -= 1
        remaining = self._queued_by_tenant.get(request.tenant, 0) - 1
        if remaining > 0:
            self._queued_by_tenant[request.tenant] = remaining
        else:
            self._queued_by_tenant.pop(request.tenant, None)

    # -- popping --------------------------------------------------------------

    def pop_next(self) -> ServiceRequest:
        """Smallest finish tag in the highest non-empty class; raises
        IndexError when empty."""
        depth_before = self._size
        for priority in Priority:
            buckets = self._classes[priority]
            if not buckets:
                continue
            best: Optional[Optional[str]] = None
            best_key: Optional[Tuple[float, int]] = None
            for bucket, entries in buckets.items():
                head = entries[0]
                key = (head[0], head[1])
                if best_key is None or key < best_key:
                    best_key, best = key, bucket
            assert best_key is not None
            finish, _, request = buckets[best].popleft()  # type: ignore[index]
            if not buckets[best]:  # type: ignore[index]
                del buckets[best]  # type: ignore[arg-type]
            self._vtime[priority] = max(self._vtime[priority], finish)
            self._account_remove(request)
            self._notify_space(depth_before)
            return request
        raise IndexError("pop from an empty RequestQueue")

    def _class_entries(self, priority: Priority) -> List[_Entry]:
        """This class's entries in the order :meth:`pop_next` would
        drain them (merged across tenant buckets by finish tag)."""
        merged: List[_Entry] = []
        for entries in self._classes[priority].values():
            merged.extend(entries)
        merged.sort(key=lambda entry: (entry[0], entry[1]))
        return merged

    def pop_compatible(
            self, matches: Callable[[ServiceRequest], bool], limit: int,
            prefer: Optional[Callable[[ServiceRequest], float]] = None,
    ) -> List[ServiceRequest]:
        """Remove up to ``limit`` queued requests satisfying ``matches``.

        Scans classes in priority order and each class in drain order,
        so the relative order of the popped requests is the order
        :meth:`pop_next` would have produced.  With ``prefer`` the
        class's matches are instead ranked by the given key (stably, so
        ties keep drain order) before truncation -- how the batcher
        pulls near-deadline work forward.  Requests are independent by
        contract, so pulling compatible ones forward changes neither
        their results nor any other request's.
        """
        popped: List[ServiceRequest] = []
        if limit <= 0:
            return popped
        depth_before = self._size
        for priority in Priority:
            if not self._classes[priority]:
                continue
            candidates = [entry for entry in
                          self._class_entries(priority)
                          if matches(entry[2])]
            if prefer is not None:
                candidates.sort(key=lambda entry: prefer(entry[2]))
            taken = candidates[:limit - len(popped)]
            if taken:
                self._remove_entries(priority, taken)
                popped.extend(entry[2] for entry in taken)
            if len(popped) >= limit:
                break
        if popped:
            self._notify_space(depth_before)
        return popped

    def _remove_entries(self, priority: Priority,
                        taken: List[_Entry]) -> None:
        chosen = {id(entry[2]) for entry in taken}
        buckets = self._classes[priority]
        for bucket in list(buckets):
            entries = buckets[bucket]
            if not any(id(entry[2]) in chosen for entry in entries):
                continue
            kept = deque(entry for entry in entries
                         if id(entry[2]) not in chosen)
            if kept:
                buckets[bucket] = kept
            else:
                del buckets[bucket]
        for entry in taken:
            self._account_remove(entry[2])

    def __iter__(self) -> Iterator[ServiceRequest]:
        for priority in Priority:
            for entry in self._class_entries(priority):
                yield entry[2]
