"""The bounded, priority-classed request queue.

The queue is deliberately small and explicit: a deque per priority
class, one global depth bound, and *reject-with-reason* when full --
never unbounded growth.  An overloaded service that queues without
bound converts overload into unbounded latency for everyone; a bounded
queue converts it into fast, explicit backpressure for the marginal
request, which is the behaviour the admission controller builds on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional

from .request import Priority, RejectReason, ServiceRequest


class RequestQueue:
    """FIFO within a priority class, strict priority across classes."""

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._classes: Dict[Priority, Deque[ServiceRequest]] = {
            priority: deque() for priority in Priority}
        #: Deepest the queue ever got (capacity-planning signal).
        self.high_water = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._classes.values())

    def __bool__(self) -> bool:
        return any(self._classes.values())

    def depth_of(self, priority: Priority) -> int:
        return len(self._classes[priority])

    def offer(self, request: ServiceRequest) -> Optional[RejectReason]:
        """Enqueue, or explain why not (``None`` means accepted)."""
        if len(self) >= self.max_depth:
            return RejectReason.QUEUE_FULL
        self._classes[request.priority].append(request)
        self.high_water = max(self.high_water, len(self))
        return None

    def requeue_front(self, request: ServiceRequest) -> None:
        """Put a retried request at the *front* of its class.

        A deadline retry has already waited one full queue pass; sending
        it to the back would starve it behind younger work.  The depth
        bound is not re-checked: the request held a slot until a moment
        ago and nothing else can have claimed it mid-dispatch.
        """
        self._classes[request.priority].appendleft(request)
        self.high_water = max(self.high_water, len(self))

    def pop_next(self) -> ServiceRequest:
        """Highest-priority oldest request; raises IndexError if empty."""
        for priority in Priority:
            if self._classes[priority]:
                return self._classes[priority].popleft()
        raise IndexError("pop from an empty RequestQueue")

    def pop_compatible(self, matches: Callable[[ServiceRequest], bool],
                       limit: int) -> List[ServiceRequest]:
        """Remove up to ``limit`` queued requests satisfying ``matches``.

        Scans classes in priority order and each class front to back, so
        the relative order of the popped requests is the order
        :meth:`pop_next` would have produced.  Requests are independent
        by contract, so pulling compatible ones forward changes neither
        their results nor any other request's.
        """
        popped: List[ServiceRequest] = []
        if limit <= 0:
            return popped
        for priority in Priority:
            queue = self._classes[priority]
            if not queue:
                continue
            kept: Deque[ServiceRequest] = deque()
            while queue:
                request = queue.popleft()
                if len(popped) < limit and matches(request):
                    popped.append(request)
                else:
                    kept.append(request)
            self._classes[priority] = kept
            if len(popped) >= limit:
                break
        return popped

    def __iter__(self) -> Iterator[ServiceRequest]:
        for priority in Priority:
            yield from self._classes[priority]
