"""The bounded, priority-classed request queue.

The queue is deliberately small and explicit: a deque per priority
class, one global depth bound, and *reject-with-reason* when full --
never unbounded growth.  An overloaded service that queues without
bound converts overload into unbounded latency for everyone; a bounded
queue converts it into fast, explicit backpressure for the marginal
request, which is the behaviour the admission controller builds on.

The synchronous front end surfaces a full queue as an immediate
``QUEUE_FULL`` rejection; the asyncio facade (:mod:`repro.aio`)
instead *suspends* the producer until a slot frees.  The wake signal
lives here: :meth:`RequestQueue.add_space_listener` registers a
zero-argument callback fired whenever a pop reopens space in a queue
that was at depth.  Listeners are notification-only -- they must
re-check :attr:`has_space` themselves (several producers may race for
one freed slot) and must not mutate the queue reentrantly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional

from .request import Priority, RejectReason, ServiceRequest


class RequestQueue:
    """FIFO within a priority class, strict priority across classes."""

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._classes: Dict[Priority, Deque[ServiceRequest]] = {
            priority: deque() for priority in Priority}
        #: Deepest the queue ever got (capacity-planning signal).
        self.high_water = 0
        self._space_listeners: List[Callable[[], None]] = []

    def __len__(self) -> int:
        return sum(len(q) for q in self._classes.values())

    def __bool__(self) -> bool:
        return any(self._classes.values())

    def depth_of(self, priority: Priority) -> int:
        return len(self._classes[priority])

    @property
    def has_space(self) -> bool:
        """Whether :meth:`offer` would currently accept a request."""
        return len(self) < self.max_depth

    # -- backpressure signaling -----------------------------------------------

    def add_space_listener(self, listener: Callable[[], None]) -> None:
        """Register a wake callback for the full-to-space transition.

        Fired after any pop that takes a queue *at depth* back below
        its bound -- the moment a suspended producer could offer again.
        The callback carries no payload: a woken producer re-checks
        :attr:`has_space` (another producer may have claimed the slot
        first) and goes back to waiting if it lost the race.
        """
        self._space_listeners.append(listener)

    def remove_space_listener(self,
                              listener: Callable[[], None]) -> None:
        """Unregister ``listener``; unknown listeners are a no-op."""
        try:
            self._space_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_space(self, depth_before: int) -> None:
        """Wake listeners when a pop reopened space at the bound."""
        if (self._space_listeners and depth_before >= self.max_depth
                and len(self) < self.max_depth):
            for listener in tuple(self._space_listeners):
                listener()

    def offer(self, request: ServiceRequest) -> Optional[RejectReason]:
        """Enqueue, or explain why not (``None`` means accepted)."""
        if len(self) >= self.max_depth:
            return RejectReason.QUEUE_FULL
        self._classes[request.priority].append(request)
        self.high_water = max(self.high_water, len(self))
        return None

    def requeue_front(self, request: ServiceRequest) -> None:
        """Put a retried request at the *front* of its class.

        A deadline retry has already waited one full queue pass; sending
        it to the back would starve it behind younger work.  The depth
        bound is not re-checked: the request held a slot until a moment
        ago and nothing else can have claimed it mid-dispatch.
        """
        self._classes[request.priority].appendleft(request)
        self.high_water = max(self.high_water, len(self))

    def pop_next(self) -> ServiceRequest:
        """Highest-priority oldest request; raises IndexError if empty."""
        depth_before = len(self)
        for priority in Priority:
            if self._classes[priority]:
                request = self._classes[priority].popleft()
                self._notify_space(depth_before)
                return request
        raise IndexError("pop from an empty RequestQueue")

    def pop_compatible(self, matches: Callable[[ServiceRequest], bool],
                       limit: int) -> List[ServiceRequest]:
        """Remove up to ``limit`` queued requests satisfying ``matches``.

        Scans classes in priority order and each class front to back, so
        the relative order of the popped requests is the order
        :meth:`pop_next` would have produced.  Requests are independent
        by contract, so pulling compatible ones forward changes neither
        their results nor any other request's.
        """
        popped: List[ServiceRequest] = []
        if limit <= 0:
            return popped
        depth_before = len(self)
        for priority in Priority:
            queue = self._classes[priority]
            if not queue:
                continue
            kept: Deque[ServiceRequest] = deque()
            while queue:
                request = queue.popleft()
                if len(popped) < limit and matches(request):
                    popped.append(request)
                else:
                    kept.append(request)
            self._classes[priority] = kept
            if len(popped) >= limit:
                break
        if popped:
            self._notify_space(depth_before)
        return popped

    def __iter__(self) -> Iterator[ServiceRequest]:
        for priority in Priority:
            yield from self._classes[priority]
