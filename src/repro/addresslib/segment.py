"""Segment addressing: geodesic expansion over arbitrary shapes.

Paper section 2.1, third scheme: *"Beginning with a set of start pixels,
all pixels of the segment are processed in order of geodesic distance"* --
each processed pixel's unprocessed neighbours are tested against a
neighbourhood criterion and, if they fulfil it, join the work queue.

The first AddressEngine prototype does **not** implement this scheme in
hardware (it is the announced next step), so segment addressing always
executes on the software path here; it is nevertheless central to the
paper's motivation because the profiled video object segmentation
algorithm -- the source of the factor-30 estimate -- is built on it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..image.frame import Frame
from .addressing import CON_4, Neighbourhood
from .indexed import SegmentStatistics
from .profiling import InstructionCost, OpProfile

#: Per-event costs of the software segment-addressing inner loop.  The
#: queue discipline, visited map and criteria tests are all address/control
#: work, which is why segment-heavy algorithms show the highest addressing
#: fraction in the paper's profile.
SEGMENT_POP_COST = InstructionCost(addr=2, load=1, branch=1)
SEGMENT_NEIGHBOUR_TEST_COST = InstructionCost(addr=4, load=2, alu=1, branch=3)
SEGMENT_PUSH_COST = InstructionCost(addr=2, store=2, branch=1)
SEGMENT_PROCESS_COST = InstructionCost(addr=2, load=1, store=1)

#: A criterion deciding whether ``neighbour`` may join the segment that
#: ``centre`` belongs to.  Receives the frame and both absolute positions.
Criterion = Callable[[Frame, Tuple[int, int], Tuple[int, int]], bool]


@dataclass(frozen=True)
class LumaDeltaCriterion:
    """Join when the luminance difference to the tested-from pixel is
    within ``max_delta`` -- the paper's canonical homogeneity check.

    This criterion class is *hardware-mappable*: it exposes its threshold
    so the v2 segment unit (:mod:`repro.core.segment_unit`) can execute
    it with its criteria comparators; arbitrary callables stay on the
    software path.
    """

    max_delta: int

    def __call__(self, frame: Frame, centre: Tuple[int, int],
                 neighbour: Tuple[int, int]) -> bool:
        cy = int(frame.y[centre[1], centre[0]])
        ny = int(frame.y[neighbour[1], neighbour[0]])
        return abs(cy - ny) <= self.max_delta


def luma_delta_criterion(max_delta: int) -> LumaDeltaCriterion:
    """The homogeneity criterion, as a hardware-mappable object."""
    return LumaDeltaCriterion(max_delta)


def yuv_delta_criterion(max_luma: int, max_chroma: int) -> Criterion:
    """Join when both luminance and chrominance differences are small."""
    def criterion(frame: Frame, centre: Tuple[int, int],
                  neighbour: Tuple[int, int]) -> bool:
        cx, cyy = centre
        nx, ny = neighbour
        if abs(int(frame.y[cyy, cx]) - int(frame.y[ny, nx])) > max_luma:
            return False
        if abs(int(frame.u[cyy, cx]) - int(frame.u[ny, nx])) > max_chroma:
            return False
        return abs(int(frame.v[cyy, cx]) - int(frame.v[ny, nx])) <= max_chroma
    return criterion


def luma_band_criterion(reference: int, max_delta: int) -> Criterion:
    """Join when the neighbour's luminance is within a band of a fixed
    reference value (seed-anchored growing)."""
    def criterion(frame: Frame, centre: Tuple[int, int],
                  neighbour: Tuple[int, int]) -> bool:
        del centre
        ny = int(frame.y[neighbour[1], neighbour[0]])
        return abs(ny - reference) <= max_delta
    return criterion


@dataclass
class SegmentResult:
    """Outcome of one segment expansion."""

    #: Segment id label per pixel; -1 where unvisited.
    labels: np.ndarray
    #: Geodesic distance (BFS depth from the seed set); -1 where unvisited.
    distance: np.ndarray
    #: Pixels in processing order, as ``(x, y)`` tuples.  The hardware
    #: segment unit does not report the order; it supplies
    #: ``processed_count`` instead.
    order: List[Tuple[int, int]] = field(default_factory=list)
    #: Per-segment statistics (segment-indexed addressing side table).
    statistics: Optional[SegmentStatistics] = None
    #: Explicit processed-pixel count for order-less results.
    processed_count: Optional[int] = None

    @property
    def pixels_processed(self) -> int:
        if self.processed_count is not None:
            return self.processed_count
        return len(self.order)

    def segment_mask(self, segment_id: int) -> np.ndarray:
        """Boolean mask of one segment."""
        return self.labels == segment_id

    def segment_sizes(self) -> Dict[int, int]:
        """Pixel count per segment id (unvisited excluded)."""
        ids, counts = np.unique(self.labels[self.labels >= 0],
                                return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}


class SegmentProcessor:
    """Executes segment addressing: seeded, criteria-gated BFS expansion."""

    def __init__(self, connectivity: Neighbourhood = CON_4,
                 profile: Optional[OpProfile] = None) -> None:
        #: Neighbour offsets tested for expansion (the centre is skipped).
        self.connectivity = connectivity
        self.profile = profile

    def _account(self, cost: InstructionCost, units: float = 1.0) -> None:
        if self.profile is not None:
            self.profile.add_cost(cost, units)

    def expand(self, frame: Frame,
               seeds: Sequence[Tuple[int, int]],
               criterion: Criterion,
               process: Optional[Callable[[Frame, int, int], None]] = None,
               collect_statistics: bool = True,
               max_pixels: Optional[int] = None) -> SegmentResult:
        """Grow segments from ``seeds`` in geodesic-distance order.

        Each seed starts its own segment (ids follow seed order).  Every
        dequeued pixel is processed (``process`` callback, e.g. writing a
        label into the Aux channel), then its unvisited neighbours are
        tested with ``criterion``; accepted neighbours join the queue with
        the same segment id at distance + 1.  Ties between segments resolve
        by queue order, i.e. by geodesic distance -- exactly the expansion
        process of the paper.

        Args:
            frame: The frame to expand over.
            seeds: Start pixels ``(x, y)``; out-of-frame seeds raise.
            criterion: The neighbourhood join criterion.
            process: Optional per-pixel processing step.
            collect_statistics: Maintain the segment-indexed side table.
            max_pixels: Optional hard stop (safety for runaway criteria).

        Returns:
            A :class:`SegmentResult`.
        """
        height, width = frame.height, frame.width
        labels = np.full((height, width), -1, dtype=np.int32)
        distance = np.full((height, width), -1, dtype=np.int32)
        stats = (SegmentStatistics(max_segments=max(len(seeds), 1))
                 if collect_statistics else None)
        if stats is not None and self.profile is not None:
            stats.table.profile = self.profile

        queue: deque = deque()
        for segment_id, (sx, sy) in enumerate(seeds):
            if not frame.format.contains(sx, sy):
                raise ValueError(f"seed ({sx}, {sy}) outside frame "
                                 f"{width}x{height}")
            if labels[sy, sx] != -1:
                continue  # two seeds on the same pixel: first wins
            labels[sy, sx] = segment_id
            distance[sy, sx] = 0
            queue.append((sx, sy))
            self._account(SEGMENT_PUSH_COST)

        result = SegmentResult(labels=labels, distance=distance,
                               statistics=stats)
        neighbour_offsets = [off for off in self.connectivity.offsets
                             if off != (0, 0)]

        while queue:
            if max_pixels is not None and result.pixels_processed >= max_pixels:
                break
            x, y = queue.popleft()
            self._account(SEGMENT_POP_COST)
            segment_id = int(labels[y, x])

            # First, pixel processing (same way as for intra addressing).
            self._account(SEGMENT_PROCESS_COST)
            if process is not None:
                process(frame, x, y)
            result.order.append((x, y))
            if stats is not None:
                stats.observe(segment_id, x, y, int(frame.y[y, x]))

            # Second, test all not-yet-processed neighbours.
            for dx, dy in neighbour_offsets:
                nx, ny = x + dx, y + dy
                self._account(SEGMENT_NEIGHBOUR_TEST_COST)
                if not (0 <= nx < width and 0 <= ny < height):
                    continue
                if labels[ny, nx] != -1:
                    continue
                if not criterion(frame, (x, y), (nx, ny)):
                    continue
                labels[ny, nx] = segment_id
                distance[ny, nx] = distance[y, x] + 1
                queue.append((nx, ny))
                self._account(SEGMENT_PUSH_COST)

        if self.profile is not None:
            self.profile.add_call()
        return result

    def label_into_aux(self, frame: Frame,
                       seeds: Sequence[Tuple[int, int]],
                       criterion: Criterion,
                       base_label: int = 1) -> SegmentResult:
        """Expand and write ``base_label + segment_id`` into the Aux channel.

        A common AddressLib pattern: segment ids generated during the pixel
        processing flow into the pixel's 16-bit Aux field.
        """
        result = self.expand(frame, seeds, criterion)
        mask = result.labels >= 0
        frame.aux[mask] = (result.labels[mask] + base_label).astype(np.uint16)
        return result
