"""The AddressLib facade: structured pixel addressing behind one API.

Applications (GME, segmentation, the examples) express all low-level pixel
work as AddressLib calls.  Each call names an addressing scheme, an
operation and a channel set; the library dispatches to the active
*backend* -- the pure-software executor or the AddressEngine coprocessor --
and records the call in a :class:`CallLog`.  Keeping the high-level
algorithm on the host and swapping only the backend is exactly the
deployment model of the paper (section 4.3: "The top-level software layer
... was kept in the PC, which accessed the ADM-XRC-II board after every
call to the AddressLib").
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..image.frame import Frame
from ..image.pixel import Channel
from .addressing import CON_4, AddressingMode, Neighbourhood, ScanOrder
from .executor import SoftwareCostModel, VectorExecutor
from .indexed import INDEXED_READ_COST, INDEXED_WRITE_COST
from .ops import ChannelSet, InterOp, IntraOp
from .profiling import InstructionCost, OpProfile
from .segment import (Criterion, LumaDeltaCriterion, SegmentProcessor,
                      SegmentResult)

if TYPE_CHECKING:
    from ..api import SubmitOptions


@dataclass
class CallRecord:
    """One completed AddressLib call, with its accounting."""

    mode: AddressingMode
    op_name: str
    channels: ChannelSet
    format_name: str
    pixels: int
    #: Analytic instruction profile of the software execution of this call
    #: (present on the software backend; also kept by the engine backend so
    #: the "what would the CPU have done" comparison is always available).
    profile: Optional[OpProfile] = None
    #: Backend-specific accounting (engine cycles, PCI bytes, ...).
    extra: Dict[str, float] = field(default_factory=dict)


class CallLog:
    """An append-only log of AddressLib calls with per-mode tallies."""

    def __init__(self) -> None:
        self.records: List[CallRecord] = []
        #: Calls tallied per tenant label (multi-tenant submissions
        #: through :class:`~repro.api.SubmitOptions`; untagged calls
        #: are not tallied here).
        self.by_tenant: Dict[str, int] = {}

    def append(self, record: CallRecord) -> None:
        self.records.append(record)

    def tally_tenant(self, tenant: str, calls: int = 1) -> None:
        """Attribute ``calls`` executed calls to ``tenant``."""
        self.by_tenant[tenant] = self.by_tenant.get(tenant, 0) + calls

    def count(self, mode: AddressingMode) -> int:
        return sum(1 for r in self.records if r.mode is mode)

    @property
    def intra_calls(self) -> int:
        """Intra-mode calls (the 'Intra AddrEng calls' column of Table 3)."""
        return self.count(AddressingMode.INTRA)

    @property
    def inter_calls(self) -> int:
        """Inter-mode calls (the 'Inter AddrEng calls' column of Table 3)."""
        return self.count(AddressingMode.INTER)

    @property
    def total_calls(self) -> int:
        return len(self.records)

    def merged_profile(self) -> OpProfile:
        """Union of all per-call profiles."""
        merged = OpProfile()
        for record in self.records:
            if record.profile is not None:
                merged.merge(record.profile)
        return merged

    def total_extra(self, key: str) -> float:
        """Sum of one ``extra`` accounting key over all records."""
        return sum(r.extra.get(key, 0.0) for r in self.records)

    def clear(self) -> None:
        self.records.clear()
        self.by_tenant.clear()


@dataclass(frozen=True)
class BatchCall:
    """One engine-eligible call queued for batched submission.

    A batch is a set of calls the application *declares* independent
    (or that the scheduler derived from a program's dependency edges):
    no call's input is another call's output.  :meth:`AddressLib.run_batch`
    executes a batch either serially (records identical to issuing the
    calls one by one) or through a scheduler's worker pool.
    """

    mode: AddressingMode
    op: Union[InterOp, IntraOp]
    frames: Tuple[Frame, ...]
    channels: ChannelSet = ChannelSet.Y
    reduce_to_scalar: bool = False

    def __post_init__(self) -> None:
        if self.mode is AddressingMode.INTER:
            if not isinstance(self.op, InterOp) or len(self.frames) != 2:
                raise ValueError("inter batch calls take an InterOp "
                                 "and exactly two frames")
            if self.frames[0].format != self.frames[1].format:
                raise ValueError("inter batch call frames must share "
                                 "one format")
        elif self.mode is AddressingMode.INTRA:
            if not isinstance(self.op, IntraOp) or len(self.frames) != 1:
                raise ValueError("intra batch calls take an IntraOp "
                                 "and exactly one frame")
            if self.reduce_to_scalar:
                raise ValueError("scalar reduction is inter-only")
        else:
            raise ValueError(f"batches take inter/intra calls only, "
                             f"not {self.mode.value}")

    @classmethod
    def intra(cls, op: IntraOp, frame: Frame,
              channels: ChannelSet = ChannelSet.Y) -> "BatchCall":
        return cls(mode=AddressingMode.INTRA, op=op, frames=(frame,),
                   channels=channels)

    @classmethod
    def inter(cls, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet = ChannelSet.Y) -> "BatchCall":
        return cls(mode=AddressingMode.INTER, op=op,
                   frames=(frame_a, frame_b), channels=channels)

    @classmethod
    def inter_reduce(cls, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet = ChannelSet.Y) -> "BatchCall":
        return cls(mode=AddressingMode.INTER, op=op,
                   frames=(frame_a, frame_b), channels=channels,
                   reduce_to_scalar=True)

    @property
    def fmt(self):
        return self.frames[0].format


@dataclass
class BatchOutcome:
    """The functional result of one batched call."""

    frame: Optional[Frame] = None
    scalar: Optional[int] = None

    @property
    def value(self) -> Union[Frame, int]:
        if self.frame is not None:
            return self.frame
        assert self.scalar is not None
        return self.scalar


class BatchExecutor(abc.ABC):
    """The contract a call scheduler fulfils for :class:`AddressLib`.

    Implementations (:class:`repro.host.scheduler.CallScheduler`)
    compute the functional results of a batch -- possibly concurrently
    across worker processes -- and return them *in submission order*.
    Accounting stays with the library/backend, which records each call
    analytically.
    """

    @abc.abstractmethod
    def compute_batch(self,
                      calls: Sequence[BatchCall]) -> List[BatchOutcome]:
        """Execute every call of the batch; outcomes in call order."""


class Backend(abc.ABC):
    """Executes AddressLib calls; one of software or AddressEngine."""

    name: str = "abstract"

    #: Whether :meth:`batch_record` can account a scheduler-executed
    #: call without re-running it.  Backends that couple execution and
    #: accounting (e.g. the program recorder) leave this ``False`` and
    #: batches fall back to the serial path.
    can_record_batches: bool = False

    @abc.abstractmethod
    def supports(self, mode: AddressingMode) -> bool:
        """Whether this backend can execute ``mode``."""

    def batch_record(self, call: BatchCall) -> CallRecord:
        """Account one scheduler-executed call (no execution here)."""
        raise NotImplementedError(
            f"{self.name} backend cannot record batched calls")

    def begin_parallel_wave(self) -> None:
        """Hook before a concurrent wave of calls (default: no-op)."""

    @abc.abstractmethod
    def inter(self, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        """Execute an inter call; return the result and its record."""

    @abc.abstractmethod
    def intra(self, op: IntraOp, frame: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        """Execute an intra call; return the result and its record."""

    @abc.abstractmethod
    def inter_reduce(self, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet) -> Tuple[int, CallRecord]:
        """Execute an inter call reduced to a scalar sum (e.g. SAD)."""


class SoftwareBackend(Backend):
    """Pure-software execution: numpy results + analytic CPU profiles.

    Functionally the results come from :class:`VectorExecutor`; the
    attached profile is what the scalar C implementation would have
    executed (validated against the counted executor by tests).
    """

    name = "software"
    can_record_batches = True

    def __init__(self, cost_model: Optional[SoftwareCostModel] = None,
                 scan: ScanOrder = ScanOrder.HORIZONTAL) -> None:
        self.cost_model = cost_model or SoftwareCostModel()
        self.scan = scan

    def supports(self, mode: AddressingMode) -> bool:
        return True

    # -- accounting (shared by the serial and batch paths) -------------------

    def inter_record(self, op: InterOp, fmt, channels: ChannelSet,
                     reduce_to_scalar: bool = False) -> CallRecord:
        profile = self.cost_model.inter_profile(op, fmt, channels)
        op_name = op.name
        if reduce_to_scalar:
            # The reduction adds one accumulate per pixel per channel.
            profile.add_cost(InstructionCost(alu=1),
                             fmt.pixels * channels.count)
            op_name = f"{op.name}+reduce"
        return CallRecord(
            mode=AddressingMode.INTER, op_name=op_name, channels=channels,
            format_name=fmt.name, pixels=fmt.pixels, profile=profile,
            extra={"sw_accesses": float(
                self.cost_model.inter_accesses(fmt, channels)),
                   "width": float(fmt.width),
                   "height": float(fmt.height)})

    def intra_record(self, op: IntraOp, fmt,
                     channels: ChannelSet) -> CallRecord:
        profile = self.cost_model.intra_profile(op, fmt, channels,
                                                self.scan)
        return CallRecord(
            mode=AddressingMode.INTRA, op_name=op.name, channels=channels,
            format_name=fmt.name, pixels=fmt.pixels, profile=profile,
            extra={"sw_accesses": float(self.cost_model.intra_accesses(
                op, fmt, channels, self.scan)),
                   "width": float(fmt.width),
                   "height": float(fmt.height)})

    def batch_record(self, call: BatchCall) -> CallRecord:
        if call.mode is AddressingMode.INTER:
            assert isinstance(call.op, InterOp)
            return self.inter_record(call.op, call.fmt, call.channels,
                                     call.reduce_to_scalar)
        assert isinstance(call.op, IntraOp)
        return self.intra_record(call.op, call.fmt, call.channels)

    # -- call execution ------------------------------------------------------

    def inter(self, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        result = VectorExecutor.inter(op, frame_a, frame_b, channels)
        return result, self.inter_record(op, frame_a.format, channels)

    def intra(self, op: IntraOp, frame: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        result = VectorExecutor.intra(op, frame, channels)
        return result, self.intra_record(op, frame.format, channels)

    def inter_reduce(self, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet) -> Tuple[int, CallRecord]:
        value = VectorExecutor.inter_reduce(op, frame_a, frame_b, channels)
        return value, self.inter_record(op, frame_a.format, channels,
                                        reduce_to_scalar=True)


class AddressLib:
    """The application-facing library.

    All four addressing schemes are exposed.  Inter and intra dispatch to
    the configured backend; segment (and its indexed side tables) always
    runs on the software path in this version, mirroring the v1 prototype
    where segment addressing is the announced next step.
    """

    def __init__(self, backend: Optional[Backend] = None) -> None:
        self.backend = backend or SoftwareBackend()
        self.log = CallLog()
        fully_capable = (isinstance(self.backend, SoftwareBackend)
                         and all(self.backend.supports(mode)
                                 for mode in AddressingMode))
        self._software_fallback = (self.backend if fully_capable
                                   else SoftwareBackend())

    # -- inter / intra (engine-eligible) -------------------------------------

    def inter(self, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet = ChannelSet.Y) -> Frame:
        """Inter addressing: ``result[p] = op(frame_a[p], frame_b[p])``."""
        result, record = self._dispatch(AddressingMode.INTER).inter(
            op, frame_a, frame_b, channels)
        self.log.append(record)
        return result

    def intra(self, op: IntraOp, frame: Frame,
              channels: ChannelSet = ChannelSet.Y) -> Frame:
        """Intra addressing: neighbourhood ``op`` within one frame."""
        result, record = self._dispatch(AddressingMode.INTRA).intra(
            op, frame, channels)
        self.log.append(record)
        return result

    def inter_reduce(self, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet = ChannelSet.Y) -> int:
        """Inter addressing reduced to a scalar (SAD and friends)."""
        value, record = self._dispatch(AddressingMode.INTER).inter_reduce(
            op, frame_a, frame_b, channels)
        self.log.append(record)
        return value

    def run_batch(self, calls: Sequence[BatchCall],
                  *legacy: "BatchExecutor",
                  scheduler: Optional[BatchExecutor] = None,
                  options: Optional["SubmitOptions"] = None
                  ) -> List[Union[Frame, int]]:
        """Submit a batch of *independent* inter/intra calls.

        Without a scheduler this is sugar: each call is issued through
        the normal single-call path in order, so the results *and* the
        log records are identical to hand-written serial code.  With a
        scheduler, the functional results come from the scheduler's
        engine workers (bit-exact: the workers run the same vector
        executor) while each call is recorded with the backend's
        analytic accounting -- one record per call, same counts, no
        re-execution.  If any dispatched backend cannot record batched
        calls, the whole batch silently takes the serial path.

        ``scheduler`` and ``options`` are keyword-only; ``options``
        (a :class:`~repro.api.SubmitOptions`) currently contributes the
        tenant label the call log tallies executed calls under.
        Passing the scheduler positionally still works but is
        deprecated.
        """
        if legacy:
            if len(legacy) > 1 or scheduler is not None:
                raise TypeError(
                    "run_batch takes at most one scheduler; pass it "
                    "as run_batch(calls, scheduler=...)")
            warnings.warn(
                "passing the scheduler positionally to "
                "AddressLib.run_batch is deprecated; use "
                "run_batch(calls, scheduler=...)",
                DeprecationWarning, stacklevel=2)
            scheduler = legacy[0]
        calls = list(calls)
        tenant = getattr(options, "tenant", None)
        if tenant is not None and calls:
            self.log.tally_tenant(tenant, len(calls))
        if scheduler is not None and len(calls) > 1:
            backends = [self._dispatch(call.mode) for call in calls]
            if all(b.can_record_batches for b in backends):
                return self._run_batch_scheduled(calls, backends,
                                                 scheduler)
        results: List[Union[Frame, int]] = []
        for call in calls:
            if call.mode is AddressingMode.INTRA:
                assert isinstance(call.op, IntraOp)
                results.append(self.intra(call.op, call.frames[0],
                                          call.channels))
            else:
                assert isinstance(call.op, InterOp)
                if call.reduce_to_scalar:
                    results.append(self.inter_reduce(
                        call.op, call.frames[0], call.frames[1],
                        call.channels))
                else:
                    results.append(self.inter(
                        call.op, call.frames[0], call.frames[1],
                        call.channels))
        return results

    def _run_batch_scheduled(self, calls: List[BatchCall],
                             backends: List[Backend],
                             scheduler: BatchExecutor
                             ) -> List[Union[Frame, int]]:
        # One modelled board per backend: concurrent calls leave its
        # inter-call state (frame residency) undefined, so give each
        # backend the chance to drop it before the wave.
        seen: Dict[int, Backend] = {}
        for backend in backends:
            if id(backend) not in seen:
                seen[id(backend)] = backend
                backend.begin_parallel_wave()
        outcomes = scheduler.compute_batch(calls)
        if len(outcomes) != len(calls):
            raise RuntimeError(
                f"scheduler returned {len(outcomes)} outcomes for "
                f"{len(calls)} calls")
        results: List[Union[Frame, int]] = []
        for call, backend, outcome in zip(calls, backends, outcomes):
            self.log.append(backend.batch_record(call))
            results.append(outcome.value)
        return results

    # -- segment / segment-indexed (software path in v1) ----------------------

    def segment(self, frame: Frame, seeds: Sequence[Tuple[int, int]],
                criterion: Criterion,
                connectivity: Neighbourhood = CON_4,
                max_pixels: Optional[int] = None) -> SegmentResult:
        """Segment addressing: geodesic expansion from ``seeds``.

        Runs in software on v1 backends.  A segment-capable backend (the
        modelled v2 extension) takes the call when the criterion is
        hardware-mappable (:class:`LumaDeltaCriterion`) and the
        connectivity is the unit's fixed 4-connectivity; anything else
        falls back to software.
        """
        backend_segment = getattr(self.backend, "segment", None)
        if (backend_segment is not None
                and self.backend.supports(AddressingMode.SEGMENT)
                and isinstance(criterion, LumaDeltaCriterion)
                and connectivity is CON_4):
            result, record = backend_segment(frame, seeds, criterion,
                                             max_pixels)
            self.log.append(record)
            return result

        profile = OpProfile()
        processor = SegmentProcessor(connectivity=connectivity,
                                     profile=profile)
        result = processor.expand(frame, seeds, criterion,
                                  max_pixels=max_pixels)
        self.log.append(CallRecord(
            mode=AddressingMode.SEGMENT, op_name="segment_expand",
            channels=ChannelSet.Y, format_name=frame.format.name,
            pixels=result.pixels_processed, profile=profile))
        return result

    def histogram(self, frame: Frame,
                  channel: Channel = Channel.Y) -> np.ndarray:
        """Segment-indexed addressing example: a 256-bin histogram.

        Each pixel performs one indexed read-modify-write on the table,
        alongside an intra CON_0 sweep.
        """
        histogram = VectorExecutor.histogram(frame, channel)
        profile = OpProfile()
        sweep = self._software_fallback.cost_model.intra_profile
        from .ops import INTRA_COPY  # local import avoids a cycle at module load
        profile.merge(sweep(INTRA_COPY, frame.format, ChannelSet.Y))
        profile.add_cost(INDEXED_READ_COST.plus(INDEXED_WRITE_COST),
                         frame.format.pixels)
        self.log.append(CallRecord(
            mode=AddressingMode.SEGMENT_INDEXED, op_name="histogram",
            channels=ChannelSet.Y, format_name=frame.format.name,
            pixels=frame.format.pixels, profile=profile))
        return histogram

    # -- internals -------------------------------------------------------------

    def _dispatch(self, mode: AddressingMode) -> Backend:
        if self.backend.supports(mode):
            return self.backend
        return self._software_fallback
