"""The AddressLib facade: structured pixel addressing behind one API.

Applications (GME, segmentation, the examples) express all low-level pixel
work as AddressLib calls.  Each call names an addressing scheme, an
operation and a channel set; the library dispatches to the active
*backend* -- the pure-software executor or the AddressEngine coprocessor --
and records the call in a :class:`CallLog`.  Keeping the high-level
algorithm on the host and swapping only the backend is exactly the
deployment model of the paper (section 4.3: "The top-level software layer
... was kept in the PC, which accessed the ADM-XRC-II board after every
call to the AddressLib").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..image.frame import Frame
from ..image.pixel import Channel
from .addressing import CON_4, AddressingMode, Neighbourhood, ScanOrder
from .executor import SoftwareCostModel, VectorExecutor
from .indexed import INDEXED_READ_COST, INDEXED_WRITE_COST
from .ops import ChannelSet, InterOp, IntraOp
from .profiling import InstructionCost, OpProfile
from .segment import (Criterion, LumaDeltaCriterion, SegmentProcessor,
                      SegmentResult)


@dataclass
class CallRecord:
    """One completed AddressLib call, with its accounting."""

    mode: AddressingMode
    op_name: str
    channels: ChannelSet
    format_name: str
    pixels: int
    #: Analytic instruction profile of the software execution of this call
    #: (present on the software backend; also kept by the engine backend so
    #: the "what would the CPU have done" comparison is always available).
    profile: Optional[OpProfile] = None
    #: Backend-specific accounting (engine cycles, PCI bytes, ...).
    extra: Dict[str, float] = field(default_factory=dict)


class CallLog:
    """An append-only log of AddressLib calls with per-mode tallies."""

    def __init__(self) -> None:
        self.records: List[CallRecord] = []

    def append(self, record: CallRecord) -> None:
        self.records.append(record)

    def count(self, mode: AddressingMode) -> int:
        return sum(1 for r in self.records if r.mode is mode)

    @property
    def intra_calls(self) -> int:
        """Intra-mode calls (the 'Intra AddrEng calls' column of Table 3)."""
        return self.count(AddressingMode.INTRA)

    @property
    def inter_calls(self) -> int:
        """Inter-mode calls (the 'Inter AddrEng calls' column of Table 3)."""
        return self.count(AddressingMode.INTER)

    @property
    def total_calls(self) -> int:
        return len(self.records)

    def merged_profile(self) -> OpProfile:
        """Union of all per-call profiles."""
        merged = OpProfile()
        for record in self.records:
            if record.profile is not None:
                merged.merge(record.profile)
        return merged

    def total_extra(self, key: str) -> float:
        """Sum of one ``extra`` accounting key over all records."""
        return sum(r.extra.get(key, 0.0) for r in self.records)

    def clear(self) -> None:
        self.records.clear()


class Backend(abc.ABC):
    """Executes AddressLib calls; one of software or AddressEngine."""

    name: str = "abstract"

    @abc.abstractmethod
    def supports(self, mode: AddressingMode) -> bool:
        """Whether this backend can execute ``mode``."""

    @abc.abstractmethod
    def inter(self, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        """Execute an inter call; return the result and its record."""

    @abc.abstractmethod
    def intra(self, op: IntraOp, frame: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        """Execute an intra call; return the result and its record."""

    @abc.abstractmethod
    def inter_reduce(self, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet) -> Tuple[int, CallRecord]:
        """Execute an inter call reduced to a scalar sum (e.g. SAD)."""


class SoftwareBackend(Backend):
    """Pure-software execution: numpy results + analytic CPU profiles.

    Functionally the results come from :class:`VectorExecutor`; the
    attached profile is what the scalar C implementation would have
    executed (validated against the counted executor by tests).
    """

    name = "software"

    def __init__(self, cost_model: Optional[SoftwareCostModel] = None,
                 scan: ScanOrder = ScanOrder.HORIZONTAL) -> None:
        self.cost_model = cost_model or SoftwareCostModel()
        self.scan = scan

    def supports(self, mode: AddressingMode) -> bool:
        return True

    def inter(self, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        result = VectorExecutor.inter(op, frame_a, frame_b, channels)
        profile = self.cost_model.inter_profile(op, frame_a.format, channels)
        record = CallRecord(
            mode=AddressingMode.INTER, op_name=op.name, channels=channels,
            format_name=frame_a.format.name, pixels=frame_a.format.pixels,
            profile=profile,
            extra={"sw_accesses": float(
                self.cost_model.inter_accesses(frame_a.format, channels)),
                   "width": float(frame_a.format.width),
                   "height": float(frame_a.format.height)})
        return result, record

    def intra(self, op: IntraOp, frame: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        result = VectorExecutor.intra(op, frame, channels)
        profile = self.cost_model.intra_profile(op, frame.format, channels,
                                                self.scan)
        record = CallRecord(
            mode=AddressingMode.INTRA, op_name=op.name, channels=channels,
            format_name=frame.format.name, pixels=frame.format.pixels,
            profile=profile,
            extra={"sw_accesses": float(self.cost_model.intra_accesses(
                op, frame.format, channels, self.scan)),
                   "width": float(frame.format.width),
                   "height": float(frame.format.height)})
        return result, record

    def inter_reduce(self, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet) -> Tuple[int, CallRecord]:
        value = VectorExecutor.inter_reduce(op, frame_a, frame_b, channels)
        profile = self.cost_model.inter_profile(op, frame_a.format, channels)
        # The reduction adds one accumulate per pixel per channel.
        profile.add_cost(InstructionCost(alu=1),
                         frame_a.format.pixels * channels.count)
        record = CallRecord(
            mode=AddressingMode.INTER, op_name=f"{op.name}+reduce",
            channels=channels, format_name=frame_a.format.name,
            pixels=frame_a.format.pixels, profile=profile,
            extra={"sw_accesses": float(
                self.cost_model.inter_accesses(frame_a.format, channels)),
                   "width": float(frame_a.format.width),
                   "height": float(frame_a.format.height)})
        return value, record


class AddressLib:
    """The application-facing library.

    All four addressing schemes are exposed.  Inter and intra dispatch to
    the configured backend; segment (and its indexed side tables) always
    runs on the software path in this version, mirroring the v1 prototype
    where segment addressing is the announced next step.
    """

    def __init__(self, backend: Optional[Backend] = None) -> None:
        self.backend = backend or SoftwareBackend()
        self.log = CallLog()
        fully_capable = (isinstance(self.backend, SoftwareBackend)
                         and all(self.backend.supports(mode)
                                 for mode in AddressingMode))
        self._software_fallback = (self.backend if fully_capable
                                   else SoftwareBackend())

    # -- inter / intra (engine-eligible) -------------------------------------

    def inter(self, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet = ChannelSet.Y) -> Frame:
        """Inter addressing: ``result[p] = op(frame_a[p], frame_b[p])``."""
        result, record = self._dispatch(AddressingMode.INTER).inter(
            op, frame_a, frame_b, channels)
        self.log.append(record)
        return result

    def intra(self, op: IntraOp, frame: Frame,
              channels: ChannelSet = ChannelSet.Y) -> Frame:
        """Intra addressing: neighbourhood ``op`` within one frame."""
        result, record = self._dispatch(AddressingMode.INTRA).intra(
            op, frame, channels)
        self.log.append(record)
        return result

    def inter_reduce(self, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet = ChannelSet.Y) -> int:
        """Inter addressing reduced to a scalar (SAD and friends)."""
        value, record = self._dispatch(AddressingMode.INTER).inter_reduce(
            op, frame_a, frame_b, channels)
        self.log.append(record)
        return value

    # -- segment / segment-indexed (software path in v1) ----------------------

    def segment(self, frame: Frame, seeds: Sequence[Tuple[int, int]],
                criterion: Criterion,
                connectivity: Neighbourhood = CON_4,
                max_pixels: Optional[int] = None) -> SegmentResult:
        """Segment addressing: geodesic expansion from ``seeds``.

        Runs in software on v1 backends.  A segment-capable backend (the
        modelled v2 extension) takes the call when the criterion is
        hardware-mappable (:class:`LumaDeltaCriterion`) and the
        connectivity is the unit's fixed 4-connectivity; anything else
        falls back to software.
        """
        backend_segment = getattr(self.backend, "segment", None)
        if (backend_segment is not None
                and self.backend.supports(AddressingMode.SEGMENT)
                and isinstance(criterion, LumaDeltaCriterion)
                and connectivity is CON_4):
            result, record = backend_segment(frame, seeds, criterion,
                                             max_pixels)
            self.log.append(record)
            return result

        profile = OpProfile()
        processor = SegmentProcessor(connectivity=connectivity,
                                     profile=profile)
        result = processor.expand(frame, seeds, criterion,
                                  max_pixels=max_pixels)
        self.log.append(CallRecord(
            mode=AddressingMode.SEGMENT, op_name="segment_expand",
            channels=ChannelSet.Y, format_name=frame.format.name,
            pixels=result.pixels_processed, profile=profile))
        return result

    def histogram(self, frame: Frame,
                  channel: Channel = Channel.Y) -> np.ndarray:
        """Segment-indexed addressing example: a 256-bin histogram.

        Each pixel performs one indexed read-modify-write on the table,
        alongside an intra CON_0 sweep.
        """
        histogram = VectorExecutor.histogram(frame, channel)
        profile = OpProfile()
        sweep = self._software_fallback.cost_model.intra_profile
        from .ops import INTRA_COPY  # local import avoids a cycle at module load
        profile.merge(sweep(INTRA_COPY, frame.format, ChannelSet.Y))
        profile.add_cost(INDEXED_READ_COST.plus(INDEXED_WRITE_COST),
                         frame.format.pixels)
        self.log.append(CallRecord(
            mode=AddressingMode.SEGMENT_INDEXED, op_name="histogram",
            channels=ChannelSet.Y, format_name=frame.format.name,
            pixels=frame.format.pixels, profile=profile))
        return histogram

    # -- internals -------------------------------------------------------------

    def _dispatch(self, mode: AddressingMode) -> Backend:
        if self.backend.supports(mode):
            return self.backend
        return self._software_fallback
