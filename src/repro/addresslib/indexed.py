"""Segment-indexed addressing (paper section 2.1, fourth scheme).

Segment-indexed addressing "is used in parallel to one of the above
addressing methods, when data associated to a segment is needed or
generated during the pixel processing, e.g. segment identification
numbers.  This is done accessing an indexed table."

Unlike the other three schemes it does not address pixel data: it reads
and writes rows of a side table keyed by an index (typically a segment
id).  :class:`IndexedTable` models that table with counted accesses, and
:class:`SegmentStatistics` is the canonical use -- per-segment accumulators
updated while another scheme sweeps pixels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .profiling import InstructionCost, OpProfile

#: Instruction cost of one indexed table access: index scale/offset
#: arithmetic plus the memory operation.
INDEXED_READ_COST = InstructionCost(addr=2, load=1)
INDEXED_WRITE_COST = InstructionCost(addr=2, store=1)


class IndexedTable:
    """A fixed-width table addressed by integer index, with access counts.

    Rows are dictionaries of named fields; the field set is fixed at
    construction, mirroring a hardware table with a fixed record layout.
    """

    def __init__(self, fields: List[str], size: int,
                 profile: Optional[OpProfile] = None) -> None:
        if size <= 0:
            raise ValueError("table size must be positive")
        if not fields:
            raise ValueError("table needs at least one field")
        if len(set(fields)) != len(fields):
            raise ValueError(f"duplicate field names in {fields}")
        self.fields = list(fields)
        self.size = size
        self.profile = profile
        self._rows: List[Dict[str, int]] = [
            {name: 0 for name in fields} for _ in range(size)]
        self.reads = 0
        self.writes = 0

    def _check(self, index: int, fieldname: str) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside table of {self.size}")
        if fieldname not in self._rows[0]:
            raise KeyError(f"unknown field {fieldname!r}; "
                           f"have {self.fields}")

    def read(self, index: int, fieldname: str) -> int:
        """Counted read of one field of row ``index``."""
        self._check(index, fieldname)
        self.reads += 1
        if self.profile is not None:
            self.profile.add_cost(INDEXED_READ_COST)
        return self._rows[index][fieldname]

    def write(self, index: int, fieldname: str, value: int) -> None:
        """Counted write of one field of row ``index``."""
        self._check(index, fieldname)
        self.writes += 1
        if self.profile is not None:
            self.profile.add_cost(INDEXED_WRITE_COST)
        self._rows[index][fieldname] = value

    def increment(self, index: int, fieldname: str, delta: int = 1) -> int:
        """Read-modify-write accumulate; returns the new value."""
        value = self.read(index, fieldname) + delta
        self.write(index, fieldname, value)
        return value

    @property
    def accesses(self) -> int:
        """Total counted table accesses."""
        return self.reads + self.writes

    def row(self, index: int) -> Dict[str, int]:
        """Uncounted snapshot of one row (for reporting)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside table of {self.size}")
        return dict(self._rows[index])


@dataclass
class SegmentStatistics:
    """Per-segment accumulators maintained via segment-indexed addressing.

    One row per segment id: pixel count, luminance sum, and the bounding
    box.  Updated once per processed pixel by the segment scheme; the mean
    and box are derived on demand.
    """

    table: IndexedTable = field(default=None)  # type: ignore[assignment]
    max_segments: int = 256

    def __post_init__(self) -> None:
        if self.table is None:
            self.table = IndexedTable(
                ["area", "luma_sum", "min_x", "min_y", "max_x", "max_y"],
                self.max_segments)

    def observe(self, segment_id: int, x: int, y: int, luma: int) -> None:
        """Fold pixel ``(x, y)`` with luminance ``luma`` into the segment."""
        area = self.table.increment(segment_id, "area")
        self.table.increment(segment_id, "luma_sum", luma)
        if area == 1:
            self.table.write(segment_id, "min_x", x)
            self.table.write(segment_id, "min_y", y)
            self.table.write(segment_id, "max_x", x)
            self.table.write(segment_id, "max_y", y)
            return
        if x < self.table.read(segment_id, "min_x"):
            self.table.write(segment_id, "min_x", x)
        if y < self.table.read(segment_id, "min_y"):
            self.table.write(segment_id, "min_y", y)
        if x > self.table.read(segment_id, "max_x"):
            self.table.write(segment_id, "max_x", x)
        if y > self.table.read(segment_id, "max_y"):
            self.table.write(segment_id, "max_y", y)

    def area(self, segment_id: int) -> int:
        return self.table.row(segment_id)["area"]

    def mean_luma(self, segment_id: int) -> float:
        row = self.table.row(segment_id)
        if row["area"] == 0:
            return 0.0
        return row["luma_sum"] / row["area"]

    def bounding_box(self, segment_id: int):
        """``(min_x, min_y, max_x, max_y)`` of the segment, or ``None``."""
        row = self.table.row(segment_id)
        if row["area"] == 0:
            return None
        return row["min_x"], row["min_y"], row["max_x"], row["max_y"]
