"""Instruction-level profiling of AddressLib calls.

The paper's motivation (section 1) comes from instruction profiling of a
video object segmentation algorithm: *pixel address calculations* dominate
the low-level work, which is why a coprocessor that accelerates addressing
(rather than a fixed pixel pipeline) can reach an estimated 30x on the
offloaded portion.

This module defines the profile vocabulary used everywhere else:

* :class:`InstructionCost` -- per-pixel instruction counts of one
  operation, split into classes (address arithmetic, loads, stores, ALU,
  multiplies, branches);
* :class:`OpProfile` -- an accumulated profile over whole calls, with the
  addressing / processing split the paper's estimate rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

#: Instruction classes tracked by the profiler.  ``addr`` is pixel address
#: arithmetic (index computation, pointer stepping, bounds/border checks
#: feeding addresses); ``branch`` covers loop and border control flow.
INSTRUCTION_CLASSES = ("addr", "load", "store", "alu", "mul", "branch")

#: Classes the AddressEngine removes from the host CPU: address arithmetic,
#: the loads/stores it performs in parallel hardware, and the scan-control
#: branches.  ``alu``/``mul`` pixel processing is *also* offloaded in the
#: coprocessor, but the paper's factor-30 bound treats the addressing share
#: as the optimisation target; see :meth:`OpProfile.addressing_fraction`.
ADDRESSING_CLASSES = ("addr", "load", "store", "branch")

#: Classes that are pure pixel processing.
PROCESSING_CLASSES = ("alu", "mul")


@dataclass(frozen=True)
class InstructionCost:
    """Per-unit instruction counts for one operation.

    "Per unit" is per processed pixel unless stated otherwise by the op.
    Costs are in *instructions*, not cycles -- the CPU model in
    :mod:`repro.perf.cpu_model` maps classes to cycles.
    """

    addr: float = 0.0
    load: float = 0.0
    store: float = 0.0
    alu: float = 0.0
    mul: float = 0.0
    branch: float = 0.0

    def scaled(self, factor: float) -> "InstructionCost":
        """All classes multiplied by ``factor``."""
        return InstructionCost(**{name: getattr(self, name) * factor
                                  for name in INSTRUCTION_CLASSES})

    def plus(self, other: "InstructionCost") -> "InstructionCost":
        """Class-wise sum."""
        return InstructionCost(**{name: getattr(self, name)
                                  + getattr(other, name)
                                  for name in INSTRUCTION_CLASSES})

    @property
    def total(self) -> float:
        return sum(getattr(self, name) for name in INSTRUCTION_CLASSES)

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in INSTRUCTION_CLASSES}


#: The zero cost, for ops that contribute nothing to a class.
ZERO_COST = InstructionCost()


@dataclass
class OpProfile:
    """An accumulated instruction profile over one or more AddressLib calls."""

    counts: Dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in INSTRUCTION_CLASSES})
    calls: int = 0

    def add_cost(self, cost: InstructionCost, units: float = 1.0) -> None:
        """Accumulate ``cost`` applied to ``units`` processing units."""
        for name in INSTRUCTION_CLASSES:
            self.counts[name] += getattr(cost, name) * units

    def add_call(self) -> None:
        """Record that one AddressLib call completed."""
        self.calls += 1

    def merge(self, other: "OpProfile") -> None:
        """Fold another profile into this one."""
        for name in INSTRUCTION_CLASSES:
            self.counts[name] += other.counts[name]
        self.calls += other.calls

    @property
    def total_instructions(self) -> float:
        return sum(self.counts.values())

    def class_total(self, classes: Iterable[str]) -> float:
        return sum(self.counts[name] for name in classes)

    @property
    def addressing_instructions(self) -> float:
        """Instructions in the addressing-dominated classes."""
        return self.class_total(ADDRESSING_CLASSES)

    @property
    def processing_instructions(self) -> float:
        """Instructions in the pure pixel-processing classes."""
        return self.class_total(PROCESSING_CLASSES)

    @property
    def addressing_fraction(self) -> float:
        """Share of instructions spent on addressing (0 when empty)."""
        total = self.total_instructions
        if total == 0:
            return 0.0
        return self.addressing_instructions / total

    def amdahl_speedup_bound(self, offloadable_fraction: float = None,
                             accel: float = float("inf")) -> float:
        """Maximum whole-algorithm speedup if the offloadable fraction runs
        ``accel`` times faster (Amdahl's law).

        With the default infinite acceleration this is the paper's style of
        bound: if the low-level (offloadable) part is fraction ``f`` of the
        work and becomes free, the bound is ``1 / (1 - f)``.  The paper
        estimates 30x for its segmentation workload, i.e. roughly 97 % of
        instructions sit in the offloadable low-level part.
        """
        fraction = (self.addressing_fraction if offloadable_fraction is None
                    else offloadable_fraction)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        serial = 1.0 - fraction
        if accel == float("inf"):
            if serial == 0.0:
                return float("inf")
            return 1.0 / serial
        return 1.0 / (serial + fraction / accel)

    def reset(self) -> None:
        for name in INSTRUCTION_CLASSES:
            self.counts[name] = 0.0
        self.calls = 0

    def snapshot(self) -> Dict[str, float]:
        result = dict(self.counts)
        result["calls"] = self.calls
        result["total"] = self.total_instructions
        result["addressing_fraction"] = self.addressing_fraction
        return result


# ---------------------------------------------------------------------------
# Access-count validation
# ---------------------------------------------------------------------------

def diff_access_snapshots(expected: Mapping[str, int],
                          measured: Mapping[str, int]
                          ) -> Dict[str, Tuple[int, int]]:
    """Keys whose tallies differ: ``name -> (expected, measured)``.

    Both arguments are snapshot-shaped mappings (the format of
    :meth:`repro.image.planar.AccessCounter.snapshot` and of
    :meth:`~repro.addresslib.executor.SoftwareCostModel.intra_counts_exact`).
    Keys present on only one side count as a mismatch against zero.  An
    empty result means the access predictions validate exactly -- this
    is the hook the strip executor's ``validate`` mode and the
    equivalence tests both check.
    """
    mismatches: Dict[str, Tuple[int, int]] = {}
    for key in sorted(set(expected) | set(measured)):
        want = int(expected.get(key, 0))
        got = int(measured.get(key, 0))
        if want != got:
            mismatches[key] = (want, got)
    return mismatches


def format_access_mismatches(mismatches: Mapping[str, Tuple[int, int]]
                             ) -> str:
    """One-line rendering of a :func:`diff_access_snapshots` result."""
    return "; ".join(f"{key}: expected {want}, measured {got}"
                     for key, (want, got) in sorted(mismatches.items()))
