"""Pixel-level sub-functions (paper section 2.2).

AddressLib separates pixel work into basic sub-functions (add, sub, mult,
grad, ...) that compose into complex operations such as homogeneity checks
or morphological gradients.  This module defines the operation objects:

* :class:`InterOp` -- elementwise over two frames (inter addressing);
* :class:`IntraOp` -- over a neighbourhood within one frame (intra
  addressing).

Each operation carries three executable faces kept consistent by tests:

1. ``scalar`` -- per-pixel reference semantics (drives the counted
   software model of Table 2 and the cycle-level engine's stage 3);
2. ``vector`` -- numpy bulk semantics (drives the fast functional
   executors used by GME and the examples);
3. ``cost`` -- per-pixel-per-channel processing instructions
   (:class:`~repro.addresslib.profiling.InstructionCost`; the executor
   adds the addressing cost on top).

All 8-bit channel math saturates to [0, 255]; intermediates use int32.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from .addressing import CON_0, CON_8, Neighbourhood
from .profiling import InstructionCost


class ChannelSet(Enum):
    """Which colour channels a call reads/writes (Table 2's channel column)."""

    Y = ("Y",)
    YUV = ("Y", "U", "V")

    def __init__(self, *names: str) -> None:
        self.channel_names: Tuple[str, ...] = names

    @property
    def count(self) -> int:
        return len(self.channel_names)


def _sat8(values: np.ndarray) -> np.ndarray:
    """Saturate an int array to the 8-bit channel range."""
    return np.clip(values, 0, 255).astype(np.uint8)


def _sat8_scalar(value: float) -> int:
    return int(min(max(round(value), 0), 255))


@dataclass(frozen=True)
class InterOp:
    """An elementwise operation over two frames: ``r = f(a, b)``."""

    name: str
    scalar: Callable[[int, int], int]
    vector: Callable[[np.ndarray, np.ndarray], np.ndarray]
    cost: InstructionCost
    #: Stage-3 latency of the engine datapath, in engine cycles.
    engine_cycles: int = 1

    def apply_scalar(self, a: int, b: int) -> int:
        return self.scalar(a, b)

    def apply_vector(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.vector(a, b)


@dataclass(frozen=True)
class IntraOp:
    """A neighbourhood operation within one frame.

    ``scalar`` receives the neighbourhood values in the order of
    ``neighbourhood.offsets``; ``vector`` receives a stack shaped
    ``(len(offsets), height, width)`` where plane ``i`` is the frame
    shifted by ``offsets[i]`` (border-clamped).
    """

    name: str
    neighbourhood: Neighbourhood
    scalar: Callable[[Sequence[int]], int]
    vector: Callable[[np.ndarray], np.ndarray]
    cost: InstructionCost
    engine_cycles: int = 1

    def apply_scalar(self, values: Sequence[int]) -> int:
        if len(values) != self.neighbourhood.size:
            raise ValueError(
                f"{self.name} expects {self.neighbourhood.size} "
                f"neighbourhood values, got {len(values)}")
        return self.scalar(values)

    def apply_vector(self, stack: np.ndarray) -> np.ndarray:
        if stack.shape[0] != self.neighbourhood.size:
            raise ValueError(
                f"{self.name} expects a {self.neighbourhood.size}-plane "
                f"stack, got {stack.shape[0]}")
        return self.vector(stack)


# ---------------------------------------------------------------------------
# Inter operations
# ---------------------------------------------------------------------------

def _make_inter(name: str, scalar, vector, cost: InstructionCost,
                engine_cycles: int = 1) -> InterOp:
    return InterOp(name=name, scalar=scalar, vector=vector, cost=cost,
                   engine_cycles=engine_cycles)


#: Saturating addition of two frames.
INTER_ADD = _make_inter(
    "inter_add",
    lambda a, b: _sat8_scalar(a + b),
    lambda a, b: _sat8(a.astype(np.int32) + b.astype(np.int32)),
    InstructionCost(alu=2))

#: Saturating subtraction ``a - b``.
INTER_SUB = _make_inter(
    "inter_sub",
    lambda a, b: _sat8_scalar(a - b),
    lambda a, b: _sat8(a.astype(np.int32) - b.astype(np.int32)),
    InstructionCost(alu=2))

#: Absolute difference -- the difference-picture / SAD building block the
#: paper names as the canonical inter operation.
INTER_ABSDIFF = _make_inter(
    "inter_absdiff",
    lambda a, b: abs(int(a) - int(b)),
    lambda a, b: np.abs(a.astype(np.int32) - b.astype(np.int32))
    .astype(np.uint8),
    InstructionCost(alu=2, branch=1))

#: Fixed-point multiply: ``(a * b) >> 8`` (product scaled back to 8 bits).
INTER_MUL = _make_inter(
    "inter_mul",
    lambda a, b: _sat8_scalar((int(a) * int(b)) >> 8),
    lambda a, b: _sat8((a.astype(np.int32) * b.astype(np.int32)) >> 8),
    InstructionCost(mul=1, alu=1),
    engine_cycles=2)

#: Elementwise minimum.
INTER_MIN = _make_inter(
    "inter_min",
    lambda a, b: min(int(a), int(b)),
    lambda a, b: np.minimum(a, b),
    InstructionCost(alu=1, branch=1))

#: Elementwise maximum.
INTER_MAX = _make_inter(
    "inter_max",
    lambda a, b: max(int(a), int(b)),
    lambda a, b: np.maximum(a, b),
    InstructionCost(alu=1, branch=1))

#: Rounding average of two frames (temporal smoothing).
INTER_AVG = _make_inter(
    "inter_avg",
    lambda a, b: (int(a) + int(b) + 1) >> 1,
    lambda a, b: ((a.astype(np.int32) + b.astype(np.int32) + 1) >> 1)
    .astype(np.uint8),
    InstructionCost(alu=2))


# ---------------------------------------------------------------------------
# Intra operations
# ---------------------------------------------------------------------------

def copy_op() -> IntraOp:
    """CON_0 identity: the Table 2 ``Intra CON_0`` workload."""
    return IntraOp(
        name="intra_copy",
        neighbourhood=CON_0,
        scalar=lambda v: int(v[0]),
        vector=lambda s: s[0].astype(np.uint8),
        cost=InstructionCost(alu=1))


def threshold_op(threshold: int, low: int = 0, high: int = 255) -> IntraOp:
    """CON_0 binarisation: ``high`` where value >= threshold else ``low``."""
    return IntraOp(
        name=f"intra_threshold_{threshold}",
        neighbourhood=CON_0,
        scalar=lambda v: high if v[0] >= threshold else low,
        vector=lambda s: np.where(s[0] >= threshold, high, low)
        .astype(np.uint8),
        cost=InstructionCost(alu=1, branch=1))


def scale_offset_op(scale_num: int, scale_den: int, offset: int) -> IntraOp:
    """CON_0 affine remap: ``v * scale_num / scale_den + offset``, saturated."""
    if scale_den <= 0:
        raise ValueError("scale_den must be positive")

    def scalar(v: Sequence[int]) -> int:
        return _sat8_scalar(int(v[0]) * scale_num // scale_den + offset)

    def vector(s: np.ndarray) -> np.ndarray:
        return _sat8(s[0].astype(np.int64) * scale_num // scale_den + offset)

    return IntraOp(
        name=f"intra_scale_{scale_num}_{scale_den}_{offset}",
        neighbourhood=CON_0, scalar=scalar, vector=vector,
        cost=InstructionCost(mul=1, alu=2))


def fir_op(name: str, neighbourhood: Neighbourhood,
           weights: Sequence[int], shift: int = 0) -> IntraOp:
    """A FIR filter: weighted sum over the neighbourhood, ``>> shift``.

    ``weights`` follows ``neighbourhood.offsets`` order.  This is the
    paper's "FIR filter like operations" family (section 2.1: intra
    addressing is "typically used for FIR filter like operations").
    """
    if len(weights) != neighbourhood.size:
        raise ValueError(
            f"{name}: {len(weights)} weights for "
            f"{neighbourhood.size}-pixel neighbourhood")
    weight_arr = np.asarray(weights, dtype=np.int64)

    def scalar(values: Sequence[int]) -> int:
        acc = sum(int(w) * int(v) for w, v in zip(weights, values))
        return _sat8_scalar(acc >> shift if shift else acc)

    def vector(stack: np.ndarray) -> np.ndarray:
        acc = np.tensordot(weight_arr, stack.astype(np.int64), axes=(0, 0))
        if shift:
            acc >>= shift
        return _sat8(acc)

    taps = int(np.count_nonzero(weight_arr))
    return IntraOp(
        name=name, neighbourhood=neighbourhood, scalar=scalar, vector=vector,
        cost=InstructionCost(mul=taps, alu=taps + 1),
        engine_cycles=2)


def box3_op() -> IntraOp:
    """3x3 box blur (sum / 9 approximated as ``* 57 >> 9``)."""
    nine = [1] * 9

    def scalar(values: Sequence[int]) -> int:
        return _sat8_scalar((sum(int(v) for v in values) * 57) >> 9)

    def vector(stack: np.ndarray) -> np.ndarray:
        return _sat8((stack.astype(np.int64).sum(axis=0) * 57) >> 9)

    return IntraOp(
        name="intra_box3", neighbourhood=CON_8, scalar=scalar, vector=vector,
        cost=InstructionCost(mul=1, alu=len(nine) + 1), engine_cycles=2)


def _offset_weight_map(neighbourhood: Neighbourhood,
                       mapping: Dict[Tuple[int, int], int]) -> Tuple[int, ...]:
    return tuple(mapping.get(off, 0) for off in neighbourhood.offsets)


def sobel_x_op() -> IntraOp:
    """Horizontal Sobel derivative, biased by +128 into the 8-bit range."""
    weights = _offset_weight_map(CON_8, {
        (-1, -1): -1, (1, -1): 1,
        (-1, 0): -2, (1, 0): 2,
        (-1, 1): -1, (1, 1): 1,
    })

    def scalar(values: Sequence[int]) -> int:
        acc = sum(w * int(v) for w, v in zip(weights, values))
        return _sat8_scalar((acc >> 3) + 128)

    def vector(stack: np.ndarray) -> np.ndarray:
        acc = np.tensordot(np.asarray(weights, np.int64),
                           stack.astype(np.int64), axes=(0, 0))
        return _sat8((acc >> 3) + 128)

    return IntraOp(name="intra_sobel_x", neighbourhood=CON_8,
                   scalar=scalar, vector=vector,
                   cost=InstructionCost(mul=6, alu=8), engine_cycles=2)


def sobel_y_op() -> IntraOp:
    """Vertical Sobel derivative, biased by +128 into the 8-bit range."""
    weights = _offset_weight_map(CON_8, {
        (-1, -1): -1, (0, -1): -2, (1, -1): -1,
        (-1, 1): 1, (0, 1): 2, (1, 1): 1,
    })

    def scalar(values: Sequence[int]) -> int:
        acc = sum(w * int(v) for w, v in zip(weights, values))
        return _sat8_scalar((acc >> 3) + 128)

    def vector(stack: np.ndarray) -> np.ndarray:
        acc = np.tensordot(np.asarray(weights, np.int64),
                           stack.astype(np.int64), axes=(0, 0))
        return _sat8((acc >> 3) + 128)

    return IntraOp(name="intra_sobel_y", neighbourhood=CON_8,
                   scalar=scalar, vector=vector,
                   cost=InstructionCost(mul=6, alu=8), engine_cycles=2)


def gradient_magnitude_op() -> IntraOp:
    """|Sobel_x| + |Sobel_y| over the 3x3 neighbourhood ("grad")."""
    wx = _offset_weight_map(CON_8, {
        (-1, -1): -1, (1, -1): 1, (-1, 0): -2, (1, 0): 2,
        (-1, 1): -1, (1, 1): 1,
    })
    wy = _offset_weight_map(CON_8, {
        (-1, -1): -1, (0, -1): -2, (1, -1): -1,
        (-1, 1): 1, (0, 1): 2, (1, 1): 1,
    })

    def scalar(values: Sequence[int]) -> int:
        gx = sum(w * int(v) for w, v in zip(wx, values))
        gy = sum(w * int(v) for w, v in zip(wy, values))
        return _sat8_scalar((abs(gx) + abs(gy)) >> 3)

    def vector(stack: np.ndarray) -> np.ndarray:
        planes = stack.astype(np.int64)
        gx = np.tensordot(np.asarray(wx, np.int64), planes, axes=(0, 0))
        gy = np.tensordot(np.asarray(wy, np.int64), planes, axes=(0, 0))
        return _sat8((np.abs(gx) + np.abs(gy)) >> 3)

    return IntraOp(name="intra_grad", neighbourhood=CON_8,
                   scalar=scalar, vector=vector,
                   cost=InstructionCost(mul=12, alu=18, branch=2),
                   engine_cycles=3)


def erode_op(neighbourhood: Neighbourhood = CON_8) -> IntraOp:
    """Morphological erosion: neighbourhood minimum."""
    return IntraOp(
        name=f"intra_erode_{neighbourhood.name}",
        neighbourhood=neighbourhood,
        scalar=lambda v: int(min(v)),
        vector=lambda s: s.min(axis=0).astype(np.uint8),
        cost=InstructionCost(alu=neighbourhood.size - 1,
                             branch=neighbourhood.size - 1))


def dilate_op(neighbourhood: Neighbourhood = CON_8) -> IntraOp:
    """Morphological dilation: neighbourhood maximum."""
    return IntraOp(
        name=f"intra_dilate_{neighbourhood.name}",
        neighbourhood=neighbourhood,
        scalar=lambda v: int(max(v)),
        vector=lambda s: s.max(axis=0).astype(np.uint8),
        cost=InstructionCost(alu=neighbourhood.size - 1,
                             branch=neighbourhood.size - 1))


def morph_gradient_op(neighbourhood: Neighbourhood = CON_8) -> IntraOp:
    """Morphological gradient: dilation minus erosion in one pass.

    The paper names "morphological gradient operations" as a canonical
    composition of basic sub-functions.
    """
    return IntraOp(
        name=f"intra_morph_grad_{neighbourhood.name}",
        neighbourhood=neighbourhood,
        scalar=lambda v: int(max(v)) - int(min(v)),
        vector=lambda s: (s.max(axis=0).astype(np.int32)
                          - s.min(axis=0).astype(np.int32)).astype(np.uint8),
        cost=InstructionCost(alu=2 * neighbourhood.size - 1,
                             branch=2 * (neighbourhood.size - 1)),
        engine_cycles=2)


def median3_op() -> IntraOp:
    """3x3 median filter (rank filter; impulse noise removal)."""
    def scalar(values: Sequence[int]) -> int:
        ordered = sorted(int(v) for v in values)
        return ordered[len(ordered) // 2]

    def vector(stack: np.ndarray) -> np.ndarray:
        return np.median(stack, axis=0).astype(np.uint8)

    return IntraOp(name="intra_median3", neighbourhood=CON_8,
                   scalar=scalar, vector=vector,
                   cost=InstructionCost(alu=30, branch=19),
                   engine_cycles=4)


def laplace_op() -> IntraOp:
    """3x3 Laplacian (centre*8 - neighbours), biased by +128."""
    weights = _offset_weight_map(CON_8, {
        (0, 0): 8,
        (-1, -1): -1, (0, -1): -1, (1, -1): -1,
        (-1, 0): -1, (1, 0): -1,
        (-1, 1): -1, (0, 1): -1, (1, 1): -1,
    })

    def scalar(values: Sequence[int]) -> int:
        acc = sum(w * int(v) for w, v in zip(weights, values))
        return _sat8_scalar((acc >> 3) + 128)

    def vector(stack: np.ndarray) -> np.ndarray:
        acc = np.tensordot(np.asarray(weights, np.int64),
                           stack.astype(np.int64), axes=(0, 0))
        return _sat8((acc >> 3) + 128)

    return IntraOp(name="intra_laplace", neighbourhood=CON_8,
                   scalar=scalar, vector=vector,
                   cost=InstructionCost(mul=9, alu=10), engine_cycles=2)


def homogeneity_op(neighbourhood: Neighbourhood = CON_8) -> IntraOp:
    """Maximum absolute difference between the centre and its neighbours.

    The paper's example composition: "luminance/chrominance difference
    between neighboring pixels for homogeneity check" -- low output means
    the centre sits inside a homogeneous region, high output marks a
    boundary.  Segment growing thresholds this value.
    """
    centre_index = neighbourhood.offsets.index((0, 0))

    def scalar(values: Sequence[int]) -> int:
        centre = int(values[centre_index])
        return max(abs(int(v) - centre) for v in values)

    def vector(stack: np.ndarray) -> np.ndarray:
        centre = stack[centre_index].astype(np.int32)
        diffs = np.abs(stack.astype(np.int32) - centre[None])
        return diffs.max(axis=0).astype(np.uint8)

    return IntraOp(name=f"intra_homogeneity_{neighbourhood.name}",
                   neighbourhood=neighbourhood,
                   scalar=scalar, vector=vector,
                   cost=InstructionCost(alu=2 * neighbourhood.size,
                                        branch=neighbourhood.size))


#: Ready-made instances of the parameterless intra ops.
INTRA_COPY = copy_op()
INTRA_BOX3 = box3_op()
INTRA_SOBEL_X = sobel_x_op()
INTRA_SOBEL_Y = sobel_y_op()
INTRA_GRAD = gradient_magnitude_op()
INTRA_ERODE = erode_op()
INTRA_DILATE = dilate_op()
INTRA_MORPH_GRAD = morph_gradient_op()
INTRA_MEDIAN3 = median3_op()
INTRA_LAPLACE = laplace_op()
INTRA_HOMOGENEITY = homogeneity_op()

#: All named inter ops, by name.
INTER_OPS: Dict[str, InterOp] = {
    op.name: op for op in (
        INTER_ADD, INTER_SUB, INTER_ABSDIFF, INTER_MUL, INTER_MIN,
        INTER_MAX, INTER_AVG)
}

#: All parameterless intra ops, by name.
INTRA_OPS: Dict[str, IntraOp] = {
    op.name: op for op in (
        INTRA_COPY, INTRA_BOX3, INTRA_SOBEL_X, INTRA_SOBEL_Y, INTRA_GRAD,
        INTRA_ERODE, INTRA_DILATE, INTRA_MORPH_GRAD, INTRA_MEDIAN3,
        INTRA_LAPLACE, INTRA_HOMOGENEITY)
}
