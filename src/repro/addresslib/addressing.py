"""The four AddressLib pixel addressing schemes (paper section 2.1).

* **Inter** addressing: one result per pixel position computed from two
  frames (difference pictures, SAD, ...).
* **Intra** addressing: one result per pixel from the pixel and its
  neighbourhood within the same frame (FIR-like filters, gradients,
  morphology).
* **Segment** addressing: expansion over arbitrarily shaped segments --
  start pixels are processed first, then unprocessed neighbours that meet
  a neighbourhood criterion join, so pixels are visited in order of
  geodesic distance (implemented in :mod:`repro.addresslib.segment`).
* **Segment-indexed** addressing: indexed side-table access used alongside
  one of the other schemes (implemented in :mod:`repro.addresslib.indexed`).

This module defines the vocabulary shared by all of them: addressing-mode
tags, neighbourhood shapes (including the paper's CON_0 / CON_8 names from
Table 2), and the frame scan orders that determine strip orientation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Tuple

from ..image.formats import ImageFormat

#: The paper's hard limit: "the maximum range of input data required to
#: process one pixel is nine lines" (section 3.1) -- neighbourhoods may not
#: span more than nine lines, which is why the strip/IIM size is sixteen.
MAX_NEIGHBOURHOOD_LINES = 9


class AddressingMode(Enum):
    """The four AddressLib addressing schemes."""

    INTER = "inter"
    INTRA = "intra"
    SEGMENT = "segment"
    SEGMENT_INDEXED = "segment_indexed"

    @property
    def engine_supported_v1(self) -> bool:
        """Whether the first AddressEngine prototype supports this mode.

        Section 3: the v1 hardware implements only the inter and intra
        modes; segment addressing is future work.
        """
        return self in (AddressingMode.INTER, AddressingMode.INTRA)


class ScanOrder(Enum):
    """Frame scan orders; strips are transferred parallel to the scan."""

    HORIZONTAL = "horizontal"   # row-major raster, left-to-right
    VERTICAL = "vertical"       # column-major, top-to-bottom


@dataclass(frozen=True)
class Neighbourhood:
    """A set of pixel offsets around the centre pixel.

    Offsets are ``(dx, dy)`` with ``dy`` down the frame.  The centre
    ``(0, 0)`` is always included.
    """

    name: str
    offsets: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if (0, 0) not in self.offsets:
            raise ValueError(f"neighbourhood {self.name} must contain (0, 0)")
        if len(set(self.offsets)) != len(self.offsets):
            raise ValueError(f"neighbourhood {self.name} has duplicate offsets")
        if self.line_span > MAX_NEIGHBOURHOOD_LINES:
            raise ValueError(
                f"neighbourhood {self.name} spans {self.line_span} lines; "
                f"AddressLib limits input range to "
                f"{MAX_NEIGHBOURHOOD_LINES} lines")

    @property
    def size(self) -> int:
        """Number of pixels in the neighbourhood (centre included)."""
        return len(self.offsets)

    @property
    def line_span(self) -> int:
        """Number of frame lines the neighbourhood touches."""
        dys = [dy for _, dy in self.offsets]
        return max(dys) - min(dys) + 1

    @property
    def column_span(self) -> int:
        """Number of frame columns the neighbourhood touches."""
        dxs = [dx for dx, _ in self.offsets]
        return max(dxs) - min(dxs) + 1

    def span_perpendicular_to(self, scan: ScanOrder) -> int:
        """Extent perpendicular to the scan direction.

        Figure 4's worst case is a neighbourhood whose maximum extent lies
        perpendicular to the scan: those pixels live in *different* IIM
        line stores, which is exactly why the IIM is built from parallel
        line blocks (so even that case loads in one cycle).
        """
        if scan is ScanOrder.HORIZONTAL:
            return self.line_span
        return self.column_span

    def fresh_offsets(self, scan: ScanOrder) -> Tuple[Tuple[int, int], ...]:
        """Offsets *not* reusable from the previous scan position.

        When the window slides one step along the scan, every offset that
        was covered at the previous position can be kept (software keeps
        them in registers, the engine keeps them in the matrix register);
        only the leading edge must be loaded.  This is the software memory
        access model behind Table 2 (3 fresh reads per step for CON_8).
        """
        step = (1, 0) if scan is ScanOrder.HORIZONTAL else (0, 1)
        return self.fresh_offsets_for_step(step)

    def fresh_offsets_for_step(self, step: Tuple[int, int]
                               ) -> Tuple[Tuple[int, int], ...]:
        """Offsets that must be (re)loaded when the window moves by
        ``step``.

        An offset ``o`` of the new window can reuse the old window's
        value at ``o + step`` if that position was itself in the window;
        everything else is fresh.  The serpentine walk only ever moves by
        unit steps, but the rule holds for any displacement.
        """
        kept = {(dx - step[0], dy - step[1]) for dx, dy in self.offsets}
        return tuple(off for off in self.offsets if off not in kept)

    # -- closed-form serpentine access counts -------------------------------
    #
    # After the very first window fill the sliding window always covers
    # the complete offset set, so the fresh-read count of every later
    # step depends only on the step direction.  A serpentine walk uses
    # exactly three directions: forward along the scan, backward along
    # the scan (alternate lines), and one turn step between lines.  That
    # makes the total read count of the per-pixel walk a closed form --
    # which is what lets the strip executor credit access counters
    # without visiting pixels.

    def _serpentine_params(self, width: int, height: int,
                           scan: ScanOrder) -> Tuple[int, int, int, int, int]:
        """``(lines, line_len, f_fwd, f_bwd, f_turn)`` of the walk."""
        if width < 1 or height < 1:
            raise ValueError(f"plane must be at least 1x1, "
                             f"got {width}x{height}")
        if scan is ScanOrder.HORIZONTAL:
            lines, line_len = height, width
            fwd, turn = (1, 0), (0, 1)
        else:
            lines, line_len = width, height
            fwd, turn = (0, 1), (1, 0)
        bwd = (-fwd[0], -fwd[1])
        return (lines, line_len,
                len(self.fresh_offsets_for_step(fwd)),
                len(self.fresh_offsets_for_step(bwd)),
                len(self.fresh_offsets_for_step(turn)))

    def serpentine_reads_in_lines(self, first_line: int, line_count: int,
                                  width: int, height: int,
                                  scan: ScanOrder = ScanOrder.HORIZONTAL
                                  ) -> int:
        """Fresh reads of the serpentine walk over one run of scan lines.

        ``first_line`` / ``line_count`` select whole scan lines (frame
        rows for a horizontal scan, frame columns for a vertical one).
        Line 0 pays the full window fill at its first position; every
        other line pays one line-turn step; within a line the remaining
        ``line_len - 1`` steps pay the forward or backward leading edge
        depending on the line's parity.  Summed over all lines this is
        exactly what the per-pixel walk counts.
        """
        lines, line_len, f_fwd, f_bwd, f_turn = self._serpentine_params(
            width, height, scan)
        last = first_line + line_count
        if not 0 <= first_line <= last <= lines:
            raise ValueError(
                f"lines [{first_line}, {last}) outside [0, {lines})")
        even = (last + 1) // 2 - (first_line + 1) // 2
        odd = line_count - even
        reads = (line_len - 1) * (even * f_fwd + odd * f_bwd)
        if first_line == 0 and line_count > 0:
            reads += self.size + (line_count - 1) * f_turn
        else:
            reads += line_count * f_turn
        return reads

    def serpentine_reads(self, width: int, height: int,
                         scan: ScanOrder = ScanOrder.HORIZONTAL) -> int:
        """Total fresh reads of the full serpentine walk over a plane.

        Closed form: the first position loads the whole window, each of
        the ``lines - 1`` turns loads the turn edge, and each of the
        ``line_len - 1`` in-line steps loads the forward or backward
        edge of its line.  Bit-identical to what
        :class:`~repro.addresslib.executor.CountedExecutor` tallies.
        """
        lines, line_len, f_fwd, f_bwd, f_turn = self._serpentine_params(
            width, height, scan)
        return (self.size + (lines - 1) * f_turn
                + (line_len - 1) * ((lines + 1) // 2 * f_fwd
                                    + lines // 2 * f_bwd))

    def bounding_box(self) -> Tuple[int, int, int, int]:
        """``(min_dx, min_dy, max_dx, max_dy)`` of the offsets."""
        dxs = [dx for dx, _ in self.offsets]
        dys = [dy for _, dy in self.offsets]
        return min(dxs), min(dys), max(dxs), max(dys)


def _rect_offsets(half_w: int, half_h: int) -> Tuple[Tuple[int, int], ...]:
    return tuple((dx, dy)
                 for dy in range(-half_h, half_h + 1)
                 for dx in range(-half_w, half_w + 1))


#: CON_0: the single-pixel neighbourhood of Table 2.
CON_0 = Neighbourhood("CON_0", ((0, 0),))

#: CON_4: the 4-connected cross (centre + N/S/E/W).
CON_4 = Neighbourhood("CON_4", ((0, 0), (0, -1), (-1, 0), (1, 0), (0, 1)))

#: CON_8: the squared 8-pixel neighbourhood of Table 2 / Figure 4 (3x3).
CON_8 = Neighbourhood("CON_8", _rect_offsets(1, 1))

#: CON_24: the 5x5 neighbourhood (larger FIR kernels).
CON_24 = Neighbourhood("CON_24", _rect_offsets(2, 2))

#: The Figure 4 worst case: maximum 9-line extent perpendicular to a
#: horizontal scan -- a 1x9 column of pixels.
COLUMN_9 = Neighbourhood("COLUMN_9",
                         tuple((0, dy) for dy in range(-4, 5)))

#: Named neighbourhoods for lookup.
NAMED_NEIGHBOURHOODS = {
    n.name: n for n in (CON_0, CON_4, CON_8, CON_24, COLUMN_9)
}


def neighbourhood_by_name(name: str) -> Neighbourhood:
    """Look up a named neighbourhood (``CON_0``, ``CON_8``, ...)."""
    try:
        return NAMED_NEIGHBOURHOODS[name.strip().upper()]
    except KeyError:
        raise KeyError(
            f"unknown neighbourhood {name!r}; known: "
            f"{', '.join(sorted(NAMED_NEIGHBOURHOODS))}") from None


def scan_positions(fmt: ImageFormat,
                   order: ScanOrder = ScanOrder.HORIZONTAL
                   ) -> Iterator[Tuple[int, int]]:
    """Yield every ``(x, y)`` of the frame in scan order.

    This is the reference pixel visit order for the inter and intra
    schemes; stage 1 of the engine's Process Unit computes exactly this
    sequence with its position counters.
    """
    if order is ScanOrder.HORIZONTAL:
        for y in range(fmt.height):
            for x in range(fmt.width):
                yield x, y
    else:
        for x in range(fmt.width):
            for y in range(fmt.height):
                yield x, y


def neighbour_positions(x: int, y: int, neighbourhood: Neighbourhood,
                        fmt: ImageFormat, clamp: bool = True
                        ) -> List[Tuple[int, int]]:
    """Absolute positions of a neighbourhood around ``(x, y)``.

    With ``clamp`` (the AddressLib border policy) out-of-frame offsets are
    replicated from the nearest border pixel; otherwise they are dropped.
    """
    positions = []
    for dx, dy in neighbourhood.offsets:
        px, py = x + dx, y + dy
        if clamp:
            px = min(max(px, 0), fmt.width - 1)
            py = min(max(py, 0), fmt.height - 1)
            positions.append((px, py))
        elif fmt.contains(px, py):
            positions.append((px, py))
    return positions
