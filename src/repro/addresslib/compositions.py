"""Composite operations: chains of AddressLib calls.

Paper section 2.2: *"These sub-functions can be combined to form more
complex operations, e.g. luminance/chrominance difference between
neighboring pixels for homogeneity check, or morphological gradient
operations."*  Single-call compositions live in :mod:`repro.addresslib.ops`
(homogeneity, morphological gradient); this module provides the
*multi-call* compositions -- each stage is a full AddressLib call, so a
chain runs unchanged on either backend and every stage lands in the call
log.

Provided chains:

* morphological **opening** / **closing** (erode-dilate pairs);
* **top-hat** (image minus its opening: small bright structures);
* **unsharp masking** (edge-boosted sharpening);
* **temporal smoothing** (running average of a frame sequence);
* **motion mask** (difference picture, smoothing, binarisation -- the
  surveillance front end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..image.frame import Frame
from .addressing import Neighbourhood, CON_8
from .library import AddressLib
from .ops import (ChannelSet, INTER_ABSDIFF, INTER_AVG, INTER_SUB,
                  INTRA_BOX3, dilate_op, erode_op, threshold_op)


def opening(lib: AddressLib, frame: Frame,
            neighbourhood: Neighbourhood = CON_8,
            channels: ChannelSet = ChannelSet.Y) -> Frame:
    """Morphological opening: erosion then dilation (two intra calls).

    Removes bright structures smaller than the structuring element while
    preserving the larger shapes.
    """
    eroded = lib.intra(erode_op(neighbourhood), frame, channels)
    return lib.intra(dilate_op(neighbourhood), eroded, channels)


def closing(lib: AddressLib, frame: Frame,
            neighbourhood: Neighbourhood = CON_8,
            channels: ChannelSet = ChannelSet.Y) -> Frame:
    """Morphological closing: dilation then erosion (two intra calls).

    Fills dark gaps smaller than the structuring element.
    """
    dilated = lib.intra(dilate_op(neighbourhood), frame, channels)
    return lib.intra(erode_op(neighbourhood), dilated, channels)


def top_hat(lib: AddressLib, frame: Frame,
            neighbourhood: Neighbourhood = CON_8,
            channels: ChannelSet = ChannelSet.Y) -> Frame:
    """White top-hat: the frame minus its opening (three calls).

    Isolates bright details smaller than the structuring element --
    classic small-object / highlight detection.
    """
    opened = opening(lib, frame, neighbourhood, channels)
    return lib.inter(INTER_SUB, frame, opened, channels)


def unsharp_mask(lib: AddressLib, frame: Frame,
                 channels: ChannelSet = ChannelSet.Y) -> Frame:
    """Unsharp masking: frame + (frame - blur), saturating (three calls).

    The high-frequency residue of the box blur is added back, boosting
    edges.  Implemented with saturating sub/add, so the result stays a
    valid 8-bit image.
    """
    from .ops import INTER_ADD
    blurred = lib.intra(INTRA_BOX3, frame, channels)
    residue = lib.inter(INTER_SUB, frame, blurred, channels)
    return lib.inter(INTER_ADD, frame, residue, channels)


def temporal_smooth(lib: AddressLib, frames: Iterable[Frame],
                    channels: ChannelSet = ChannelSet.Y) -> Optional[Frame]:
    """Running average over a frame sequence (one inter call per frame).

    Each step averages the accumulator with the next frame -- an
    exponentially weighted smoothing with factor 1/2, the cheap recursive
    background estimator used by change-detection front ends.
    """
    accumulator: Optional[Frame] = None
    for frame in frames:
        if accumulator is None:
            accumulator = frame.copy()
        else:
            accumulator = lib.inter(INTER_AVG, accumulator, frame,
                                    channels)
    return accumulator


@dataclass(frozen=True)
class MotionMaskSettings:
    """Tunables of the motion-mask front end."""

    threshold: int = 40
    #: Post-threshold opening to remove speckle (None disables it).
    despeckle: Optional[Neighbourhood] = CON_8


def motion_mask(lib: AddressLib, frame: Frame, background: Frame,
                settings: Optional[MotionMaskSettings] = None) -> Frame:
    """The surveillance front end as one composition (3-6 calls).

    Difference picture against the background (inter), box smoothing
    (intra), binarisation (intra) and optional morphological despeckling
    (two intra calls).  The returned frame's Y plane is the 0/255 mask.
    """
    settings = settings or MotionMaskSettings()
    difference = lib.inter(INTER_ABSDIFF, frame, background)
    smooth = lib.intra(INTRA_BOX3, difference)
    mask = lib.intra(threshold_op(settings.threshold), smooth)
    if settings.despeckle is not None:
        mask = opening(lib, mask, settings.despeckle)
    return mask


def call_count_of(chain_name: str) -> int:
    """Calls each provided chain makes per invocation (for planning)."""
    counts = {
        "opening": 2,
        "closing": 2,
        "top_hat": 3,
        "unsharp_mask": 3,
        "motion_mask": 5,       # with default despeckling
    }
    try:
        return counts[chain_name]
    except KeyError:
        raise KeyError(f"unknown chain {chain_name!r}; known: "
                       f"{', '.join(sorted(counts))}") from None
