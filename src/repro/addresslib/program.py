"""Call-program introspection: what a chain of AddressLib calls *is*.

The static analyzer (:mod:`repro.analysis`) needs to see a program --
every call, its operation, format and dataflow -- without simulating a
single engine cycle.  This module provides that view:

* :class:`ProgramStep` -- one AddressLib call as pure data (mode, op,
  format, input/output plane names, source location);
* :class:`CallProgram` -- an ordered chain of steps with named external
  inputs and results;
* :class:`ProgramRecorder` -- a :class:`~repro.addresslib.library.Backend`
  that executes calls on the software path *and* records each one as a
  step, so any existing composition (``opening``, ``motion_mask``, ...)
  can be traced by running it once against a recording library;
* :func:`trace_program` -- the one-call wrapper around the recorder.

Nothing here imports :mod:`repro.core`: the step is plain data, and the
analyzer (which imports both sides) turns steps into
:class:`~repro.core.config.EngineConfig` objects when it checks them.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..image.formats import ImageFormat
from ..image.frame import Frame
from .addressing import AddressingMode
from .library import Backend, CallRecord, SoftwareBackend
from .ops import ChannelSet, InterOp, IntraOp

#: Module basenames whose stack frames are library plumbing, not the
#: program under analysis; the recorder skips them when attributing a
#: step to a source location so that e.g. ``compositions.py:119`` or the
#: user's script surfaces instead.
_PLUMBING_FILES = ("library.py", "program.py")


@dataclass(frozen=True)
class SourceLocation:
    """Where a step was issued from (best effort, may be unknown)."""

    filename: str
    line: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}"


@dataclass(frozen=True)
class ProgramStep:
    """One AddressLib call as pure data.

    ``inputs`` and ``output`` are *plane names*: opaque labels that tie
    the dataflow together ("in0" for the program's first external input,
    "t3" for the temporary produced by step 3).  The analyzer's hazard
    rules reason over these names only.
    """

    index: int
    mode: AddressingMode
    op: Union[InterOp, IntraOp]
    fmt: ImageFormat
    channels: ChannelSet
    inputs: Tuple[str, ...]
    output: Optional[str]
    reduce_to_scalar: bool = False
    requires_full_frames: bool = False
    #: Per-input flags claiming the plane is already resident in ZBT
    #: from the previous call (call chaining); ``None`` means no claim.
    resident: Optional[Tuple[bool, ...]] = None
    label: str = ""
    location: Optional[SourceLocation] = None

    @property
    def describe(self) -> str:
        """Human-oriented one-liner ("step 2: intra ERODE_CON8 on t1")."""
        target = f" -> {self.output}" if self.output else " -> scalar"
        return (f"step {self.index}: {self.mode.value} {self.op.name}"
                f"({', '.join(self.inputs)}){target}")


@dataclass(frozen=True)
class CallProgram:
    """An ordered chain of AddressLib calls over named planes."""

    name: str
    fmt: ImageFormat
    inputs: Tuple[str, ...]
    steps: Tuple[ProgramStep, ...]
    results: Tuple[str, ...] = ()

    @classmethod
    def single(cls, config: "object", name: str = "call",
               resident: Optional[Sequence[bool]] = None) -> "CallProgram":
        """Wrap one :class:`~repro.core.config.EngineConfig`-shaped call.

        ``config`` is duck-typed (mode, op, fmt, channels,
        reduce_to_scalar, requires_full_frames, images_in) so this module
        stays free of a ``repro.core`` import.
        """
        images_in: int = config.images_in  # type: ignore[attr-defined]
        inputs = tuple(f"in{i}" for i in range(images_in))
        reduce_to_scalar = bool(
            config.reduce_to_scalar)  # type: ignore[attr-defined]
        output = None if reduce_to_scalar else "out"
        step = ProgramStep(
            index=0,
            mode=config.mode,  # type: ignore[attr-defined]
            op=config.op,  # type: ignore[attr-defined]
            fmt=config.fmt,  # type: ignore[attr-defined]
            channels=config.channels,  # type: ignore[attr-defined]
            inputs=inputs,
            output=output,
            reduce_to_scalar=reduce_to_scalar,
            requires_full_frames=bool(
                config.requires_full_frames),  # type: ignore[attr-defined]
            resident=tuple(resident) if resident is not None else None,
            label=name)
        return cls(name=name, fmt=step.fmt, inputs=inputs, steps=(step,),
                   results=(output,) if output else ())

    @property
    def written_planes(self) -> Tuple[str, ...]:
        return tuple(s.output for s in self.steps if s.output is not None)


# ---------------------------------------------------------------------------
# Dependency structure (what the pipelined scheduler is allowed to reorder)
# ---------------------------------------------------------------------------

def dependency_edges(program: CallProgram) -> List[Tuple[int, int]]:
    """Ordering constraints between steps, as ``(before, after)`` pairs.

    Three hazard kinds force an edge, matching classic dataflow:

    * **RAW** -- a step reads a plane the last writer produced;
    * **WAW** -- a step overwrites a plane an earlier step wrote;
    * **WAR** -- a step overwrites a plane earlier steps read (possible
      only in hand-built programs; the recorder's SSA temp naming never
      reuses a plane name).

    Steps not connected by a path may execute concurrently: their
    inputs and outputs are disjoint planes, so any interleaving of the
    underlying calls produces bit-identical results.
    """
    last_writer: Dict[str, int] = {}
    readers: Dict[str, List[int]] = {}
    edges = set()
    for step in program.steps:
        for name in step.inputs:
            writer = last_writer.get(name)
            if writer is not None and writer != step.index:
                edges.add((writer, step.index))
        if step.output is not None:
            writer = last_writer.get(step.output)
            if writer is not None and writer != step.index:
                edges.add((writer, step.index))
            for reader in readers.get(step.output, ()):
                if reader != step.index:
                    edges.add((reader, step.index))
            last_writer[step.output] = step.index
            readers[step.output] = []
        for name in step.inputs:
            readers.setdefault(name, []).append(step.index)
    return sorted(edges)


def dependency_levels(program: CallProgram) -> List[List[int]]:
    """ASAP wavefronts: lists of step indices, in program order, where
    every step's predecessors sit in strictly earlier lists.

    All steps inside one wavefront are mutually independent -- this is
    the unit the call scheduler dispatches concurrently.
    """
    predecessors: Dict[int, List[int]] = {}
    for before, after in dependency_edges(program):
        predecessors.setdefault(after, []).append(before)
    level_of: Dict[int, int] = {}
    levels: List[List[int]] = []
    for step in program.steps:
        preds = predecessors.get(step.index, [])
        level = 1 + max((level_of[p] for p in preds), default=-1)
        level_of[step.index] = level
        while len(levels) <= level:
            levels.append([])
        levels[level].append(step.index)
    return levels


def critical_path_length(program: CallProgram) -> int:
    """Length (in calls) of the longest dependency chain."""
    if not program.steps:
        return 0
    return len(dependency_levels(program))


def exploitable_parallelism(program: CallProgram) -> float:
    """Average calls per wavefront: ``steps / critical path``.

    1.0 means the program serialises completely -- the scheduler can
    give it no concurrency; the rule layer flags that case (SCH001).
    """
    path = critical_path_length(program)
    if path == 0:
        return 1.0
    return len(program.steps) / path


def _issue_location() -> Optional[SourceLocation]:
    """The nearest stack frame outside the AddressLib plumbing."""
    depth = 1
    while True:
        try:
            frame = sys._getframe(depth)
        except ValueError:
            return None
        filename = frame.f_code.co_filename
        if not filename.endswith(_PLUMBING_FILES):
            return SourceLocation(filename=filename,
                                  line=frame.f_lineno)
        depth += 1


class ProgramRecorder(Backend):
    """A backend that executes calls in software *and* records them.

    Frames are identified by object identity: the recorder keeps a
    strong reference to every frame it has named, so a temporary that
    one stage produces and a later stage consumes resolves to the same
    plane name even though the composition never names it.
    """

    name = "recorder"

    def __init__(self, inputs: Sequence[Frame],
                 input_names: Optional[Sequence[str]] = None) -> None:
        self._delegate = SoftwareBackend()
        self._names: Dict[int, str] = {}
        self._pinned: List[Frame] = []
        self._temp_count = 0
        self.steps: List[ProgramStep] = []
        names = (tuple(input_names) if input_names is not None
                 else tuple(f"in{i}" for i in range(len(inputs))))
        if len(names) != len(inputs):
            raise ValueError("one name per input frame required")
        self.input_names = names
        for frame, name_ in zip(inputs, names):
            self._pin(frame, name_)

    def _pin(self, frame: Frame, name_: str) -> None:
        self._names[id(frame)] = name_
        self._pinned.append(frame)

    def _name_of(self, frame: Frame) -> str:
        try:
            return self._names[id(frame)]
        except KeyError:
            # A frame the program materialised outside AddressLib (e.g.
            # ``temporal_smooth``'s first copy): treat as a fresh input.
            name_ = f"ext{len(self._pinned)}"
            self._pin(frame, name_)
            return name_

    def _record(self, mode: AddressingMode, op: Union[InterOp, IntraOp],
                fmt: ImageFormat, channels: ChannelSet,
                inputs: Tuple[str, ...], result: Optional[Frame],
                reduce_to_scalar: bool = False) -> None:
        output: Optional[str] = None
        if result is not None:
            output = f"t{self._temp_count}"
            self._temp_count += 1
            self._pin(result, output)
        self.steps.append(ProgramStep(
            index=len(self.steps), mode=mode, op=op, fmt=fmt,
            channels=channels, inputs=inputs, output=output,
            reduce_to_scalar=reduce_to_scalar,
            location=_issue_location()))

    # -- Backend interface --------------------------------------------------

    def supports(self, mode: AddressingMode) -> bool:
        return mode in (AddressingMode.INTER, AddressingMode.INTRA)

    def inter(self, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        names = (self._name_of(frame_a), self._name_of(frame_b))
        result, record = self._delegate.inter(op, frame_a, frame_b,
                                              channels)
        self._record(AddressingMode.INTER, op, frame_a.format, channels,
                     names, result)
        return result, record

    def intra(self, op: IntraOp, frame: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        names = (self._name_of(frame),)
        result, record = self._delegate.intra(op, frame, channels)
        self._record(AddressingMode.INTRA, op, frame.format, channels,
                     names, result)
        return result, record

    def inter_reduce(self, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet) -> Tuple[int, CallRecord]:
        names = (self._name_of(frame_a), self._name_of(frame_b))
        value, record = self._delegate.inter_reduce(op, frame_a, frame_b,
                                                    channels)
        self._record(AddressingMode.INTER, op, frame_a.format, channels,
                     names, None, reduce_to_scalar=True)
        return value, record

    # -- program assembly ---------------------------------------------------

    def program(self, name: str,
                results: Sequence[Frame] = ()) -> CallProgram:
        """Freeze the recorded steps into a :class:`CallProgram`."""
        if not self.steps:
            raise ValueError("no AddressLib calls were recorded")
        result_names = tuple(self._name_of(frame) for frame in results)
        return CallProgram(name=name, fmt=self.steps[0].fmt,
                           inputs=self.input_names,
                           steps=tuple(self.steps), results=result_names)


def trace_program(name: str, fn: Callable[..., object],
                  *frames: Frame, **kwargs: object) -> CallProgram:
    """Run ``fn(lib, *frames, **kwargs)`` against a recording library.

    ``fn`` is any composition-shaped callable taking an
    :class:`~repro.addresslib.library.AddressLib` first.  The calls it
    issues (on the software path, so the trace is cheap) become the
    returned :class:`CallProgram`; if ``fn`` returns a frame (or a
    sequence of frames) those become the program's named results.
    """
    from .library import AddressLib

    recorder = ProgramRecorder(frames)
    lib = AddressLib(backend=recorder)
    returned = fn(lib, *frames, **kwargs)
    results: Tuple[Frame, ...]
    if isinstance(returned, Frame):
        results = (returned,)
    elif isinstance(returned, (list, tuple)):
        results = tuple(f for f in returned if isinstance(f, Frame))
    else:
        results = ()
    return recorder.program(name, results)
