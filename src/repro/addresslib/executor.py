"""Software executors for AddressLib calls.

Two executors implement the same call semantics at different granularity:

* :class:`VectorExecutor` -- bulk numpy execution on packed
  :class:`~repro.image.frame.Frame` objects.  This is the fast functional
  path used by applications (GME, segmentation) and by the engine model's
  golden reference.
* :class:`CountedExecutor` -- a faithful per-pixel walk over the software
  baseline's planar 4:2:0 store, performing exactly the memory accesses
  the AddressLib C implementation would: serpentine scan with sliding
  neighbourhood reuse, so each step reads only the window's leading edge.
  Its access counts are the *software* column of Table 2.

:class:`SoftwareCostModel` computes the analytic instruction profile of a
call (validated against :class:`CountedExecutor` by tests); it feeds the
Pentium-M timing model behind Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..image.formats import ImageFormat
from ..image.frame import Frame
from ..image.pixel import Channel
from ..image.planar import SUBSAMPLED_CHANNELS, PlanarFrame420
from .addressing import Neighbourhood, ScanOrder
from .ops import ChannelSet, InterOp, IntraOp
from .profiling import InstructionCost, OpProfile

#: Map from channel-set names to packed-frame channels.
_CHANNEL_BY_NAME = {"Y": Channel.Y, "U": Channel.U, "V": Channel.V}


def channels_of(channel_set: ChannelSet) -> Tuple[Channel, ...]:
    """The packed-frame channels a :class:`ChannelSet` touches."""
    return tuple(_CHANNEL_BY_NAME[name]
                 for name in channel_set.channel_names)


def plane_pixels_420(fmt: ImageFormat, channel: Channel) -> int:
    """Pixels of ``channel``'s plane in the software 4:2:0 layout."""
    if channel in SUBSAMPLED_CHANNELS:
        return (-(-fmt.width // 2)) * (-(-fmt.height // 2))
    return fmt.pixels


# ---------------------------------------------------------------------------
# Vectorised functional executor
# ---------------------------------------------------------------------------

try:
    from numpy.lib.stride_tricks import sliding_window_view
except ImportError:  # pragma: no cover - numpy < 1.20
    sliding_window_view = None


def _clamped_shift(plane: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """The plane shifted so element (y, x) holds plane[y+dy, x+dx], borders
    replicated (the AddressLib clamp policy)."""
    height, width = plane.shape
    pad_y = abs(dy)
    pad_x = abs(dx)
    padded = np.pad(plane, ((pad_y, pad_y), (pad_x, pad_x)), mode="edge")
    return padded[pad_y + dy:pad_y + dy + height,
                  pad_x + dx:pad_x + dx + width]


def neighbourhood_stack_shifted(plane: np.ndarray,
                                neighbourhood: Neighbourhood
                                ) -> np.ndarray:
    """Reference implementation: one padded copy per offset.

    Kept as the golden reference for :func:`neighbourhood_stack` (and
    as the fallback where numpy lacks ``sliding_window_view``): a CON_8
    intra materializes nine padded planes here versus one there.
    """
    return np.stack([_clamped_shift(plane, dx, dy)
                     for dx, dy in neighbourhood.offsets])


def neighbourhood_stack(plane: np.ndarray,
                        neighbourhood: Neighbourhood) -> np.ndarray:
    """Stack of clamped-shifted planes, one per neighbourhood offset.

    Pads the plane *once* over the neighbourhood's bounding box
    (edge-replicated, the AddressLib clamp policy) and takes each
    offset's plane as a ``sliding_window_view`` window of the padded
    buffer -- bit-identical to :func:`neighbourhood_stack_shifted`
    without its per-offset padded copies.
    """
    if sliding_window_view is None:
        return neighbourhood_stack_shifted(plane, neighbourhood)
    offsets = neighbourhood.offsets
    if len(offsets) == 1:  # CON_0: the stack is the plane itself
        dx, dy = offsets[0]
        if dx == 0 and dy == 0:
            return plane[np.newaxis]
    min_dx, min_dy, max_dx, max_dy = neighbourhood.bounding_box()
    pad_top = max(0, -min_dy)
    pad_bottom = max(0, max_dy)
    pad_left = max(0, -min_dx)
    pad_right = max(0, max_dx)
    padded = np.pad(plane, ((pad_top, pad_bottom),
                            (pad_left, pad_right)), mode="edge")
    windows = sliding_window_view(padded, plane.shape)
    return np.stack([windows[pad_top + dy, pad_left + dx]
                     for dx, dy in offsets])


class VectorExecutor:
    """Bulk numpy execution of inter/intra calls on packed frames."""

    @staticmethod
    def inter(op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet = ChannelSet.Y) -> Frame:
        """Elementwise ``op`` over two equal-format frames."""
        if frame_a.format.pixels != frame_b.format.pixels or \
                frame_a.width != frame_b.width:
            raise ValueError(
                f"inter call needs equal formats, got {frame_a.format} "
                f"vs {frame_b.format}")
        result = frame_a.copy()
        for channel in channels_of(channels):
            result.plane(channel)[:] = op.apply_vector(
                frame_a.plane(channel), frame_b.plane(channel))
        return result

    @staticmethod
    def intra(op: IntraOp, frame: Frame,
              channels: ChannelSet = ChannelSet.Y) -> Frame:
        """Neighbourhood ``op`` over one frame, borders clamped."""
        result = frame.copy()
        for channel in channels_of(channels):
            stack = neighbourhood_stack(frame.plane(channel),
                                        op.neighbourhood)
            result.plane(channel)[:] = op.apply_vector(stack)
        return result

    @staticmethod
    def inter_reduce(op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet = ChannelSet.Y) -> int:
        """Sum of the elementwise results (e.g. SAD with ``INTER_ABSDIFF``)."""
        total = 0
        for channel in channels_of(channels):
            values = op.apply_vector(frame_a.plane(channel),
                                     frame_b.plane(channel))
            total += int(values.astype(np.int64).sum())
        return total

    @staticmethod
    def histogram(frame: Frame, channel: Channel = Channel.Y) -> np.ndarray:
        """256-bin histogram of one channel (a stage-3 'histogram' op whose
        output goes to an indexed table rather than to pixels)."""
        return np.bincount(frame.plane(channel).reshape(-1).astype(np.int64),
                           minlength=256)[:256]


# ---------------------------------------------------------------------------
# Counted per-pixel executor (the Table 2 software model)
# ---------------------------------------------------------------------------

def serpentine_positions(width: int, height: int,
                         order: ScanOrder = ScanOrder.HORIZONTAL
                         ) -> Iterator[Tuple[int, int]]:
    """Boustrophedon scan: alternate direction each line (or column).

    The sliding window then moves by exactly one pixel at every step, so
    neighbourhood reuse carries across line boundaries -- the steady-state
    access pattern Table 2's software numbers assume.
    """
    if order is ScanOrder.HORIZONTAL:
        for y in range(height):
            xs = range(width) if y % 2 == 0 else range(width - 1, -1, -1)
            for x in xs:
                yield x, y
    else:
        for x in range(width):
            ys = range(height) if x % 2 == 0 else range(height - 1, -1, -1)
            for y in ys:
                yield x, y


class CountedExecutor:
    """Per-pixel software execution with genuine counted memory accesses.

    Operates on :class:`~repro.image.planar.PlanarFrame420` stores.  Each
    channel plane is processed independently at its own resolution (the way
    planar software iterates), with a sliding window that reloads only the
    offsets not covered by the previous window position.
    """

    def __init__(self, scan: ScanOrder = ScanOrder.HORIZONTAL) -> None:
        self.scan = scan

    # -- inter ---------------------------------------------------------------

    def inter(self, op: InterOp, frame_a: PlanarFrame420,
              frame_b: PlanarFrame420, output: PlanarFrame420,
              channels: ChannelSet = ChannelSet.Y) -> None:
        """Counted elementwise op: per plane, read a, read b, write result."""
        for channel in channels_of(channels):
            width, height = self._plane_dims(frame_a, channel)
            for x, y in serpentine_positions(width, height, self.scan):
                fx, fy = self._full_res(channel, x, y)
                a = frame_a.read(channel, fx, fy)
                b = frame_b.read(channel, fx, fy)
                output.write(channel, fx, fy, op.apply_scalar(a, b))

    # -- intra ---------------------------------------------------------------

    def intra(self, op: IntraOp, frame: PlanarFrame420,
              output: PlanarFrame420,
              channels: ChannelSet = ChannelSet.Y) -> None:
        """Counted neighbourhood op with sliding-window reuse per plane."""
        for channel in channels_of(channels):
            self._intra_plane(op, frame, output, channel)

    def _intra_plane(self, op: IntraOp, frame: PlanarFrame420,
                     output: PlanarFrame420, channel: Channel) -> None:
        width, height = self._plane_dims(frame, channel)
        offsets = op.neighbourhood.offsets
        window: Dict[Tuple[int, int], int] = {}
        previous: Optional[Tuple[int, int]] = None
        for x, y in serpentine_positions(width, height, self.scan):
            if previous is None:
                fresh = offsets
                shifted: Dict[Tuple[int, int], int] = {}
            else:
                step = (x - previous[0], y - previous[1])
                shifted = {}
                for off, value in window.items():
                    moved = (off[0] - step[0], off[1] - step[1])
                    if moved in op.neighbourhood.offsets:
                        shifted[moved] = value
                fresh = tuple(off for off in offsets if off not in shifted)
            for dx, dy in fresh:
                cx = min(max(x + dx, 0), width - 1)
                cy = min(max(y + dy, 0), height - 1)
                fx, fy = self._full_res(channel, cx, cy)
                shifted[(dx, dy)] = frame.read(channel, fx, fy)
            window = shifted
            values = [window[off] for off in offsets]
            fx, fy = self._full_res(channel, x, y)
            output.write(channel, fx, fy, op.apply_scalar(values))
            previous = (x, y)

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _plane_dims(frame: PlanarFrame420,
                    channel: Channel) -> Tuple[int, int]:
        plane = frame.plane(channel)
        return plane.shape[1], plane.shape[0]

    @staticmethod
    def _full_res(channel: Channel, x: int, y: int) -> Tuple[int, int]:
        """Map plane coordinates back to full-resolution coordinates (the
        counted store addresses chroma through full-res coordinates)."""
        if channel in SUBSAMPLED_CHANNELS:
            return x * 2, y * 2
        return x, y


# ---------------------------------------------------------------------------
# Analytic software cost model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SoftwareCostModel:
    """Per-event instruction costs of the software AddressLib inner loops.

    The constants model a scalar C implementation: every fresh element
    read needs index arithmetic and border tests before the load, every
    write one index computation, and every scan step counter maintenance.
    They were chosen so that profiles of representative calls match the
    instruction-mix shape reported by the paper's profiling study
    (addressing classes dominating pixel processing).
    """

    #: Per scan step: advance/compare position counters.
    scan: InstructionCost = InstructionCost(addr=2, branch=1)
    #: Per fresh element read: offset add, clamp tests, index linearise, load.
    read: InstructionCost = InstructionCost(addr=3, branch=2, load=1)
    #: Per element written: index reuse plus the store.
    write: InstructionCost = InstructionCost(addr=1, store=1)
    #: Extra instructions per element access (reads *and* writes) for
    #: framework-heavy software stacks.  The tight AddressLib C library
    #: needs none (the default); the MPEG-7 XM baseline of Table 3
    #: funnels every pixel access through generic multimedia accessors
    #: and virtual dispatch, priced by :func:`xm_cost_model`.
    per_access_overhead: InstructionCost = InstructionCost()

    def inter_profile(self, op: InterOp, fmt: ImageFormat,
                      channels: ChannelSet = ChannelSet.Y,
                      scan: ScanOrder = ScanOrder.HORIZONTAL) -> OpProfile:
        """Analytic profile of one software inter call."""
        del scan  # inter cost is scan-order independent
        profile = OpProfile()
        for channel in channels_of(channels):
            pixels = plane_pixels_420(fmt, channel)
            per_pixel = (self.scan
                         .plus(self.read.scaled(2))
                         .plus(op.cost)
                         .plus(self.write)
                         .plus(self.per_access_overhead.scaled(3)))
            profile.add_cost(per_pixel, pixels)
        profile.add_call()
        return profile

    def intra_profile(self, op: IntraOp, fmt: ImageFormat,
                      channels: ChannelSet = ChannelSet.Y,
                      scan: ScanOrder = ScanOrder.HORIZONTAL) -> OpProfile:
        """Analytic profile of one software intra call (steady state)."""
        fresh = len(op.neighbourhood.fresh_offsets(scan))
        profile = OpProfile()
        for channel in channels_of(channels):
            pixels = plane_pixels_420(fmt, channel)
            per_pixel = (self.scan
                         .plus(self.read.scaled(fresh))
                         .plus(op.cost)
                         .plus(self.write)
                         .plus(self.per_access_overhead.scaled(fresh + 1)))
            profile.add_cost(per_pixel, pixels)
        profile.add_call()
        return profile

    # -- Table 2 access counts (loads + stores only) ------------------------

    def inter_accesses(self, fmt: ImageFormat,
                       channels: ChannelSet = ChannelSet.Y) -> int:
        """Idealised software memory accesses of one inter call."""
        return sum(3 * plane_pixels_420(fmt, c)
                   for c in channels_of(channels))

    def intra_accesses(self, op: IntraOp, fmt: ImageFormat,
                       channels: ChannelSet = ChannelSet.Y,
                       scan: ScanOrder = ScanOrder.HORIZONTAL) -> int:
        """Idealised software memory accesses of one intra call
        (``fresh_reads + 1`` per plane pixel, steady state)."""
        fresh = len(op.neighbourhood.fresh_offsets(scan))
        return sum((fresh + 1) * plane_pixels_420(fmt, c)
                   for c in channels_of(channels))
