"""Software executors for AddressLib calls.

Three executors implement the same call semantics at different
granularity:

* :class:`VectorExecutor` -- bulk numpy execution on packed
  :class:`~repro.image.frame.Frame` objects.  This is the fast functional
  path used by applications (GME, segmentation) and by the engine model's
  golden reference.
* :class:`CountedExecutor` -- a faithful per-pixel walk over the software
  baseline's planar 4:2:0 store, performing exactly the memory accesses
  the AddressLib C implementation would: serpentine scan with sliding
  neighbourhood reuse, so each step reads only the window's leading edge.
  Its access counts are the *software* column of Table 2.
* :class:`StripCountedExecutor` -- the same counted semantics compiled
  to strip-granular numpy: each output strip is one bulk neighbourhood
  operation and the access counters are credited analytically from the
  closed-form serpentine read counts.  Outputs *and* per-channel tallies
  are bit-identical to the per-pixel walk, which stays the golden
  reference (:func:`counted_executor` selects between them).

:class:`SoftwareCostModel` computes the analytic instruction profile of a
call (validated against :class:`CountedExecutor` by tests); it feeds the
Pentium-M timing model behind Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..image.formats import STRIP_LINES, ImageFormat
from ..image.frame import Frame
from ..image.pixel import ALL_CHANNELS, Channel
from ..image.planar import (SUBSAMPLED_CHANNELS, AccessCounter,
                            PlanarFrame420)
from .addressing import Neighbourhood, ScanOrder
from .ops import ChannelSet, InterOp, IntraOp
from .profiling import (InstructionCost, OpProfile, diff_access_snapshots,
                        format_access_mismatches)

#: Map from channel-set names to packed-frame channels.
_CHANNEL_BY_NAME = {"Y": Channel.Y, "U": Channel.U, "V": Channel.V}


def _zero_snapshot() -> Dict[str, int]:
    """An all-zero counter snapshot (same keys as
    :meth:`~repro.image.planar.AccessCounter.snapshot`)."""
    snapshot = {"total": 0, "reads": 0, "writes": 0}
    for channel in ALL_CHANNELS:
        snapshot[f"reads_{channel.name}"] = 0
        snapshot[f"writes_{channel.name}"] = 0
    return snapshot


def _credit_snapshot(snapshot: Dict[str, int], channel: Channel,
                     reads: int, writes: int) -> None:
    """Accumulate one channel's tallies into a snapshot-shaped dict."""
    snapshot[f"reads_{channel.name}"] += reads
    snapshot[f"writes_{channel.name}"] += writes
    snapshot["reads"] += reads
    snapshot["writes"] += writes
    snapshot["total"] += reads + writes


def channels_of(channel_set: ChannelSet) -> Tuple[Channel, ...]:
    """The packed-frame channels a :class:`ChannelSet` touches."""
    return tuple(_CHANNEL_BY_NAME[name]
                 for name in channel_set.channel_names)


def plane_dims_420(fmt: ImageFormat, channel: Channel) -> Tuple[int, int]:
    """``(width, height)`` of ``channel``'s plane in the 4:2:0 layout."""
    if channel in SUBSAMPLED_CHANNELS:
        return -(-fmt.width // 2), -(-fmt.height // 2)
    return fmt.width, fmt.height


def plane_pixels_420(fmt: ImageFormat, channel: Channel) -> int:
    """Pixels of ``channel``'s plane in the software 4:2:0 layout."""
    width, height = plane_dims_420(fmt, channel)
    return width * height


# ---------------------------------------------------------------------------
# Vectorised functional executor
# ---------------------------------------------------------------------------

try:
    from numpy.lib.stride_tricks import sliding_window_view
except ImportError:  # pragma: no cover - numpy < 1.20
    sliding_window_view = None  # type: ignore[assignment]


def _clamped_shift(plane: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """The plane shifted so element (y, x) holds plane[y+dy, x+dx], borders
    replicated (the AddressLib clamp policy)."""
    height, width = plane.shape
    pad_y = abs(dy)
    pad_x = abs(dx)
    padded = np.pad(plane, ((pad_y, pad_y), (pad_x, pad_x)), mode="edge")
    return padded[pad_y + dy:pad_y + dy + height,
                  pad_x + dx:pad_x + dx + width]


def neighbourhood_stack_shifted(plane: np.ndarray,
                                neighbourhood: Neighbourhood
                                ) -> np.ndarray:
    """Reference implementation: one padded copy per offset.

    Kept as the golden reference for :func:`neighbourhood_stack` (and
    as the fallback where numpy lacks ``sliding_window_view``): a CON_8
    intra materializes nine padded planes here versus one there.
    """
    return np.stack([_clamped_shift(plane, dx, dy)
                     for dx, dy in neighbourhood.offsets])


def neighbourhood_stack(plane: np.ndarray,
                        neighbourhood: Neighbourhood) -> np.ndarray:
    """Stack of clamped-shifted planes, one per neighbourhood offset.

    Pads the plane *once* over the neighbourhood's bounding box
    (edge-replicated, the AddressLib clamp policy) and takes each
    offset's plane as a ``sliding_window_view`` window of the padded
    buffer -- bit-identical to :func:`neighbourhood_stack_shifted`
    without its per-offset padded copies.
    """
    if sliding_window_view is None:
        return neighbourhood_stack_shifted(plane, neighbourhood)
    offsets = neighbourhood.offsets
    if len(offsets) == 1:  # CON_0: the stack is the plane itself
        dx, dy = offsets[0]
        if dx == 0 and dy == 0:
            return plane[np.newaxis]
    min_dx, min_dy, max_dx, max_dy = neighbourhood.bounding_box()
    pad_top = max(0, -min_dy)
    pad_bottom = max(0, max_dy)
    pad_left = max(0, -min_dx)
    pad_right = max(0, max_dx)
    padded = np.pad(plane, ((pad_top, pad_bottom),
                            (pad_left, pad_right)), mode="edge")
    windows = sliding_window_view(padded, plane.shape)
    return np.stack([windows[pad_top + dy, pad_left + dx]
                     for dx, dy in offsets])


class VectorExecutor:
    """Bulk numpy execution of inter/intra calls on packed frames."""

    @staticmethod
    def inter(op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet = ChannelSet.Y) -> Frame:
        """Elementwise ``op`` over two equal-format frames."""
        if frame_a.format.pixels != frame_b.format.pixels or \
                frame_a.width != frame_b.width:
            raise ValueError(
                f"inter call needs equal formats, got {frame_a.format} "
                f"vs {frame_b.format}")
        result = frame_a.copy()
        for channel in channels_of(channels):
            result.plane(channel)[:] = op.apply_vector(
                frame_a.plane(channel), frame_b.plane(channel))
        return result

    @staticmethod
    def intra(op: IntraOp, frame: Frame,
              channels: ChannelSet = ChannelSet.Y) -> Frame:
        """Neighbourhood ``op`` over one frame, borders clamped."""
        result = frame.copy()
        for channel in channels_of(channels):
            stack = neighbourhood_stack(frame.plane(channel),
                                        op.neighbourhood)
            result.plane(channel)[:] = op.apply_vector(stack)
        return result

    @staticmethod
    def inter_reduce(op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet = ChannelSet.Y) -> int:
        """Sum of the elementwise results (e.g. SAD with ``INTER_ABSDIFF``)."""
        total = 0
        for channel in channels_of(channels):
            values = op.apply_vector(frame_a.plane(channel),
                                     frame_b.plane(channel))
            total += int(values.astype(np.int64).sum())
        return total

    @staticmethod
    def histogram(frame: Frame, channel: Channel = Channel.Y) -> np.ndarray:
        """256-bin histogram of one channel (a stage-3 'histogram' op whose
        output goes to an indexed table rather than to pixels)."""
        return np.bincount(frame.plane(channel).reshape(-1).astype(np.int64),
                           minlength=256)[:256]


# ---------------------------------------------------------------------------
# Counted per-pixel executor (the Table 2 software model)
# ---------------------------------------------------------------------------

def serpentine_positions(width: int, height: int,
                         order: ScanOrder = ScanOrder.HORIZONTAL
                         ) -> Iterator[Tuple[int, int]]:
    """Boustrophedon scan: alternate direction each line (or column).

    The sliding window then moves by exactly one pixel at every step, so
    neighbourhood reuse carries across line boundaries -- the steady-state
    access pattern Table 2's software numbers assume.
    """
    if order is ScanOrder.HORIZONTAL:
        for y in range(height):
            xs = range(width) if y % 2 == 0 else range(width - 1, -1, -1)
            for x in xs:
                yield x, y
    else:
        for x in range(width):
            ys = range(height) if x % 2 == 0 else range(height - 1, -1, -1)
            for y in ys:
                yield x, y


class CountedExecutor:
    """Per-pixel software execution with genuine counted memory accesses.

    Operates on :class:`~repro.image.planar.PlanarFrame420` stores.  Each
    channel plane is processed independently at its own resolution (the way
    planar software iterates), with a sliding window that reloads only the
    offsets not covered by the previous window position.
    """

    def __init__(self, scan: ScanOrder = ScanOrder.HORIZONTAL) -> None:
        self.scan = scan

    # -- inter ---------------------------------------------------------------

    def inter(self, op: InterOp, frame_a: PlanarFrame420,
              frame_b: PlanarFrame420, output: PlanarFrame420,
              channels: ChannelSet = ChannelSet.Y) -> None:
        """Counted elementwise op: per plane, read a, read b, write result."""
        for channel in channels_of(channels):
            width, height = self._plane_dims(frame_a, channel)
            for x, y in serpentine_positions(width, height, self.scan):
                fx, fy = self._full_res(channel, x, y)
                a = frame_a.read(channel, fx, fy)
                b = frame_b.read(channel, fx, fy)
                output.write(channel, fx, fy, op.apply_scalar(a, b))

    # -- intra ---------------------------------------------------------------

    def intra(self, op: IntraOp, frame: PlanarFrame420,
              output: PlanarFrame420,
              channels: ChannelSet = ChannelSet.Y) -> None:
        """Counted neighbourhood op with sliding-window reuse per plane."""
        for channel in channels_of(channels):
            self._intra_plane(op, frame, output, channel)

    def _intra_plane(self, op: IntraOp, frame: PlanarFrame420,
                     output: PlanarFrame420, channel: Channel) -> None:
        width, height = self._plane_dims(frame, channel)
        offsets = op.neighbourhood.offsets
        scale = 2 if channel in SUBSAMPLED_CHANNELS else 1
        plans = {step: self._step_plan(op.neighbourhood, step)
                 for step in self._unit_steps()}
        fill_plan = tuple((-1, dx, dy) for dx, dy in offsets)
        read = frame.read
        write = output.write
        apply_scalar = op.apply_scalar
        turn_plan = plans[self._turn_step()]
        window: List[int] = []
        for positions, step in self._serpentine_lines(width, height):
            in_line_plan = plans[step]
            first = positions[0]
            for px, py in positions:
                # The window is a list in ``offsets`` order; each step's
                # precomputed plan says which slot carries over (reads
                # happen only for the leading edge, exactly as before).
                plan = (fill_plan if not window
                        else in_line_plan if (px, py) != first
                        else turn_plan)
                previous = window
                window = [
                    previous[src] if src >= 0 else
                    read(channel,
                         scale * min(max(px + dx, 0), width - 1),
                         scale * min(max(py + dy, 0), height - 1))
                    for src, dx, dy in plan]
                write(channel, scale * px, scale * py,
                      apply_scalar(window))

    def _unit_steps(self) -> Tuple[Tuple[int, int], ...]:
        """The step directions a serpentine walk uses under this scan."""
        if self.scan is ScanOrder.HORIZONTAL:
            return ((1, 0), (-1, 0), (0, 1))
        return ((0, 1), (0, -1), (1, 0))

    def _turn_step(self) -> Tuple[int, int]:
        """The line-turn step of this scan order."""
        return (0, 1) if self.scan is ScanOrder.HORIZONTAL else (1, 0)

    @staticmethod
    def _step_plan(neighbourhood: Neighbourhood, step: Tuple[int, int]
                   ) -> Tuple[Tuple[int, int, int], ...]:
        """Per-offset reuse plan for a window move of ``step``.

        One entry per offset, in offset order: ``(src, dx, dy)`` where
        ``src`` is the previous window slot whose value carries over, or
        ``-1`` when the offset is on the leading edge and must be read
        (at clamped position ``centre + (dx, dy)``).
        """
        index_of = {off: i for i, off in enumerate(neighbourhood.offsets)}
        plan = []
        for dx, dy in neighbourhood.offsets:
            src = index_of.get((dx + step[0], dy + step[1]), -1)
            plan.append((src, dx, dy))
        return tuple(plan)

    def _serpentine_lines(self, width: int, height: int
                          ) -> Iterator[Tuple[List[Tuple[int, int]],
                                              Tuple[int, int]]]:
        """Scan lines of the serpentine walk: ``(positions, step)``.

        ``positions`` are the line's plane coordinates in visit order and
        ``step`` the in-line step direction; the first position of every
        line after the first is reached by the turn step instead.
        """
        if self.scan is ScanOrder.HORIZONTAL:
            for y in range(height):
                xs = (range(width) if y % 2 == 0
                      else range(width - 1, -1, -1))
                step = (1, 0) if y % 2 == 0 else (-1, 0)
                yield [(x, y) for x in xs], step
        else:
            for x in range(width):
                ys = (range(height) if x % 2 == 0
                      else range(height - 1, -1, -1))
                step = (0, 1) if x % 2 == 0 else (0, -1)
                yield [(x, y) for y in ys], step

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _plane_dims(frame: PlanarFrame420,
                    channel: Channel) -> Tuple[int, int]:
        plane = frame.plane(channel)
        return plane.shape[1], plane.shape[0]

    @staticmethod
    def _full_res(channel: Channel, x: int, y: int) -> Tuple[int, int]:
        """Map plane coordinates back to full-resolution coordinates (the
        counted store addresses chroma through full-res coordinates)."""
        if channel in SUBSAMPLED_CHANNELS:
            return x * 2, y * 2
        return x, y


# ---------------------------------------------------------------------------
# Strip-vectorized counted executor
# ---------------------------------------------------------------------------

def _strip_stack_rows(plane: np.ndarray, neighbourhood: Neighbourhood,
                      y0: int, y1: int) -> np.ndarray:
    """Neighbourhood stack of output rows ``[y0, y1)`` of ``plane``.

    Row clamping replicates at the *frame* borders (not the strip
    borders) via a clipped row gather; column clamping is one edge pad.
    Element ``(i, y - y0, x)`` equals
    ``plane[clip(y + dy_i), clip(x + dx_i)]`` -- the same value the
    per-pixel walk's clamped read returns.
    """
    height, width = plane.shape
    min_dx, min_dy, max_dx, max_dy = neighbourhood.bounding_box()
    rows = np.clip(np.arange(y0 + min_dy, y1 + max_dy), 0, height - 1)
    pad_left = max(0, -min_dx)
    pad_right = max(0, max_dx)
    slab = np.pad(plane[rows], ((0, 0), (pad_left, pad_right)),
                  mode="edge")
    strip_h = y1 - y0
    return np.stack([slab[dy - min_dy:dy - min_dy + strip_h,
                          pad_left + dx:pad_left + dx + width]
                     for dx, dy in neighbourhood.offsets])


def _strip_stack_cols(plane: np.ndarray, neighbourhood: Neighbourhood,
                      x0: int, x1: int) -> np.ndarray:
    """Neighbourhood stack of output columns ``[x0, x1)`` of ``plane``.

    The vertical-scan twin of :func:`_strip_stack_rows`: strips run
    parallel to the scan, so a vertical scan slices column bands.
    """
    height, width = plane.shape
    min_dx, min_dy, max_dx, max_dy = neighbourhood.bounding_box()
    cols = np.clip(np.arange(x0 + min_dx, x1 + max_dx), 0, width - 1)
    pad_top = max(0, -min_dy)
    pad_bottom = max(0, max_dy)
    slab = np.pad(plane[:, cols], ((pad_top, pad_bottom), (0, 0)),
                  mode="edge")
    strip_w = x1 - x0
    return np.stack([slab[pad_top + dy:pad_top + dy + height,
                          dx - min_dx:dx - min_dx + strip_w]
                     for dx, dy in neighbourhood.offsets])


class StripCountedExecutor:
    """Counted execution compiled to numpy strips.

    Same ``inter``/``intra`` surface and same
    :class:`~repro.image.planar.PlanarFrame420` stores as
    :class:`CountedExecutor`, but each output plane is computed strip by
    strip with one bulk ``op.apply_vector`` per strip (clamp-padded
    shifted views per neighbourhood offset), the way the coprocessor
    streams 16-line strips through its input matrix.  Access counters
    are credited analytically per strip from the closed-form serpentine
    read counts (window fill at the first position, turn edges at line
    turns, leading edges in steady state) -- so outputs *and*
    per-channel read/write tallies are bit-identical to the per-pixel
    walk, which remains the golden reference.

    ``validate=True`` shadow-runs the scalar walk on every call and
    raises :class:`AssertionError` on any output or tally divergence
    (the CI cross-check; costs the full per-pixel price).
    """

    def __init__(self, scan: ScanOrder = ScanOrder.HORIZONTAL,
                 strip_lines: int = STRIP_LINES,
                 validate: bool = False) -> None:
        if strip_lines < 1:
            raise ValueError(f"strip_lines must be positive, "
                             f"got {strip_lines}")
        self.scan = scan
        self.strip_lines = strip_lines
        self.validate = validate

    # -- inter ---------------------------------------------------------------

    def inter(self, op: InterOp, frame_a: PlanarFrame420,
              frame_b: PlanarFrame420, output: PlanarFrame420,
              channels: ChannelSet = ChannelSet.Y) -> None:
        """Counted elementwise op: one bulk operation per plane.

        The walk reads every element of both planes exactly once and
        writes every output element once; there is nothing
        position-dependent to correct, so each plane credits in one
        step.
        """
        before = (_merged_snapshot(frame_a.counter, frame_b.counter,
                                   output.counter)
                  if self.validate else None)
        for channel in channels_of(channels):
            width, height = plane_dims_420(frame_a.format, channel)
            pixels = width * height
            plane_a = frame_a.plane_view(channel, reads=pixels)
            plane_b = frame_b.plane_view(channel, reads=pixels)
            out = output.plane_view(channel, writes=pixels)
            out[:] = op.apply_vector(plane_a, plane_b)
        if before is not None:
            after = _merged_snapshot(frame_a.counter, frame_b.counter,
                                     output.counter)
            self._validate_inter(op, frame_a, frame_b, output, channels,
                                 _snapshot_delta(before, after))

    # -- intra ---------------------------------------------------------------

    def intra(self, op: IntraOp, frame: PlanarFrame420,
              output: PlanarFrame420,
              channels: ChannelSet = ChannelSet.Y) -> None:
        """Counted neighbourhood op, one bulk operation per strip."""
        before = (_merged_snapshot(frame.counter, output.counter)
                  if self.validate else None)
        for channel in channels_of(channels):
            self._intra_plane(op, frame, output, channel)
        if before is not None:
            after = _merged_snapshot(frame.counter, output.counter)
            self._validate_intra(op, frame, output, channels,
                                 _snapshot_delta(before, after))

    def _intra_plane(self, op: IntraOp, frame: PlanarFrame420,
                     output: PlanarFrame420, channel: Channel) -> None:
        width, height = plane_dims_420(frame.format, channel)
        neighbourhood = op.neighbourhood
        # Strips run parallel to the scan: row bands for a horizontal
        # scan, column bands for a vertical one (scan lines = strip
        # lines either way, so per-strip crediting covers whole lines).
        lines = height if self.scan is ScanOrder.HORIZONTAL else width
        for l0 in range(0, lines, self.strip_lines):
            l1 = min(l0 + self.strip_lines, lines)
            reads = neighbourhood.serpentine_reads_in_lines(
                l0, l1 - l0, width, height, self.scan)
            line_len = width if self.scan is ScanOrder.HORIZONTAL \
                else height
            src = frame.plane_view(channel, reads=reads)
            out = output.plane_view(channel,
                                    writes=(l1 - l0) * line_len)
            if self.scan is ScanOrder.HORIZONTAL:
                stack = _strip_stack_rows(src, neighbourhood, l0, l1)
                out[l0:l1, :] = op.apply_vector(stack)
            else:
                stack = _strip_stack_cols(src, neighbourhood, l0, l1)
                out[:, l0:l1] = op.apply_vector(stack)

    # -- golden-reference validation -----------------------------------------

    def _validate_inter(self, op: InterOp, frame_a: PlanarFrame420,
                        frame_b: PlanarFrame420, output: PlanarFrame420,
                        channels: ChannelSet,
                        measured_delta: Dict[str, int]) -> None:
        shadow_a = _uncounted_copy(frame_a)
        shadow_b = _uncounted_copy(frame_b, shadow_a.counter)
        shadow_out = PlanarFrame420(output.format, shadow_a.counter)
        CountedExecutor(self.scan).inter(op, shadow_a, shadow_b,
                                         shadow_out, channels)
        self._check_against_shadow(shadow_out, output, shadow_a.counter,
                                   measured_delta, channels, op.name)

    def _validate_intra(self, op: IntraOp, frame: PlanarFrame420,
                        output: PlanarFrame420, channels: ChannelSet,
                        measured_delta: Dict[str, int]) -> None:
        shadow = _uncounted_copy(frame)
        shadow_out = PlanarFrame420(output.format, shadow.counter)
        CountedExecutor(self.scan).intra(op, shadow, shadow_out, channels)
        self._check_against_shadow(shadow_out, output, shadow.counter,
                                   measured_delta, channels, op.name)

    @staticmethod
    def _check_against_shadow(shadow_out: PlanarFrame420,
                              output: PlanarFrame420,
                              shadow_counter: AccessCounter,
                              measured_delta: Dict[str, int],
                              channels: ChannelSet, op_name: str) -> None:
        for channel in channels_of(channels):
            if not np.array_equal(shadow_out.plane(channel),
                                  output.plane(channel)):
                raise AssertionError(
                    f"{op_name}: strip output diverges from the scalar "
                    f"walk on channel {channel.name}")
        # The shadow ran on fresh counters, so its snapshot is this
        # call's delta; the caller measured its own counter delta across
        # the call (the counters may carry earlier history).
        mismatches = diff_access_snapshots(shadow_counter.snapshot(),
                                           measured_delta)
        if mismatches:
            raise AssertionError(
                f"{op_name}: strip access counts diverge from the "
                f"scalar walk: {format_access_mismatches(mismatches)}")


def _uncounted_copy(frame: PlanarFrame420,
                    counter: Optional[AccessCounter] = None
                    ) -> PlanarFrame420:
    """A plane-for-plane copy on a fresh (or given) counter."""
    copy = PlanarFrame420(frame.format, counter)
    for channel in ALL_CHANNELS:
        copy.plane(channel)[:] = frame.plane(channel)
    return copy


def _merged_snapshot(*counters: AccessCounter) -> Dict[str, int]:
    """Summed snapshot over distinct counters (stores may share one)."""
    seen: List[AccessCounter] = []
    for counter in counters:
        if not any(counter is known for known in seen):
            seen.append(counter)
    merged: Dict[str, int] = {}
    for counter in seen:
        for key, value in counter.snapshot().items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _snapshot_delta(before: Dict[str, int],
                    after: Dict[str, int]) -> Dict[str, int]:
    """Per-key difference ``after - before`` of two counter snapshots."""
    return {key: after.get(key, 0) - before.get(key, 0)
            for key in set(before) | set(after)}


#: The counted-executor kinds :func:`counted_executor` accepts.
COUNTED_EXECUTOR_KINDS = ("scalar", "strip")

CountedExecutorLike = Union[CountedExecutor, StripCountedExecutor]


def counted_executor(counted: str = "strip",
                     scan: ScanOrder = ScanOrder.HORIZONTAL,
                     strip_lines: int = STRIP_LINES,
                     validate: bool = False) -> CountedExecutorLike:
    """Build a counted executor by kind: ``"scalar"`` or ``"strip"``.

    The strip path is the default everywhere speed matters (cost-model
    validation, Table 2 emission, benchmarks); the scalar walk is the
    golden reference CI checks the strip path against.  ``strip_lines``
    and ``validate`` only apply to the strip kind.
    """
    if counted == "scalar":
        return CountedExecutor(scan)
    if counted == "strip":
        return StripCountedExecutor(scan, strip_lines=strip_lines,
                                    validate=validate)
    raise ValueError(f"unknown counted executor kind {counted!r}; "
                     f"expected one of {COUNTED_EXECUTOR_KINDS}")


# ---------------------------------------------------------------------------
# Analytic software cost model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SoftwareCostModel:
    """Per-event instruction costs of the software AddressLib inner loops.

    The constants model a scalar C implementation: every fresh element
    read needs index arithmetic and border tests before the load, every
    write one index computation, and every scan step counter maintenance.
    They were chosen so that profiles of representative calls match the
    instruction-mix shape reported by the paper's profiling study
    (addressing classes dominating pixel processing).
    """

    #: Per scan step: advance/compare position counters.
    scan: InstructionCost = InstructionCost(addr=2, branch=1)
    #: Per fresh element read: offset add, clamp tests, index linearise, load.
    read: InstructionCost = InstructionCost(addr=3, branch=2, load=1)
    #: Per element written: index reuse plus the store.
    write: InstructionCost = InstructionCost(addr=1, store=1)
    #: Extra instructions per element access (reads *and* writes) for
    #: framework-heavy software stacks.  The tight AddressLib C library
    #: needs none (the default); the MPEG-7 XM baseline of Table 3
    #: funnels every pixel access through generic multimedia accessors
    #: and virtual dispatch, priced by :func:`xm_cost_model`.
    per_access_overhead: InstructionCost = InstructionCost()

    def inter_profile(self, op: InterOp, fmt: ImageFormat,
                      channels: ChannelSet = ChannelSet.Y,
                      scan: ScanOrder = ScanOrder.HORIZONTAL) -> OpProfile:
        """Analytic profile of one software inter call."""
        del scan  # inter cost is scan-order independent
        profile = OpProfile()
        for channel in channels_of(channels):
            pixels = plane_pixels_420(fmt, channel)
            per_pixel = (self.scan
                         .plus(self.read.scaled(2))
                         .plus(op.cost)
                         .plus(self.write)
                         .plus(self.per_access_overhead.scaled(3)))
            profile.add_cost(per_pixel, pixels)
        profile.add_call()
        return profile

    def intra_profile(self, op: IntraOp, fmt: ImageFormat,
                      channels: ChannelSet = ChannelSet.Y,
                      scan: ScanOrder = ScanOrder.HORIZONTAL) -> OpProfile:
        """Analytic profile of one software intra call (steady state)."""
        fresh = len(op.neighbourhood.fresh_offsets(scan))
        profile = OpProfile()
        for channel in channels_of(channels):
            pixels = plane_pixels_420(fmt, channel)
            per_pixel = (self.scan
                         .plus(self.read.scaled(fresh))
                         .plus(op.cost)
                         .plus(self.write)
                         .plus(self.per_access_overhead.scaled(fresh + 1)))
            profile.add_cost(per_pixel, pixels)
        profile.add_call()
        return profile

    # -- Table 2 access counts (loads + stores only) ------------------------

    def inter_accesses(self, fmt: ImageFormat,
                       channels: ChannelSet = ChannelSet.Y) -> int:
        """Idealised software memory accesses of one inter call."""
        return sum(3 * plane_pixels_420(fmt, c)
                   for c in channels_of(channels))

    def intra_accesses(self, op: IntraOp, fmt: ImageFormat,
                       channels: ChannelSet = ChannelSet.Y,
                       scan: ScanOrder = ScanOrder.HORIZONTAL) -> int:
        """Idealised software memory accesses of one intra call
        (``fresh_reads + 1`` per plane pixel, steady state)."""
        fresh = len(op.neighbourhood.fresh_offsets(scan))
        return sum((fresh + 1) * plane_pixels_420(fmt, c)
                   for c in channels_of(channels))

    # -- exact counted-walk predictions -------------------------------------

    def inter_counts_exact(self, fmt: ImageFormat,
                           channels: ChannelSet = ChannelSet.Y
                           ) -> Dict[str, int]:
        """Exact per-channel tallies of one counted inter call.

        Snapshot-shaped (the format of
        :meth:`~repro.image.planar.AccessCounter.snapshot`), assuming
        the two inputs and the output share one counter -- the way the
        counted experiments wire their stores.  Both counted executors
        must match this exactly; :func:`diff_access_snapshots` is the
        comparison hook.
        """
        snapshot = _zero_snapshot()
        for channel in channels_of(channels):
            pixels = plane_pixels_420(fmt, channel)
            _credit_snapshot(snapshot, channel,
                             reads=2 * pixels, writes=pixels)
        return snapshot

    def intra_counts_exact(self, op: IntraOp, fmt: ImageFormat,
                           channels: ChannelSet = ChannelSet.Y,
                           scan: ScanOrder = ScanOrder.HORIZONTAL
                           ) -> Dict[str, int]:
        """Exact per-channel tallies of one counted intra call.

        Unlike :meth:`intra_accesses` (steady state only) this includes
        the first-position window fill and the line-turn edge loads, so
        it equals the measured counter snapshot *exactly* for any plane
        geometry -- the closed form the strip executor credits from.
        """
        snapshot = _zero_snapshot()
        for channel in channels_of(channels):
            width, height = plane_dims_420(fmt, channel)
            _credit_snapshot(
                snapshot, channel,
                reads=op.neighbourhood.serpentine_reads(width, height,
                                                        scan),
                writes=width * height)
        return snapshot
