"""Named FIR kernel presets for the intra scheme.

The paper calls intra addressing "typically used for FIR filter like
operations"; this module is the kernel book: classic 3x3/5x5 filters
pre-wrapped as :class:`~repro.addresslib.ops.IntraOp` factories, plus a
registry for lookup by name.

All kernels are integer-weighted with a power-of-two normalisation
shift, exactly what the engine's stage-3 multiply-accumulate datapath
executes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Sequence, Tuple

from .addressing import CON_8, CON_24, Neighbourhood
from .ops import IntraOp, fir_op


def _grid_weights(neighbourhood: Neighbourhood,
                  rows: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """Map a row-major weight grid onto the neighbourhood's offsets."""
    height = len(rows)
    width = len(rows[0])
    half_h, half_w = height // 2, width // 2
    table = {(dx - half_w, dy - half_h): rows[dy][dx]
             for dy in range(height) for dx in range(width)}
    return tuple(table.get(off, 0) for off in neighbourhood.offsets)


def gaussian3_op() -> IntraOp:
    """3x3 binomial smoothing (1-2-1 outer product, /16)."""
    weights = _grid_weights(CON_8, [[1, 2, 1],
                                    [2, 4, 2],
                                    [1, 2, 1]])
    return fir_op("kernel_gaussian3", CON_8, weights, shift=4)


def gaussian5_op() -> IntraOp:
    """5x5 binomial smoothing (1-4-6-4-1 outer product, /256)."""
    row = [1, 4, 6, 4, 1]
    grid = [[a * b for a in row] for b in row]
    weights = _grid_weights(CON_24, grid)
    return fir_op("kernel_gaussian5", CON_24, weights, shift=8)


def sharpen3_op() -> IntraOp:
    """3x3 sharpen: centre-boosted Laplacian complement (weights sum 8,
    /8 -- flat regions pass through unchanged)."""
    weights = _grid_weights(CON_8, [[0, -2, 0],
                                    [-2, 16, -2],
                                    [0, -2, 0]])
    return fir_op("kernel_sharpen3", CON_8, weights, shift=3)


def emboss3_op() -> IntraOp:
    """3x3 emboss: diagonal derivative biased into mid-gray.

    Implemented as a plain FIR with an extra centre weight of 8 (the
    +128 bias folded in as ``(acc + 8*v_c) >> 3`` cannot express a
    constant, so the op biases via the centre term on typical content).
    """
    weights = _grid_weights(CON_8, [[-2, -1, 0],
                                    [-1, 8, 1],
                                    [0, 1, 2]])
    return fir_op("kernel_emboss3", CON_8, weights, shift=3)


def motion_blur5_op() -> IntraOp:
    """Horizontal 5-tap motion blur (row average within CON_24, /4 via
    weights 1,1,0,1,1 plus centre 0 -> use 4 taps)."""
    grid = [[0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0],
            [1, 1, 0, 1, 1],
            [0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0]]
    weights = _grid_weights(CON_24, grid)
    return fir_op("kernel_motion_blur5", CON_24, weights, shift=2)


#: The kernel book: name -> factory.
KERNEL_FACTORIES: Dict[str, Callable[[], IntraOp]] = {
    "gaussian3": gaussian3_op,
    "gaussian5": gaussian5_op,
    "sharpen3": sharpen3_op,
    "emboss3": emboss3_op,
    "motion_blur5": motion_blur5_op,
}


@lru_cache(maxsize=None)
def _kernel_instance(name: str) -> IntraOp:
    return KERNEL_FACTORIES[name]()


def kernel_by_name(name: str) -> IntraOp:
    """Look up a named kernel preset.

    Memoized: repeated lookups return the *same* :class:`IntraOp`
    instance instead of rebuilding the weight tables, so the registry
    is also an identity anchor -- the residency cache and the call
    scheduler's worker dispatch both compare ops by identity.
    """
    try:
        return _kernel_instance(name.strip().lower())
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known: "
            f"{', '.join(sorted(KERNEL_FACTORIES))}") from None
