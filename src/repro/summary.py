"""One-shot reproduction summary: ``python -m repro.summary``.

Regenerates the headline numbers of every experiment (Tables 1-3, the
factor-30 profile, the section 4.1 claims) against the paper's values,
without going through pytest, plus an engine/cache/service health
section (residency-cache counters, modeled overlap efficiency, serving
counters).  Table 3 runs the sequences at a small scale by default;
pass ``--table3-scale 1.0`` for full length.
"""

from __future__ import annotations

import argparse
from typing import List

from .core import v1_utilization_report
from .gme import PAPER_TABLE3, TABLE3_SEQUENCES, evaluate_sequence_dual
from .image import CIF, QCIF, blob_frame
from .perf import (EngineTimingModel, PAPER_TABLE2, format_seconds,
                   format_table, table2_rows)
from .segmentation import profile_segmentation_workload


def table1_section() -> str:
    report = v1_utilization_report()
    return (format_table(
        ["resource", "used", "available", "util"],
        [(name, used, avail, f"{int(pct)}%")
         for name, used, avail, pct in report.rows()],
        title="Table 1 -- device utilisation (matches the paper exactly)")
        + f"\nminimum period {report.timing.min_period_ns:.3f} ns "
          f"({report.timing.max_frequency_mhz:.3f} MHz)")


def table2_section() -> str:
    rows = []
    for row, paper in zip(table2_rows(CIF), PAPER_TABLE2):
        rows.append((row.label, row.channels_in, row.sw_accesses,
                     row.hw_accesses, f"{row.paper_saving_percent:.0f}%",
                     "exact" if (row.sw_accesses, row.hw_accesses)
                     == (paper[3], paper[4]) else "DIFFERS"))
    return format_table(
        ["addressing", "channels", "software", "hardware", "saving",
         "vs paper"],
        rows, title="Table 2 -- memory accesses per CIF call")


def table3_section(scale: float) -> str:
    lines: List[tuple] = []
    speedups = []
    for spec, paper in zip(TABLE3_SEQUENCES, PAPER_TABLE3):
        row = evaluate_sequence_dual(spec, scale=scale).extrapolated()
        speedups.append(row.speedup)
        lines.append((row.name,
                      format_seconds(row.pm_seconds),
                      format_seconds(paper[1]),
                      format_seconds(row.fpga_seconds),
                      format_seconds(paper[2]),
                      f"{row.intra_calls}/{paper[3]}",
                      f"{row.inter_calls}/{paper[4]}",
                      f"{row.speedup:.2f}"))
    mean = sum(speedups) / len(speedups)
    return (format_table(
        ["video", "PM", "paper", "FPGA", "paper", "intra m/p",
         "inter m/p", "speedup"],
        lines, title=f"Table 3 -- GME wall times (scale {scale}, "
                     f"extrapolated)")
        + f"\naverage speedup {mean:.2f} "
          f"(paper: 'an average factor of 5')")


def claims_section() -> str:
    frame = blob_frame(QCIF, [(40, 40), (120, 70), (60, 110)], radius=20)
    workload = profile_segmentation_workload(frame)
    timing = EngineTimingModel()
    from .addresslib import INTER_ABSDIFF
    from .core import inter_config
    special = inter_config(INTER_ABSDIFF, CIF, reduce_to_scalar=True,
                           requires_full_frames=True)
    return format_table(
        ["claim", "paper", "measured"],
        [("max acceleration (profiling)", "~30",
          f"{workload.amdahl_bound:.1f}"),
         ("offloadable fraction", "~0.967",
          f"{workload.offloadable_fraction:.4f}"),
         ("per-bank ZBT rate", "264 MB/s",
          f"{timing.zbt_bank_bytes_per_second() / 1e6:.0f} MB/s"),
         ("special-inter non-PCI share", "12.5%",
          f"{100 * timing.non_pci_fraction(special):.2f}%")],
        title="Section 1 / 4.1 claims")


def _ms(seconds) -> str:
    """Milliseconds, or ``--`` for an undefined (empty-book) figure."""
    return "--" if seconds is None else f"{seconds * 1e3:.2f} ms"


def health_section() -> str:
    """Engine + cache + service health in one table.

    One chained workload exercises the :class:`FrameResidencyCache`
    (hits, on-board result reuse, misses, evictions); a burst of
    service requests through :class:`~repro.api.EngineService`
    exercises admission, micro-batching and the latency books.  All
    figures are modeled (deterministic), like the rest of the summary.
    """
    from .addresslib import (BatchCall, AddressLib, INTER_ABSDIFF,
                             INTRA_BOX3, INTRA_GRAD)
    from .api import AdmissionPolicy, EngineService, ServicePolicy
    from .host import EngineBackend

    frame = blob_frame(QCIF, [(30, 30), (100, 80)], radius=16)
    backend = EngineBackend(chain_frames=True, residency_max_age=4)
    lib = AddressLib(backend)
    edges = lib.intra(INTRA_GRAD, frame)          # both inputs ship
    smooth = lib.intra(INTRA_BOX3, edges)         # result reused on-board
    lib.inter(INTER_ABSDIFF, edges, smooth)       # layout change: reships
    backend.residency.release(smooth)              # host reclaimed: evict
    cache = backend.residency

    service = EngineService(
        lib=lib, virtual_engines=4,
        policy=ServicePolicy(
            max_batch=4,
            admission=AdmissionPolicy(deadline_budget_seconds=0.02)))
    for _ in range(12):
        service.submit(BatchCall.intra(INTRA_GRAD, frame))
    report = service.drain()

    return format_table(
        ["signal", "value"],
        [("residency hits / result reuses", f"{cache.hits} / "
                                            f"{cache.result_reuses}"),
         ("residency misses / evictions", f"{cache.misses} / "
                                          f"{cache.evictions}"),
         ("service accepted / rejected",
          f"{report.accepted} / {report.rejected}"),
         ("service completed / timed out",
          f"{report.completed} / {report.timed_out}"),
         ("queue high-water / depth bound",
          f"{report.queue_high_water} / {service.queue.max_depth}"),
         ("dispatch waves / coalesced requests",
          f"{report.waves} / {report.coalesced_requests}"),
         ("overlap efficiency (4 modeled engines)",
          f"{100 * report.overlap_efficiency:.1f}%"),
         ("modeled latency p50 / p95",
          f"{_ms(report.latency.p50)} / {_ms(report.latency.p95)}"),
         ("driver calls submitted / shed",
          f"{backend.driver.calls_submitted} / "
          f"{backend.driver.calls_shed}")],
        title="Engine / cache / service health (modeled)")


def sanitizer_section() -> str:
    """Transport-sanitizer findings: seeded bugs vs a clean run.

    Each row seeds one real transport/residency/pool bug into the live
    shared-memory primitives and reports whether the runtime sanitizer
    caught it; the final row runs a small sanitized scheduler batch
    that must come back clean.  Mirrors
    ``repro-check --sanitize-selftest``.
    """
    from .addresslib import BatchCall, INTRA_GRAD
    from .analysis.sanitize import SANITIZE_SELFTESTS
    from .host.scheduler import CallScheduler
    from .image import noise_frame

    rows: List[tuple] = []
    for description, (scenario, rule_id) in SANITIZE_SELFTESTS.items():
        findings = scenario()
        if findings is None:
            rows.append((rule_id, description, "skipped (no SHM)"))
            continue
        caught = any(d.rule_id == rule_id for d in findings)
        rows.append((rule_id, description,
                     "caught" if caught else "MISSED"))

    calls = [BatchCall.intra(INTRA_GRAD, noise_frame(QCIF, seed=i))
             for i in range(6)]
    scheduler = CallScheduler(max_workers=2,
                              sanitize=("transport", "residency"))
    try:
        scheduler.compute_batch(calls)
    finally:
        scheduler.close()
    clean = not scheduler.sanitizer_findings
    rows.append(("--", "sanitized clean batch (6 calls, 2 workers)",
                 "clean" if clean else
                 f"{len(scheduler.sanitizer_findings)} finding(s)"))
    return format_table(
        ["rule", "seeded bug", "sanitizer"], rows,
        title="Transport sanitizer (seeded bugs + clean run)")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation numbers.")
    parser.add_argument("--table3-scale", type=float, default=0.04,
                        help="fraction of each Table 3 sequence to run "
                             "(default 0.04; 1.0 = full length)")
    parser.add_argument("--skip-table3", action="store_true",
                        help="skip the (slower) GME evaluation")
    args = parser.parse_args(argv)

    print("Reproduction summary -- Stechele et al., DATE 2005")
    print("=" * 60)
    print()
    print(table1_section())
    print()
    print(table2_section())
    print()
    if not args.skip_table3:
        print(table3_section(args.table3_scale))
        print()
    print(claims_section())
    print()
    print(health_section())
    print()
    print(sanitizer_section())


if __name__ == "__main__":
    main()
