"""Colour conversion: BT.601 RGB <-> YUV (the MPEG-1 colour space).

The paper's pipeline lives entirely in YUV (MPEG-1 sources, YUV pixel
channels), but a usable library needs a way in and out of RGB for
display and for importing ordinary images.  Conversions follow ITU-R
BT.601 with the full-range 8-bit mapping used by JPEG/MPEG software
(Y in [0, 255], U/V centred on 128).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .formats import ImageFormat
from .frame import Frame

#: BT.601 luma weights.
KR, KG, KB = 0.299, 0.587, 0.114


def rgb_to_yuv(rgb: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                         np.ndarray]:
    """Convert an ``(H, W, 3)`` uint8 RGB image to full-range Y, U, V
    uint8 planes."""
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"need an (H, W, 3) array, got {rgb.shape}")
    r = rgb[..., 0].astype(np.float64)
    g = rgb[..., 1].astype(np.float64)
    b = rgb[..., 2].astype(np.float64)
    y = KR * r + KG * g + KB * b
    u = (b - y) / (2.0 * (1.0 - KB)) + 128.0
    v = (r - y) / (2.0 * (1.0 - KR)) + 128.0
    clip = lambda plane: np.clip(np.round(plane), 0, 255).astype(np.uint8)
    return clip(y), clip(u), clip(v)


def yuv_to_rgb(y: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Convert full-range Y, U, V planes to an ``(H, W, 3)`` uint8 RGB
    image (planes must share one shape)."""
    if not (y.shape == u.shape == v.shape):
        raise ValueError(
            f"plane shapes differ: {y.shape}, {u.shape}, {v.shape}")
    yf = y.astype(np.float64)
    uf = u.astype(np.float64) - 128.0
    vf = v.astype(np.float64) - 128.0
    r = yf + 2.0 * (1.0 - KR) * vf
    b = yf + 2.0 * (1.0 - KB) * uf
    g = (yf - KR * r - KB * b) / KG
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def frame_from_rgb(fmt: ImageFormat, rgb: np.ndarray) -> Frame:
    """Build a packed frame from an RGB image (Alfa/Aux zeroed)."""
    if rgb.shape[:2] != (fmt.height, fmt.width):
        raise ValueError(
            f"image {rgb.shape[:2]} does not match {fmt.name} "
            f"({fmt.height}, {fmt.width})")
    y, u, v = rgb_to_yuv(rgb)
    frame = Frame(fmt)
    frame.y[:] = y
    frame.u[:] = u
    frame.v[:] = v
    return frame


def frame_to_rgb(frame: Frame) -> np.ndarray:
    """Render a packed frame as an ``(H, W, 3)`` uint8 RGB image."""
    return yuv_to_rgb(frame.y, frame.u, frame.v)
