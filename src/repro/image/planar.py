"""Planar 4:2:0 frame store: the software baseline's view of an image.

The AddressLib *software* solution that Table 2 compares against stores
frames the way the MPEG-7 XM code does: separate planes per channel, with
U and V subsampled 4:2:0 (quarter resolution).  Every channel element the
software touches is one memory access -- channels are loaded sequentially,
whereas the coprocessor fetches whole neighbourhoods (all channels, all
banks) in parallel.  That asymmetry is exactly what Table 2 measures.

This module provides:

* :class:`AccessCounter` -- read/write tallies per channel,
* :class:`PlanarFrame420` -- the counted planar frame store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .formats import ImageFormat
from .frame import Frame
from .pixel import ALL_CHANNELS, Channel

#: Channels stored at quarter resolution in the 4:2:0 layout.
SUBSAMPLED_CHANNELS = (Channel.U, Channel.V)


@dataclass
class AccessCounter:
    """Tallies of element reads and writes, split by channel."""

    reads: Dict[Channel, int] = field(
        default_factory=lambda: {c: 0 for c in ALL_CHANNELS})
    writes: Dict[Channel, int] = field(
        default_factory=lambda: {c: 0 for c in ALL_CHANNELS})

    def count_read(self, channel: Channel, n: int = 1) -> None:
        self.reads[channel] += n

    def count_write(self, channel: Channel, n: int = 1) -> None:
        self.writes[channel] += n

    # -- bulk (analytic) crediting ------------------------------------------

    def credit_reads(self, channel: Channel, n: int) -> None:
        """Bulk-credit ``n`` element reads in one step.

        The strip-vectorized counted executor computes whole strips with
        numpy and credits the reads the per-pixel walk *would* have made
        analytically (closed-form serpentine counts); crediting is the
        only difference from :meth:`count_read` -- the tallies land in
        the same per-channel buckets.
        """
        if n < 0:
            raise ValueError(f"cannot credit {n} reads")
        self.reads[channel] += n

    def credit_writes(self, channel: Channel, n: int) -> None:
        """Bulk-credit ``n`` element writes in one step."""
        if n < 0:
            raise ValueError(f"cannot credit {n} writes")
        self.writes[channel] += n

    @property
    def total_reads(self) -> int:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes.values())

    @property
    def total(self) -> int:
        """Total memory access operations (reads + writes)."""
        return self.total_reads + self.total_writes

    def reset(self) -> None:
        for channel in ALL_CHANNELS:
            self.reads[channel] = 0
            self.writes[channel] = 0

    def snapshot(self) -> Dict[str, int]:
        """A flat summary suitable for report tables."""
        result = {"total": self.total,
                  "reads": self.total_reads,
                  "writes": self.total_writes}
        for channel in ALL_CHANNELS:
            result[f"reads_{channel.name}"] = self.reads[channel]
            result[f"writes_{channel.name}"] = self.writes[channel]
        return result


class PlanarFrame420:
    """A frame stored as separate planes with 4:2:0 chroma subsampling.

    Y, Alfa and Aux are full resolution; U and V are stored at half
    resolution in both dimensions and addressed through ``(x // 2, y // 2)``.
    All element accesses route through :meth:`read` / :meth:`write` so a
    shared :class:`AccessCounter` can observe the software access pattern.
    """

    def __init__(self, fmt: ImageFormat,
                 counter: Optional[AccessCounter] = None) -> None:
        self.format = fmt
        self.counter = counter if counter is not None else AccessCounter()
        half_w = -(-fmt.width // 2)
        half_h = -(-fmt.height // 2)
        self._planes: Dict[Channel, np.ndarray] = {
            Channel.Y: np.zeros((fmt.height, fmt.width), dtype=np.uint8),
            Channel.U: np.zeros((half_h, half_w), dtype=np.uint8),
            Channel.V: np.zeros((half_h, half_w), dtype=np.uint8),
            Channel.ALFA: np.zeros((fmt.height, fmt.width), dtype=np.uint16),
            Channel.AUX: np.zeros((fmt.height, fmt.width), dtype=np.uint16),
        }

    @property
    def width(self) -> int:
        return self.format.width

    @property
    def height(self) -> int:
        return self.format.height

    def plane(self, channel: Channel) -> np.ndarray:
        """Raw (uncounted) plane access; use for bulk setup only."""
        return self._planes[channel]

    def _coords(self, channel: Channel, x: int, y: int) -> Tuple[int, int]:
        if not self.format.contains(x, y):
            raise IndexError(
                f"pixel ({x}, {y}) outside {self.width}x{self.height}")
        if channel in SUBSAMPLED_CHANNELS:
            return y // 2, x // 2
        return y, x

    # -- counted element access ---------------------------------------------

    def read(self, channel: Channel, x: int, y: int) -> int:
        """Counted read of one channel element at full-resolution ``(x, y)``."""
        row, col = self._coords(channel, x, y)
        self.counter.count_read(channel)
        return int(self._planes[channel][row, col])

    def write(self, channel: Channel, x: int, y: int, value: int) -> None:
        """Counted write of one channel element at full-resolution ``(x, y)``."""
        row, col = self._coords(channel, x, y)
        self.counter.count_write(channel)
        self._planes[channel][row, col] = value

    def plane_view(self, channel: Channel, *, reads: int = 0,
                   writes: int = 0) -> np.ndarray:
        """Counted bulk access to one plane, at the plane's own resolution.

        Returns the raw plane array after crediting ``reads`` /
        ``writes`` element accesses to the counter.  This is the strip
        executor's doorway: it touches the plane with bulk numpy
        operations while the counter records the accesses the per-pixel
        walk would have performed (credited analytically, per strip).
        """
        self.counter.credit_reads(channel, reads)
        self.counter.credit_writes(channel, writes)
        return self._planes[channel]

    def read_clamped(self, channel: Channel, x: int, y: int) -> int:
        """Counted read with coordinates clamped to the frame border.

        The AddressLib software handles frame borders by clamping (border
        pixels replicate outward); a clamped read still costs one access.
        """
        cx = min(max(x, 0), self.width - 1)
        cy = min(max(y, 0), self.height - 1)
        return self.read(channel, cx, cy)

    # -- conversions ----------------------------------------------------------

    @classmethod
    def from_frame(cls, frame: Frame,
                   counter: Optional[AccessCounter] = None
                   ) -> "PlanarFrame420":
        """Build from a packed :class:`Frame`, decimating chroma 2:1.

        Chroma uses simple top-left-of-quad decimation, matching the way
        MPEG-1 CIF source material (already 4:2:0) round-trips losslessly.
        Conversion is bulk setup and is not counted.
        """
        planar = cls(frame.format, counter)
        planar._planes[Channel.Y][:] = frame.y
        planar._planes[Channel.U][:] = frame.u[::2, ::2]
        planar._planes[Channel.V][:] = frame.v[::2, ::2]
        planar._planes[Channel.ALFA][:] = frame.alfa
        planar._planes[Channel.AUX][:] = frame.aux
        return planar

    def to_frame(self) -> Frame:
        """Expand back to a packed :class:`Frame` (chroma replicated 2x2)."""
        frame = Frame(self.format)
        frame.y[:] = self._planes[Channel.Y]
        up_u = np.repeat(np.repeat(self._planes[Channel.U], 2, axis=0),
                         2, axis=1)
        up_v = np.repeat(np.repeat(self._planes[Channel.V], 2, axis=0),
                         2, axis=1)
        frame.u[:] = up_u[:self.height, :self.width]
        frame.v[:] = up_v[:self.height, :self.width]
        frame.alfa[:] = self._planes[Channel.ALFA]
        frame.aux[:] = self._planes[Channel.AUX]
        return frame

    def __repr__(self) -> str:
        return (f"PlanarFrame420({self.format.name}, "
                f"{self.width}x{self.height}, accesses={self.counter.total})")
