"""Image substrate: the AddressEngine pixel/frame data model.

Provides the packed 64-bit pixel (:class:`~repro.image.pixel.Pixel`), the
engine-side full-resolution frame (:class:`~repro.image.frame.Frame`), the
software baseline's planar 4:2:0 store with access counting
(:class:`~repro.image.planar.PlanarFrame420`), the two supported formats
(:data:`~repro.image.formats.QCIF`, :data:`~repro.image.formats.CIF`) and
seeded synthetic content generators (:mod:`repro.image.synth`).
"""

from .color import (frame_from_rgb, frame_to_rgb, rgb_to_yuv,
                    yuv_to_rgb)
from .formats import (CIF, PIXEL_BITS, PIXEL_BYTES, QCIF, STRIP_LINES,
                      SUPPORTED_FORMATS, ImageFormat, format_by_name)
from .frame import Frame
from .io import (AE64_MAGIC, read_ae64, read_pgm, read_yuv420, write_ae64,
                 write_pgm, write_yuv420, yuv420_frame_bytes)
from .pixel import (ALL_CHANNELS, COLOR_CHANNELS, META_CHANNELS, Channel,
                    Pixel)
from .planar import AccessCounter, PlanarFrame420, SUBSAMPLED_CHANNELS
from .synth import (blob_frame, checkerboard_frame, frame_from_luma,
                    gradient_frame, noise_frame, textured_panorama)

__all__ = [
    "ALL_CHANNELS",
    "AccessCounter",
    "CIF",
    "COLOR_CHANNELS",
    "Channel",
    "Frame",
    "ImageFormat",
    "META_CHANNELS",
    "PIXEL_BITS",
    "PIXEL_BYTES",
    "Pixel",
    "PlanarFrame420",
    "QCIF",
    "STRIP_LINES",
    "SUBSAMPLED_CHANNELS",
    "SUPPORTED_FORMATS",
    "AE64_MAGIC",
    "blob_frame",
    "checkerboard_frame",
    "format_by_name",
    "frame_from_rgb",
    "frame_to_rgb",
    "frame_from_luma",
    "gradient_frame",
    "noise_frame",
    "read_ae64",
    "read_pgm",
    "read_yuv420",
    "rgb_to_yuv",
    "textured_panorama",
    "write_ae64",
    "write_pgm",
    "write_yuv420",
    "yuv420_frame_bytes",
    "yuv_to_rgb",
]
