"""Image formats supported by the AddressEngine prototype.

The paper's prototype (section 3.1) handles exactly two frame formats:

* **QCIF** -- 176 x 144 pixels (about 200 kBytes at 64 bits per pixel)
* **CIF**  -- 352 x 288 pixels (about 800 kBytes at 64 bits per pixel)

Both dimensions are multiples of the 16-line strip height used by the
double-buffered PC-to-ZBT transfer scheme, which the paper calls out as a
deliberate design decision ("Sixteen is also divisor of the image size").
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bits per stored pixel: Y, U, V at 8 bits plus Alfa and Aux at 16 bits,
#: padded to a 64-bit container (two 32-bit ZBT words).
PIXEL_BITS = 64

#: Bytes per stored pixel.
PIXEL_BYTES = PIXEL_BITS // 8

#: Height of a transfer strip in lines (section 3.1: the maximum
#: neighbourhood span is nine lines, and sixteen is the next power of two).
STRIP_LINES = 16


@dataclass(frozen=True)
class ImageFormat:
    """A rectangular frame format.

    Attributes:
        name: Human-readable format name (``"QCIF"`` or ``"CIF"``).
        width: Frame width in pixels.
        height: Frame height in pixels.
    """

    name: str
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"format dimensions must be positive: {self}")

    @property
    def pixels(self) -> int:
        """Total number of pixels in one frame."""
        return self.width * self.height

    @property
    def bytes_packed(self) -> int:
        """Size of one frame in the engine's packed 64-bit representation."""
        return self.pixels * PIXEL_BYTES

    @property
    def strips(self) -> int:
        """Number of 16-line strips needed to cover the frame.

        The last strip may be partial when the height is not a multiple of
        :data:`STRIP_LINES`; for the paper's formats it never is.
        """
        return -(-self.height // STRIP_LINES)

    @property
    def strip_aligned(self) -> bool:
        """Whether the frame height is an exact multiple of the strip size."""
        return self.height % STRIP_LINES == 0

    def contains(self, x: int, y: int) -> bool:
        """Return ``True`` when ``(x, y)`` is a valid pixel coordinate."""
        return 0 <= x < self.width and 0 <= y < self.height


#: QCIF: 176 x 144, approx. 200 kBytes packed (the paper's smaller format).
QCIF = ImageFormat("QCIF", 176, 144)

#: CIF: 352 x 288, approx. 800 kBytes packed (the paper's evaluation format).
CIF = ImageFormat("CIF", 352, 288)

#: Formats the ZBT memory map is sized for.
SUPPORTED_FORMATS = (QCIF, CIF)


def format_by_name(name: str) -> ImageFormat:
    """Look up a supported format by (case-insensitive) name.

    Raises:
        KeyError: if the name matches no supported format.
    """
    wanted = name.strip().upper()
    for fmt in SUPPORTED_FORMATS:
        if fmt.name == wanted:
            return fmt
    raise KeyError(f"unknown image format {name!r}; supported: "
                   f"{', '.join(f.name for f in SUPPORTED_FORMATS)}")
