"""Frame file I/O: PGM images, planar YUV clips, packed frame dumps.

Three interchange formats:

* **PGM** (P5) -- one luminance plane, viewable everywhere; used by the
  examples for mosaics and debug dumps.
* **Planar YUV 4:2:0** (".yuv" clips) -- the layout MPEG-1 decoders
  emit and the paper's software baseline consumes: per frame a full-res
  Y plane followed by quarter-res U and V planes.  Sequences concatenate
  frames, so this module reads/writes whole clips.
* **Packed AE64 dumps** -- the engine's native 64-bit pixel layout
  (lower word stream then upper word stream, little endian), exact for
  all five channels; round-trips a :class:`Frame` losslessly.
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO, Iterable, List, Union

import numpy as np

from .formats import ImageFormat
from .frame import Frame
from .planar import PlanarFrame420
from .pixel import Channel

PathLike = Union[str, Path]

#: Magic prefix of packed frame dumps.
AE64_MAGIC = b"AE64\x01"


# ---------------------------------------------------------------------------
# PGM
# ---------------------------------------------------------------------------

def write_pgm(path: PathLike, luma: np.ndarray) -> None:
    """Write a luminance plane as a binary PGM (P5, maxval 255)."""
    data = np.clip(np.round(np.asarray(luma, dtype=np.float64)),
                   0, 255).astype(np.uint8)
    if data.ndim != 2:
        raise ValueError(f"PGM needs a 2-D plane, got shape {data.shape}")
    height, width = data.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(data.tobytes())


def read_pgm(path: PathLike) -> np.ndarray:
    """Read a binary PGM into a uint8 plane."""
    with open(path, "rb") as handle:
        magic = _read_token(handle)
        if magic != b"P5":
            raise ValueError(f"not a binary PGM: magic {magic!r}")
        width = int(_read_token(handle))
        height = int(_read_token(handle))
        maxval = int(_read_token(handle))
        if maxval != 255:
            raise ValueError(f"only maxval 255 supported, got {maxval}")
        data = handle.read(width * height)
    if len(data) != width * height:
        raise ValueError("truncated PGM payload")
    return np.frombuffer(data, dtype=np.uint8).reshape(height, width)


def _read_token(handle: BinaryIO) -> bytes:
    """Read one whitespace-delimited PGM header token (skips comments)."""
    token = b""
    while True:
        char = handle.read(1)
        if not char:
            raise ValueError("unexpected end of PGM header")
        if char == b"#":
            while char not in (b"\n", b""):
                char = handle.read(1)
            continue
        if char.isspace():
            if token:
                return token
            continue
        token += char


# ---------------------------------------------------------------------------
# Planar YUV 4:2:0 clips
# ---------------------------------------------------------------------------

def yuv420_frame_bytes(fmt: ImageFormat) -> int:
    """Bytes of one 4:2:0 frame: Y full-res + U, V quarter-res."""
    half_w = -(-fmt.width // 2)
    half_h = -(-fmt.height // 2)
    return fmt.pixels + 2 * half_w * half_h


def write_yuv420(path: PathLike, frames: Iterable[Frame],
                 append: bool = False) -> int:
    """Write frames as a planar 4:2:0 clip; returns the frame count.

    Chroma is decimated exactly like :class:`PlanarFrame420` (top-left
    of each quad), so engine-side frames round-trip through the software
    baseline's storage convention.
    """
    count = 0
    mode = "ab" if append else "wb"
    with open(path, mode) as handle:
        for frame in frames:
            handle.write(frame.y.tobytes())
            handle.write(frame.u[::2, ::2].tobytes())
            handle.write(frame.v[::2, ::2].tobytes())
            count += 1
    return count


def read_yuv420(path: PathLike, fmt: ImageFormat,
                max_frames: int = None) -> List[Frame]:
    """Read a planar 4:2:0 clip into frames (chroma replicated 2x2)."""
    frame_bytes = yuv420_frame_bytes(fmt)
    half_w = -(-fmt.width // 2)
    half_h = -(-fmt.height // 2)
    frames: List[Frame] = []
    with open(path, "rb") as handle:
        while max_frames is None or len(frames) < max_frames:
            blob = handle.read(frame_bytes)
            if not blob:
                break
            if len(blob) != frame_bytes:
                raise ValueError(
                    f"truncated clip: frame {len(frames)} has "
                    f"{len(blob)} of {frame_bytes} bytes")
            planar = PlanarFrame420(fmt)
            offset = 0
            planar.plane(Channel.Y)[:] = np.frombuffer(
                blob, np.uint8, fmt.pixels, offset).reshape(
                fmt.height, fmt.width)
            offset += fmt.pixels
            planar.plane(Channel.U)[:] = np.frombuffer(
                blob, np.uint8, half_w * half_h, offset).reshape(
                half_h, half_w)
            offset += half_w * half_h
            planar.plane(Channel.V)[:] = np.frombuffer(
                blob, np.uint8, half_w * half_h, offset).reshape(
                half_h, half_w)
            frames.append(planar.to_frame())
    return frames


# ---------------------------------------------------------------------------
# Packed AE64 dumps
# ---------------------------------------------------------------------------

def write_ae64(path: PathLike, frame: Frame) -> None:
    """Dump a frame in the engine's packed two-word-per-pixel layout."""
    lower, upper = frame.to_words()
    header = (AE64_MAGIC
              + int(frame.width).to_bytes(4, "little")
              + int(frame.height).to_bytes(4, "little"))
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(lower.astype("<u4").tobytes())
        handle.write(upper.astype("<u4").tobytes())


def read_ae64(path: PathLike) -> Frame:
    """Load a packed frame dump (lossless for all five channels)."""
    with open(path, "rb") as handle:
        magic = handle.read(len(AE64_MAGIC))
        if magic != AE64_MAGIC:
            raise ValueError(f"not an AE64 dump: magic {magic!r}")
        width = int.from_bytes(handle.read(4), "little")
        height = int.from_bytes(handle.read(4), "little")
        fmt = ImageFormat(f"AE64-{width}x{height}", width, height)
        words = fmt.pixels
        lower = np.frombuffer(handle.read(words * 4),
                              dtype="<u4").reshape(height, width)
        upper = np.frombuffer(handle.read(words * 4),
                              dtype="<u4").reshape(height, width)
    if lower.size != words or upper.size != words:
        raise ValueError("truncated AE64 payload")
    return Frame.from_words(fmt, lower.astype(np.uint32),
                            upper.astype(np.uint32))
