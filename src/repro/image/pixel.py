"""The AddressEngine 64-bit pixel and its ZBT word packing.

Section 3.1 of the paper: *"Since the memory width is 32 bits and the pixel
size is 64 bits (i.e. 8 bits per Y, U, V channels and 16 bits per Alfa and
Aux channels) two memory positions are required to store one pixel. The
AddressEngine coprocessor stores the upper and the lower part of the pixel
in the same position of two different ZBT banks."*

We therefore model a pixel as five channels packed into two 32-bit words:

* **lower word**: ``Y`` (bits 0-7), ``U`` (bits 8-15), ``V`` (bits 16-23),
  bits 24-31 reserved/zero;
* **upper word**: ``Alfa`` (bits 0-15), ``Aux`` (bits 16-31).

``Alfa`` carries segmentation/alpha state and ``Aux`` carries
algorithm-defined auxiliary data (e.g. segment labels or gradient
magnitudes); both are 16-bit unsigned in storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple


class Channel(Enum):
    """A pixel channel, with its storage word and bit position."""

    Y = ("lower", 0, 8)
    U = ("lower", 8, 8)
    V = ("lower", 16, 8)
    ALFA = ("upper", 0, 16)
    AUX = ("upper", 16, 16)

    def __init__(self, word: str, shift: int, bits: int) -> None:
        self.word = word
        self.shift = shift
        self.bits = bits

    @property
    def mask(self) -> int:
        """Bit mask of the channel within its 32-bit word."""
        return ((1 << self.bits) - 1) << self.shift

    @property
    def max_value(self) -> int:
        """Largest representable channel value."""
        return (1 << self.bits) - 1


#: The three 8-bit colour channels (one ZBT word once packed).
COLOR_CHANNELS = (Channel.Y, Channel.U, Channel.V)

#: The two 16-bit auxiliary channels (the partner ZBT word).
META_CHANNELS = (Channel.ALFA, Channel.AUX)

#: All five channels in storage order.
ALL_CHANNELS = COLOR_CHANNELS + META_CHANNELS

_WORD_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class Pixel:
    """One AddressEngine pixel: Y/U/V at 8 bits, Alfa/Aux at 16 bits."""

    y: int = 0
    u: int = 0
    v: int = 0
    alfa: int = 0
    aux: int = 0

    def __post_init__(self) -> None:
        for channel, value in (
            (Channel.Y, self.y),
            (Channel.U, self.u),
            (Channel.V, self.v),
            (Channel.ALFA, self.alfa),
            (Channel.AUX, self.aux),
        ):
            if not 0 <= value <= channel.max_value:
                raise ValueError(
                    f"channel {channel.name} value {value} outside "
                    f"[0, {channel.max_value}]")

    def get(self, channel: Channel) -> int:
        """Return the value of ``channel``."""
        return getattr(self, channel.name.lower())

    def with_channel(self, channel: Channel, value: int) -> "Pixel":
        """Return a copy with ``channel`` replaced by ``value``."""
        fields = {name.lower(): self.get(Channel[name])
                  for name in Channel.__members__}
        fields[channel.name.lower()] = value
        return Pixel(**fields)

    # -- ZBT word packing ---------------------------------------------------

    @property
    def lower_word(self) -> int:
        """The colour word stored in the lower ZBT bank (Y|U|V, 24 bits)."""
        return (self.y | (self.u << 8) | (self.v << 16)) & _WORD_MASK

    @property
    def upper_word(self) -> int:
        """The meta word stored in the upper ZBT bank (Alfa|Aux)."""
        return (self.alfa | (self.aux << 16)) & _WORD_MASK

    def pack(self) -> Tuple[int, int]:
        """Pack into ``(lower_word, upper_word)`` 32-bit ZBT words."""
        return self.lower_word, self.upper_word

    @classmethod
    def unpack(cls, lower_word: int, upper_word: int) -> "Pixel":
        """Rebuild a pixel from its two 32-bit ZBT words."""
        return cls(
            y=lower_word & 0xFF,
            u=(lower_word >> 8) & 0xFF,
            v=(lower_word >> 16) & 0xFF,
            alfa=upper_word & 0xFFFF,
            aux=(upper_word >> 16) & 0xFFFF,
        )

    @classmethod
    def gray(cls, y: int) -> "Pixel":
        """A neutral-chroma pixel with luminance ``y`` (U = V = 128)."""
        return cls(y=y, u=128, v=128)

    def __str__(self) -> str:
        return (f"Pixel(Y={self.y}, U={self.u}, V={self.v}, "
                f"Alfa={self.alfa}, Aux={self.aux})")
