"""Packed frame store: the engine-side view of an image.

A :class:`Frame` holds the five AddressEngine channels at full resolution
(the packed 64-bit-per-pixel layout of the ZBT memory).  This is the
representation the coprocessor works with; the host-side software baseline
uses the planar 4:2:0 layout in :mod:`repro.image.planar` instead.

Coordinates are ``(x, y)`` with ``x`` the column and ``y`` the row, matching
the paper's scan terminology; the backing numpy arrays are indexed
``[row, column]``.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Tuple

import numpy as np

from .formats import STRIP_LINES, ImageFormat
from .pixel import ALL_CHANNELS, Channel, Pixel

#: The numpy dtype of each channel plane (8-bit colour, 16-bit Alfa/Aux).
PLANE_DTYPES = {
    Channel.Y: np.uint8,
    Channel.U: np.uint8,
    Channel.V: np.uint8,
    Channel.ALFA: np.uint16,
    Channel.AUX: np.uint16,
}

#: Backwards-compatible private alias.
_DTYPES = PLANE_DTYPES


class Frame:
    """A full-resolution five-channel frame in the engine's packed layout."""

    def __init__(self, fmt: ImageFormat) -> None:
        self.format = fmt
        self._planes = {
            channel: np.zeros((fmt.height, fmt.width), dtype=_DTYPES[channel])
            for channel in ALL_CHANNELS
        }

    # -- basic geometry -----------------------------------------------------

    @property
    def width(self) -> int:
        return self.format.width

    @property
    def height(self) -> int:
        return self.format.height

    @property
    def pixels(self) -> int:
        return self.format.pixels

    # -- channel access -----------------------------------------------------

    def plane(self, channel: Channel) -> np.ndarray:
        """The full-resolution plane of ``channel`` (mutable view)."""
        return self._planes[channel]

    @property
    def y(self) -> np.ndarray:
        return self._planes[Channel.Y]

    @property
    def u(self) -> np.ndarray:
        return self._planes[Channel.U]

    @property
    def v(self) -> np.ndarray:
        return self._planes[Channel.V]

    @property
    def alfa(self) -> np.ndarray:
        return self._planes[Channel.ALFA]

    @property
    def aux(self) -> np.ndarray:
        return self._planes[Channel.AUX]

    # -- pixel access -------------------------------------------------------

    def get_pixel(self, x: int, y: int) -> Pixel:
        """Read the pixel at column ``x``, row ``y``."""
        self._check_coords(x, y)
        return Pixel(*(int(self._planes[c][y, x]) for c in ALL_CHANNELS))

    def set_pixel(self, x: int, y: int, pixel: Pixel) -> None:
        """Write ``pixel`` at column ``x``, row ``y``."""
        self._check_coords(x, y)
        for channel in ALL_CHANNELS:
            self._planes[channel][y, x] = pixel.get(channel)

    def _check_coords(self, x: int, y: int) -> None:
        if not self.format.contains(x, y):
            raise IndexError(
                f"pixel ({x}, {y}) outside {self.format.name} frame "
                f"{self.width}x{self.height}")

    # -- ZBT word view ------------------------------------------------------

    def to_words(self) -> Tuple[np.ndarray, np.ndarray]:
        """Pack into ``(lower, upper)`` uint32 planes of ZBT words.

        The lower word carries Y|U|V (bits 0-23), the upper word
        Alfa|Aux -- exactly the split the engine stores in sibling ZBT
        banks so one pixel is reachable in a single memory cycle.
        """
        lower = (self.y.astype(np.uint32)
                 | (self.u.astype(np.uint32) << 8)
                 | (self.v.astype(np.uint32) << 16))
        upper = (self.alfa.astype(np.uint32)
                 | (self.aux.astype(np.uint32) << 16))
        return lower, upper

    @classmethod
    def from_plane_views(cls, fmt: ImageFormat,
                         planes: Mapping[Channel, np.ndarray]) -> "Frame":
        """Wrap existing arrays as a frame without copying.

        The arrays become the frame's planes directly -- the caller is
        responsible for keeping their backing buffers alive (this is the
        zero-copy attach path of the shared-memory transport).  Each
        plane must already have the format's shape and the channel's
        canonical dtype.
        """
        frame = cls.__new__(cls)
        frame.format = fmt
        expected = (fmt.height, fmt.width)
        views = {}
        for channel in ALL_CHANNELS:
            plane = planes[channel]
            if plane.shape != expected:
                raise ValueError(
                    f"{channel.name} plane must be {expected}, "
                    f"got {plane.shape}")
            if plane.dtype != PLANE_DTYPES[channel]:
                raise ValueError(
                    f"{channel.name} plane must be "
                    f"{np.dtype(PLANE_DTYPES[channel]).name}, "
                    f"got {plane.dtype}")
            views[channel] = plane
        frame._planes = views
        return frame

    @classmethod
    def from_words(cls, fmt: ImageFormat, lower: np.ndarray,
                   upper: np.ndarray) -> "Frame":
        """Rebuild a frame from its lower/upper ZBT word planes."""
        expected = (fmt.height, fmt.width)
        if lower.shape != expected or upper.shape != expected:
            raise ValueError(
                f"word planes must be {expected}, got "
                f"{lower.shape} / {upper.shape}")
        frame = cls(fmt)
        frame.y[:] = lower & 0xFF
        frame.u[:] = (lower >> 8) & 0xFF
        frame.v[:] = (lower >> 16) & 0xFF
        frame.alfa[:] = upper & 0xFFFF
        frame.aux[:] = (upper >> 16) & 0xFFFF
        return frame

    # -- strips (PCI transfer granularity) ----------------------------------

    def strip_bounds(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(first_row, last_row_exclusive)`` for each 16-line strip."""
        for top in range(0, self.height, STRIP_LINES):
            yield top, min(top + STRIP_LINES, self.height)

    def strip(self, index: int) -> "Frame":
        """Extract strip ``index`` as a standalone (copied) frame."""
        bounds = list(self.strip_bounds())
        if not 0 <= index < len(bounds):
            raise IndexError(f"strip {index} outside 0..{len(bounds) - 1}")
        top, bottom = bounds[index]
        sub = Frame(ImageFormat(f"{self.format.name}-strip",
                                self.width, bottom - top))
        for channel in ALL_CHANNELS:
            sub.plane(channel)[:] = self._planes[channel][top:bottom]
        return sub

    # -- utility ------------------------------------------------------------

    def copy(self) -> "Frame":
        """Deep copy of all five planes."""
        duplicate = Frame(self.format)
        for channel in ALL_CHANNELS:
            duplicate.plane(channel)[:] = self._planes[channel]
        return duplicate

    def fill(self, pixel: Pixel) -> None:
        """Set every pixel of the frame to ``pixel``."""
        for channel in ALL_CHANNELS:
            self._planes[channel][:] = pixel.get(channel)

    def equals(self, other: "Frame") -> bool:
        """Exact equality of all five planes."""
        return (self.format.width == other.format.width
                and self.format.height == other.format.height
                and all(np.array_equal(self._planes[c], other._planes[c])
                        for c in ALL_CHANNELS))

    def __repr__(self) -> str:
        return f"Frame({self.format.name}, {self.width}x{self.height})"
