"""Synthetic image content for tests, examples and benchmarks.

The paper evaluates on four MPEG-1 CIF clips we do not have (Singapore,
Dome, Pisa, Movie).  Per the substitution plan in DESIGN.md we generate
deterministic synthetic content instead: textured panoramas for the global
motion estimation workload and structured patterns for unit-level checks.
All generators are seeded and reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .formats import ImageFormat
from .frame import Frame


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(0xADD2E55 if seed is None else seed)


def gradient_frame(fmt: ImageFormat, horizontal: bool = True) -> Frame:
    """A linear luminance ramp (neutral chroma).

    Useful for verifying scan orders and gradient operators: the luminance
    derivative is constant and known.
    """
    frame = Frame(fmt)
    if horizontal:
        ramp = np.linspace(0, 255, fmt.width).astype(np.uint8)
        frame.y[:] = np.tile(ramp, (fmt.height, 1))
    else:
        ramp = np.linspace(0, 255, fmt.height).astype(np.uint8)
        frame.y[:] = np.tile(ramp[:, None], (1, fmt.width))
    frame.u[:] = 128
    frame.v[:] = 128
    return frame


def checkerboard_frame(fmt: ImageFormat, cell: int = 8,
                       low: int = 32, high: int = 224) -> Frame:
    """A luminance checkerboard with ``cell``-pixel squares."""
    if cell <= 0:
        raise ValueError("cell size must be positive")
    frame = Frame(fmt)
    ys, xs = np.mgrid[0:fmt.height, 0:fmt.width]
    board = ((xs // cell + ys // cell) % 2).astype(np.uint8)
    frame.y[:] = np.where(board == 0, low, high).astype(np.uint8)
    frame.u[:] = 128
    frame.v[:] = 128
    return frame


def noise_frame(fmt: ImageFormat, seed: Optional[int] = None) -> Frame:
    """Uniform random content in all five channels (seeded)."""
    rng = _rng(seed)
    frame = Frame(fmt)
    frame.y[:] = rng.integers(0, 256, size=frame.y.shape, dtype=np.uint16)
    frame.u[:] = rng.integers(0, 256, size=frame.u.shape, dtype=np.uint16)
    frame.v[:] = rng.integers(0, 256, size=frame.v.shape, dtype=np.uint16)
    frame.alfa[:] = rng.integers(0, 1 << 16, size=frame.alfa.shape,
                                 dtype=np.uint32)
    frame.aux[:] = rng.integers(0, 1 << 16, size=frame.aux.shape,
                                dtype=np.uint32)
    return frame


def textured_panorama(width: int, height: int,
                      seed: Optional[int] = None,
                      octaves: int = 4) -> np.ndarray:
    """A smooth but feature-rich luminance panorama, as a float64 array.

    Built from summed band-limited noise (value-noise octaves): smooth
    enough that gradient-based motion estimation converges, textured enough
    that the SAD error surface has a clear minimum.  Used as the scene that
    synthetic camera paths pan across (see :mod:`repro.gme.sequences`).
    """
    if octaves < 1:
        raise ValueError("need at least one octave")
    rng = _rng(seed)
    canvas = np.zeros((height, width), dtype=np.float64)
    amplitude = 1.0
    total_amplitude = 0.0
    for octave in range(octaves):
        cells = 2 ** (octave + 2)
        coarse = rng.random((cells + 1, cells + 1))
        # Bilinear upsample of the coarse lattice onto the full canvas.
        ys = np.linspace(0, cells, height)
        xs = np.linspace(0, cells, width)
        y0 = np.clip(ys.astype(int), 0, cells - 1)
        x0 = np.clip(xs.astype(int), 0, cells - 1)
        fy = (ys - y0)[:, None]
        fx = (xs - x0)[None, :]
        c00 = coarse[np.ix_(y0, x0)]
        c01 = coarse[np.ix_(y0, x0 + 1)]
        c10 = coarse[np.ix_(y0 + 1, x0)]
        c11 = coarse[np.ix_(y0 + 1, x0 + 1)]
        layer = (c00 * (1 - fy) * (1 - fx) + c01 * (1 - fy) * fx
                 + c10 * fy * (1 - fx) + c11 * fy * fx)
        canvas += amplitude * layer
        total_amplitude += amplitude
        amplitude *= 0.55
    canvas /= total_amplitude
    # Stretch to the full 8-bit range but keep float precision for sampling.
    canvas -= canvas.min()
    peak = canvas.max()
    if peak > 0:
        canvas *= 255.0 / peak
    return canvas


def frame_from_luma(fmt: ImageFormat, luma: np.ndarray) -> Frame:
    """Wrap a luminance array (any numeric dtype) into a neutral-chroma frame."""
    if luma.shape != (fmt.height, fmt.width):
        raise ValueError(
            f"luma shape {luma.shape} does not match {fmt.name} "
            f"({fmt.height}, {fmt.width})")
    frame = Frame(fmt)
    frame.y[:] = np.clip(np.round(luma), 0, 255).astype(np.uint8)
    frame.u[:] = 128
    frame.v[:] = 128
    return frame


def blob_frame(fmt: ImageFormat, centers, radius: int = 12,
               inside: int = 200, outside: int = 30) -> Frame:
    """Bright circular blobs on a dark background.

    Segmentation tests use this: each blob is one connected segment with a
    strong homogeneity boundary.  ``centers`` is an iterable of ``(x, y)``.
    """
    frame = Frame(fmt)
    frame.y[:] = outside
    frame.u[:] = 128
    frame.v[:] = 128
    ys, xs = np.mgrid[0:fmt.height, 0:fmt.width]
    for cx, cy in centers:
        mask = (xs - cx) ** 2 + (ys - cy) ** 2 <= radius ** 2
        frame.y[mask] = inside
    return frame
