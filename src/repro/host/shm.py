"""Zero-copy frame transport between the scheduler and its workers.

The paper's host moves every frame over the PCI bus by DMA, and the
board design (strip jobs, block_A/block_B double buffering, interrupt
batching) exists to keep that bus off the critical path; section 4.3
observes the penalty when it is not ("the host accessed the board after
every call to the AddressLib").  The scheduler's parent<->worker
boundary has exactly the same structure: pickling a frame into a
``ProcessPoolExecutor`` is this model's PCI transfer, and it was the
measured wall-clock limiter.  This module is the DMA engine of that
analogy -- each :class:`~repro.image.frame.Frame`'s five planes are
written *once* into a ``multiprocessing.shared_memory`` segment and the
workers receive a small handle (segment name, geometry, generation)
instead of the bytes.

Three cooperating pieces:

* :class:`PlaneStore` -- the parent-side registry.  :meth:`register`
  maps a live frame to a segment, reusing it while the content is
  unchanged and bumping the *generation* (a fresh segment) when the
  frame was mutated between waves.  Segments are released when the
  frame is garbage-collected, superseded, or the store closes.
* the worker-resident cache -- :func:`worker_attach` keeps an LRU of
  attached segments keyed by ``(store token, frame id)``, so the N
  calls of a wave that touch the same frame map it once; a generation
  bump invalidates the cached entry.
* :func:`ship_result` -- the worker-to-parent return path: a result
  frame is written into a fresh segment whose handle the parent adopts
  (:meth:`PlaneStore.adopt_result`) as a zero-copy frame, unlinked when
  that frame dies.

Everything degrades to pickle transport: when the platform has no
``multiprocessing.shared_memory`` (:data:`SHARED_MEMORY_AVAILABLE` is
False) or a segment operation fails at runtime, the store flips
``broken`` and the scheduler falls back to shipping whole frames.
"""

from __future__ import annotations

import uuid
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import (Any, Dict, List, Optional, Protocol, Sequence,
                    Tuple)

import numpy as np

from ..image.formats import ImageFormat
from ..image.frame import Frame, PLANE_DTYPES
from ..image.pixel import ALL_CHANNELS, Channel

try:
    from multiprocessing import shared_memory as _shm
    SHARED_MEMORY_AVAILABLE = True
except ImportError:  # pragma: no cover - py3.8-/platform gaps
    _shm = None  # type: ignore[assignment]
    SHARED_MEMORY_AVAILABLE = False

try:
    import _posixshmem  # the stdlib's own POSIX shm backing
except ImportError:  # pragma: no cover - non-POSIX platforms
    _posixshmem = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Segment payload layout
# ---------------------------------------------------------------------------

def _plane_layout(fmt: ImageFormat
                  ) -> List[Tuple[Channel, int, np.dtype]]:
    """``(channel, byte offset, dtype)`` of each plane in a segment."""
    layout = []
    offset = 0
    for channel in ALL_CHANNELS:
        dtype = np.dtype(PLANE_DTYPES[channel])
        layout.append((channel, offset, dtype))
        offset += fmt.pixels * dtype.itemsize
    return layout


def frame_payload_bytes(fmt: ImageFormat) -> int:
    """Bytes one frame occupies in a segment (7 bytes per pixel: three
    8-bit colour planes plus two 16-bit meta planes)."""
    return fmt.pixels * sum(np.dtype(PLANE_DTYPES[c]).itemsize
                            for c in ALL_CHANNELS)


def write_frame(buf: Any, frame: Frame) -> None:
    """Copy every plane of ``frame`` into ``buf`` at the layout offsets."""
    fmt = frame.format
    for channel, offset, dtype in _plane_layout(fmt):
        view = np.frombuffer(buf, dtype=dtype, count=fmt.pixels,
                             offset=offset).reshape(fmt.height, fmt.width)
        view[:] = frame.plane(channel)


def read_frame(fmt: ImageFormat, buf: Any,
               writeable: bool = False) -> Frame:
    """Wrap ``buf`` as a frame of zero-copy plane views.

    Input frames attach read-only (workers never mutate their inputs);
    adopted results attach writeable so callers can keep using them as
    ordinary frames.
    """
    planes: Dict[Channel, np.ndarray] = {}
    for channel, offset, dtype in _plane_layout(fmt):
        view = np.frombuffer(buf, dtype=dtype, count=fmt.pixels,
                             offset=offset).reshape(fmt.height, fmt.width)
        if not writeable:
            view.flags.writeable = False
        planes[channel] = view
    return Frame.from_plane_views(fmt, planes)


# ---------------------------------------------------------------------------
# Segment lifecycle helpers
# ---------------------------------------------------------------------------

def _untrack(segment: Any) -> None:
    """Withdraw ``segment`` from the multiprocessing resource tracker.

    Before 3.13 *every* ``SharedMemory`` -- attached as well as created
    (bpo-38119) -- registers itself, so a process' tracker would unlink
    segments it does not own at exit and warn about "leaked" ones it
    never leaked.  This module does its own refcounted cleanup instead,
    so each construction is withdrawn immediately (and unlinking goes
    through :func:`_unlink_segment`, which never touches the tracker).
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _new_segment(nbytes: int) -> Any:
    """Create an untracked segment of ``nbytes``."""
    try:
        return _shm.SharedMemory(create=True, size=nbytes, track=False)
    except TypeError:  # track= appeared in 3.13
        segment = _shm.SharedMemory(create=True, size=nbytes)
        _untrack(segment)
        return segment


def _attach_segment(name: str) -> Any:
    """Attach to an existing segment, untracked."""
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:
        segment = _shm.SharedMemory(name=name)
        _untrack(segment)
        return segment


def _unlink_segment(segment: Any) -> None:
    """Remove the segment's name, bypassing the tracker.

    ``SharedMemory.unlink()`` also *unregisters* with the resource
    tracker (before 3.13 unconditionally) -- but this module withdrew
    the registration at construction, so that unregister would be
    unmatched and the tracker process logs a ``KeyError``.  Unlink the
    POSIX name directly instead.
    """
    name = getattr(segment, "_name", None)
    if not name:
        return
    if _posixshmem is not None:
        _posixshmem.shm_unlink(name)
    else:  # pragma: no cover - non-POSIX: unlink is a no-op anyway
        segment.unlink()


def _disarm(segment: Any) -> None:
    """Hand the mapping's lifetime to the numpy views derived from it.

    Once plane views exist, ``SharedMemory.close()`` (including the one
    its ``__del__`` retries) would raise ``BufferError`` for as long as
    any view is alive.  Detaching the wrapper instead lets the last
    view drop the mmap, which then closes itself silently -- refcounted
    unmapping, no destructor noise.  ``unlink`` keeps working: it only
    needs the name.
    """
    try:
        segment._buf = None
        segment._mmap = None
    except AttributeError:  # pragma: no cover - unexpected layout
        pass


def _release_segment(segment: Any, unlink: bool = True) -> None:
    """Close (and by default unlink) a segment, tolerating exported
    numpy views: a mapping that is still pinned is handed to its views
    (see :func:`_disarm`), while the unlink removes the name at once."""
    observer = _OBSERVER
    if observer is not None:
        # The public .name (no leading slash), matching what
        # segment_created/result_adopted observed.
        try:
            name = str(getattr(segment, "name", "") or "")
        except Exception:
            name = ""
        if name:
            observer.segment_released(name)
    try:
        segment.close()
    except BufferError:
        _disarm(segment)
    except Exception:
        pass
    if unlink:
        try:
            _unlink_segment(segment)
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Handles (what actually crosses the process boundary)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FrameHandle:
    """A registered input frame: ~100 bytes instead of the planes.

    ``token`` names the owning :class:`PlaneStore` (so entries a forked
    worker inherited from a *different* store can never collide) and
    ``generation`` counts content rewrites of the same frame object --
    a worker holding generation N drops its mapping when N+1 arrives.
    """

    token: str
    frame_id: int
    generation: int
    segment_name: str
    format_name: str
    width: int
    height: int

    @property
    def fmt(self) -> ImageFormat:
        return ImageFormat(self.format_name, self.width, self.height)


@dataclass(frozen=True)
class ResultHandle:
    """A worker-produced result frame awaiting adoption by the parent."""

    segment_name: str
    format_name: str
    width: int
    height: int

    @property
    def fmt(self) -> ImageFormat:
        return ImageFormat(self.format_name, self.width, self.height)


# ---------------------------------------------------------------------------
# Transport observation (the runtime sanitizer's attachment point)
# ---------------------------------------------------------------------------

class TransportObserver(Protocol):
    """What a transport sanitizer sees of the live stack.

    Every method is a fire-and-forget notification from a hook site in
    this module, the scheduler, or the pool; implementations must be
    cheap and must never raise (:mod:`repro.analysis.sanitize` is the
    one implementation).  The hooks are dormant -- a module-global
    ``None`` check -- unless an observer is installed, so production
    runs pay one attribute load per event.
    """

    # scheduler-side wave framing
    def wave_opened(self) -> None: ...

    def wave_closed(self) -> None: ...

    def handle_shipped(self, handle: FrameHandle) -> None: ...

    # store-side segment/handle lifecycle
    def frame_registered(self, token: str, frame_id: int,
                         generation: int) -> None: ...

    def segment_created(self, name: str) -> None: ...

    def segment_released(self, name: str) -> None: ...

    def result_adopted(self, name: str, store_closed: bool) -> None: ...

    # worker-cache residency
    def cache_attach(self, token: str, frame_id: int, generation: int,
                     cached_generation: Optional[int]) -> None: ...

    def cache_evicted(self, token: str, frame_id: int,
                      generation: int) -> None: ...

    # pool-side placement and failover
    def pool_wave(self, worker_id: int, calls: Sequence[Any],
                  results: Sequence[Any]) -> None: ...

    def pool_requeued(self, original: Sequence[Any],
                      requeued: Sequence[Any]) -> None: ...


_OBSERVER: Optional[TransportObserver] = None


def set_transport_observer(observer: Optional[TransportObserver]
                           ) -> Optional[TransportObserver]:
    """Install (or, with ``None``, remove) the process-wide observer.

    Returns the previous observer so callers can restore it.  One
    observer per process: the sanitizer composes domains internally
    rather than chaining observers here.
    """
    global _OBSERVER
    previous = _OBSERVER
    _OBSERVER = observer
    return previous


def get_transport_observer() -> Optional[TransportObserver]:
    return _OBSERVER


# ---------------------------------------------------------------------------
# Parent-side store
# ---------------------------------------------------------------------------

class _StoreEntry:
    __slots__ = ("frame_ref", "segment", "handle", "views")

    def __init__(self, frame_ref: "weakref.ref[Frame]", segment: Any,
                 handle: FrameHandle,
                 views: Dict[Channel, np.ndarray]) -> None:
        self.frame_ref = frame_ref
        self.segment = segment
        self.handle = handle
        #: Parent-side read views of the segment, used to detect
        #: content mutation between waves.
        self.views = views


class PlaneStore:
    """Parent-side registry mapping live frames to shared segments.

    Frames are keyed by object identity; a weakref callback drops the
    segment as soon as the frame is collected, so an input that falls
    out of use never pins its bytes.  Any segment failure flips
    ``broken`` and the store answers ``None`` from then on -- the
    caller's signal to fall back to pickle transport.
    """

    def __init__(self) -> None:
        #: Distinguishes this store's handles from any other store's
        #: (including a parent store a forked worker inherited).
        self.token = uuid.uuid4().hex[:12]
        self.broken = not SHARED_MEMORY_AVAILABLE
        self.closed = False
        self.segments_created = 0
        self.generation_bumps = 0
        self.bytes_registered = 0
        self.results_adopted = 0
        self._entries: Dict[int, _StoreEntry] = {}
        self._next_frame_id = 0

    # -- registration ------------------------------------------------------

    def register(self, frame: Frame) -> Optional[FrameHandle]:
        """The handle for ``frame``, writing its planes at most once.

        Re-registering an unchanged frame returns the existing handle;
        a mutated frame gets a new segment under a bumped generation.
        ``None`` means shared memory is unavailable or broke: ship the
        frame by pickle instead.
        """
        if self.broken or self.closed:
            return None
        key = id(frame)
        entry = self._entries.get(key)
        if entry is not None and entry.frame_ref() is frame:
            if self._content_matches(entry, frame):
                return self._registered(entry.handle)
            return self._registered(self._rewrite(key, entry, frame))
        if entry is not None:
            # id() reuse after a missed weakref callback: start over.
            self._drop(key)
        return self._registered(self._create(key, frame))

    @staticmethod
    def _registered(handle: Optional[FrameHandle]
                    ) -> Optional[FrameHandle]:
        observer = _OBSERVER
        if observer is not None and handle is not None:
            observer.frame_registered(handle.token, handle.frame_id,
                                      handle.generation)
        return handle

    @staticmethod
    def _content_matches(entry: _StoreEntry, frame: Frame) -> bool:
        return all(np.array_equal(frame.plane(channel),
                                  entry.views[channel])
                   for channel in ALL_CHANNELS)

    def _views(self, segment: Any,
               fmt: ImageFormat) -> Dict[Channel, np.ndarray]:
        views: Dict[Channel, np.ndarray] = {}
        for channel, offset, dtype in _plane_layout(fmt):
            view = np.frombuffer(segment.buf, dtype=dtype,
                                 count=fmt.pixels, offset=offset)
            views[channel] = view.reshape(fmt.height, fmt.width)
        return views

    def _write_segment(self, frame: Frame) -> Any:
        """A fresh segment holding ``frame``'s planes, or ``None``."""
        nbytes = frame_payload_bytes(frame.format)
        try:
            segment = _new_segment(nbytes)
            write_frame(segment.buf, frame)
        except Exception:
            self.broken = True
            return None
        self.segments_created += 1
        self.bytes_registered += nbytes
        observer = _OBSERVER
        if observer is not None:
            observer.segment_created(segment.name)
        return segment

    def _create(self, key: int, frame: Frame) -> Optional[FrameHandle]:
        segment = self._write_segment(frame)
        if segment is None:
            return None
        fmt = frame.format
        frame_id = self._next_frame_id
        self._next_frame_id += 1
        handle = FrameHandle(self.token, frame_id, 0, segment.name,
                             fmt.name, fmt.width, fmt.height)
        views = self._views(segment, fmt)
        _disarm(segment)
        self._entries[key] = _StoreEntry(
            weakref.ref(frame, lambda _ref, key=key: self._drop(key)),
            segment, handle, views)
        return handle

    def _rewrite(self, key: int, entry: _StoreEntry,
                 frame: Frame) -> Optional[FrameHandle]:
        """Generation bump: the frame was mutated since registration."""
        segment = self._write_segment(frame)
        if segment is None:
            self._drop(key)
            return None
        fmt = frame.format
        old = entry.handle
        entry.views = {}
        _release_segment(entry.segment)
        entry.segment = segment
        entry.handle = FrameHandle(self.token, old.frame_id,
                                   old.generation + 1, segment.name,
                                   fmt.name, fmt.width, fmt.height)
        entry.views = self._views(segment, fmt)
        _disarm(segment)
        self.generation_bumps += 1
        return entry.handle

    def _drop(self, key: int) -> None:
        entry = self._entries.pop(key, None)
        if entry is None or self.closed:
            return
        entry.views = {}
        _release_segment(entry.segment)

    # -- result adoption ---------------------------------------------------

    def adopt_result(self, handle: ResultHandle) -> Optional[Frame]:
        """Wrap a worker-shipped result as a zero-copy frame.

        The segment is unlinked when the adopted frame is collected, so
        results have ordinary frame lifetimes.  ``None`` (attach
        failure) tells the caller to recompute the call inline.
        """
        observer = _OBSERVER
        if observer is not None:
            observer.result_adopted(handle.segment_name, self.closed)
        try:
            segment = _attach_segment(handle.segment_name)
        except Exception:
            self.broken = True
            return None
        frame = read_frame(handle.fmt, segment.buf, writeable=True)
        _disarm(segment)
        weakref.finalize(frame, _release_segment, segment)
        self.results_adopted += 1
        return frame

    # -- books and lifecycle -----------------------------------------------

    @property
    def segments_active(self) -> int:
        return len(self._entries)

    def active_segment_names(self) -> List[str]:
        return [entry.handle.segment_name
                for entry in self._entries.values()]

    def stats(self) -> Dict[str, object]:
        return {
            "segments_created": self.segments_created,
            "segments_active": self.segments_active,
            "generation_bumps": self.generation_bumps,
            "bytes_registered": self.bytes_registered,
            "results_adopted": self.results_adopted,
            "broken": self.broken,
        }

    def close(self) -> None:
        """Release every live segment (idempotent, safe at exit)."""
        if self.closed:
            return
        self.closed = True
        entries, self._entries = self._entries, {}
        for entry in entries.values():
            entry.views = {}
            _release_segment(entry.segment)


# ---------------------------------------------------------------------------
# Worker-side cache
# ---------------------------------------------------------------------------

#: Attached input frames, keyed by ``(store token, frame id)``.  The
#: frames' plane views own their mappings (:func:`_disarm`), so evicting
#: an entry is just dropping it -- the mmap unmaps with the last view.
_WORKER_CACHE: "OrderedDict[Tuple[str, int], Tuple[int, Frame]]" \
    = OrderedDict()
_WORKER_CACHE_CAP: int = 128


def worker_cache_capacity() -> int:
    return _WORKER_CACHE_CAP


def set_worker_cache_capacity(capacity: int) -> int:
    """Resize the worker cache; returns the previous capacity.

    Shrinking evicts LRU entries immediately (with observer
    notifications, so the sanitizer's eviction horizon stays exact).
    """
    global _WORKER_CACHE_CAP
    if capacity < 1:
        raise ValueError(f"cache capacity must be >= 1, got {capacity}")
    previous = _WORKER_CACHE_CAP
    _WORKER_CACHE_CAP = capacity
    _trim_worker_cache()
    return previous


def _trim_worker_cache() -> None:
    observer = _OBSERVER
    while len(_WORKER_CACHE) > _WORKER_CACHE_CAP:
        (token, frame_id), (generation, _frame) = \
            _WORKER_CACHE.popitem(last=False)
        if observer is not None:
            observer.cache_evicted(token, frame_id, generation)


def reset_worker_cache() -> None:
    """Pool-worker initializer: forget entries inherited over fork().

    Inherited mappings belong to the parent's address-space snapshot;
    they are dropped without closing (the arrays pinning them were
    forked too, and shared pages cost nothing until written).
    """
    _WORKER_CACHE.clear()


def worker_attach(handle: FrameHandle) -> Tuple[Frame, bool]:
    """The worker-resident frame for ``handle``; ``(frame, cache hit)``.

    Same token/frame id/generation: the cached frame (the segment is
    mapped exactly once per worker however many calls touch it).  A
    bumped generation drops the stale mapping and attaches the new
    segment.
    """
    key = (handle.token, handle.frame_id)
    cached = _WORKER_CACHE.get(key)
    observer = _OBSERVER
    if observer is not None:
        # Notified before the attach is attempted: a stale-generation
        # read must be observable even if the old segment is gone and
        # the attach below raises.
        observer.cache_attach(handle.token, handle.frame_id,
                              handle.generation,
                              cached[0] if cached is not None else None)
    if cached is not None:
        generation, frame = cached
        if generation == handle.generation:
            _WORKER_CACHE.move_to_end(key)
            return frame, True
        del _WORKER_CACHE[key]
    segment = _attach_segment(handle.segment_name)
    frame = read_frame(handle.fmt, segment.buf, writeable=False)
    _disarm(segment)
    _WORKER_CACHE[key] = (handle.generation, frame)
    _trim_worker_cache()
    return frame, False


def worker_cache_size() -> int:
    return len(_WORKER_CACHE)


def ship_result(frame: Frame) -> Optional[ResultHandle]:
    """Write a result frame into a fresh segment for the parent.

    The worker closes its mapping immediately (the name keeps the
    segment alive until the parent adopts and eventually unlinks it).
    ``None`` means shared memory failed here: return the frame by
    pickle instead.
    """
    if not SHARED_MEMORY_AVAILABLE:
        return None
    fmt = frame.format
    try:
        segment = _new_segment(frame_payload_bytes(fmt))
        write_frame(segment.buf, frame)
    except Exception:
        return None
    handle = ResultHandle(segment.name, fmt.name, fmt.width, fmt.height)
    observer = _OBSERVER
    if observer is not None:
        observer.segment_created(segment.name)
    try:
        segment.close()
    except Exception:
        pass
    return handle
