"""The host-side AddressEngine driver.

Models the PC software that owns the board: it packages AddressLib calls
into DMA programs, fields the completion interrupts, and hands results
back to the application.  Two execution strategies:

* **fast** (default): functional result via the vector executor plus the
  validated closed-form timing of
  :class:`~repro.perf.timing.EngineTimingModel` -- thousands of calls per
  second, used by the Table 3 workloads;
* **simulate**: the full cycle-level model of
  :class:`~repro.core.engine.AddressEngine` -- used by tests and the
  figure-level benches, where the microarchitectural behaviour matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.config import EngineConfig
from ..core.engine import AddressEngine, EngineRunResult
from ..image.frame import Frame
from ..perf.timing import EngineTimingModel


@dataclass
class DriverResult:
    """What one driver submission returns to the application."""

    #: The result image, or ``None`` for scalar-reduce calls.
    frame: Optional[Frame]
    #: The scalar result, or ``None`` for image-producing calls.
    scalar: Optional[int]
    #: Host-visible call latency (board time + driver overhead).
    call_seconds: float
    #: Board-side time only.
    board_seconds: float
    #: PCI payload words moved.
    pci_words: int
    #: Present only when the call was cycle-simulated.
    run: Optional[EngineRunResult] = None


@dataclass
class AddressEngineDriver:
    """Submits statically-configured calls to the (modelled) board."""

    timing: EngineTimingModel = field(default_factory=EngineTimingModel)
    #: Run every call through the cycle-level model instead of the
    #: closed-form timing (slow; for tests and microarchitecture benches).
    simulate: bool = False
    engine: AddressEngine = field(default_factory=AddressEngine)
    interrupts_serviced: int = 0
    calls_submitted: int = 0

    def submit(self, config: EngineConfig, frame_a: Frame,
               frame_b: Optional[Frame] = None,
               resident=None, onboard_copy_cycles: int = 0
               ) -> DriverResult:
        """Execute one AddressEngine call and wait for its interrupt.

        ``resident`` flags inputs already on the board (call chaining);
        ``onboard_copy_cycles`` charges a result-bank-to-input-bank move
        when the previous call's *result* is reused as an input.
        """
        self.calls_submitted += 1
        resident = list(resident or [False] * config.images_in)
        resident_count = sum(resident)
        pci_words = (self.timing.input_words_raw(
            config.fmt.pixels, config.images_in, resident_count)
            + self.timing.readback_words(config))
        host_overhead = self.timing.host_overhead_seconds_raw(
            config.fmt.strips, config.images_in, resident_count)
        if self.simulate:
            run = self.engine.run_call(config, frame_a, frame_b,
                                       resident=resident)
            # Interrupts: one per DMA job plus the completion interrupt.
            self.interrupts_serviced += len(run.pci.interrupts)
            board = (run.seconds
                     + onboard_copy_cycles / self.timing.clock_hz)
            return DriverResult(
                frame=run.frame, scalar=run.scalar,
                call_seconds=board + host_overhead,
                board_seconds=board,
                pci_words=pci_words, run=run)
        result = AddressEngine.run_functional(config, frame_a, frame_b)
        self.interrupts_serviced += self.timing.dma_jobs_raw(
            config.fmt.strips, config.images_in, resident_count) + 1
        frame: Optional[Frame]
        scalar: Optional[int]
        if isinstance(result, Frame):
            frame, scalar = result, None
        else:
            frame, scalar = None, int(result)
        board_cycles = (self.timing.call_cycles_raw(
            config.fmt.pixels, config.fmt.strips, config.images_in,
            config.produces_image, config.requires_full_frames,
            resident_count) + onboard_copy_cycles)
        board = board_cycles / self.timing.clock_hz
        return DriverResult(
            frame=frame, scalar=scalar,
            call_seconds=board + host_overhead,
            board_seconds=board,
            pci_words=pci_words)
