"""The host-side AddressEngine driver.

Models the PC software that owns the board: it packages AddressLib calls
into DMA programs, fields the completion interrupts, and hands results
back to the application.  Two execution strategies:

* **fast** (default): functional result via the vector executor plus the
  validated closed-form timing of
  :class:`~repro.perf.timing.EngineTimingModel` -- thousands of calls per
  second, used by the Table 3 workloads;
* **simulate**: the full cycle-level model of
  :class:`~repro.core.engine.AddressEngine` -- used by tests and the
  figure-level benches, where the microarchitectural behaviour matters.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..analysis.analyzer import analyze_config
from ..analysis.diagnostics import ProgramCheckError
from ..analysis.params import EngineParams
from ..core.config import EngineConfig
from ..core.engine import AddressEngine, EngineRunResult
from ..image.frame import Frame
from ..perf.timing import EngineTimingModel
from . import shm

if TYPE_CHECKING:
    from ..api import SubmitOptions


class FrameResidencyCache:
    """Tracks which frames are resident in the board's ZBT banks.

    One board call leaves its inputs in their input banks and its result
    in a result bank; a follow-up call that reuses one of those frames
    can skip the PCI upload (``resident`` flag) or pay a cheap on-board
    result-to-input copy instead of a host round trip.

    The cache key is the board layout (``images_in`` decides the bank
    map), the per-slot input frames, and the result frame.  Frames are
    held by *strong reference* and compared by identity: a frame object
    that is still alive is exactly the data in the banks, and holding
    the reference guarantees a recycled ``id()`` can never alias a
    garbage-collected predecessor.

    The strong references are bounded: :meth:`release` drops one frame
    the host has reclaimed, and with ``max_age`` set the cached state
    expires once it is ``max_age`` generations old (the application
    marks generation boundaries -- e.g. one per video frame -- with
    :meth:`new_generation`).  Expiry and release are counted in
    :attr:`evictions`.
    """

    def __init__(self, max_age: Optional[int] = None) -> None:
        self._layout_kind: Optional[int] = None
        self._inputs: Tuple[Optional[Frame], ...] = ()
        self._result: Optional[Frame] = None
        #: Generations the cached bank state survives (None: forever).
        self.max_age = max_age
        self._generation = 0
        self._recorded_at: Optional[int] = None
        #: Inputs found still resident in their input banks.
        self.hits = 0
        #: Inputs satisfied by an on-board result-to-input copy.
        self.result_reuses = 0
        #: Inputs that had to ship over the PCI bus.
        self.misses = 0
        #: Cached frames dropped by release or generation expiry.
        self.evictions = 0

    @property
    def generation(self) -> int:
        """The current generation number (bumped by the application)."""
        return self._generation

    @property
    def held_frames(self) -> int:
        """How many frames the cache keeps alive right now."""
        held = sum(1 for f in self._inputs if f is not None)
        return held + (1 if self._result is not None else 0)

    def plan(self, config: EngineConfig,
             frames: List[Frame]) -> Tuple[List[bool], int]:
        """Residency flags for ``frames`` plus the cycle cost of on-board
        result reuse.

        An input is resident only in the *same slot* of the *same
        layout*: the bank map differs between intra (strips alternate
        bank pairs) and inter (one pair per image), and between slots.
        Reusing the previous call's result costs a result-bank to
        input-bank move: the transmission units stream one pixel per
        cycle in each direction, two in flight.
        """
        self._expire_stale()
        flags: List[bool] = []
        copy_cycles = 0
        same_layout = self._layout_kind == config.images_in
        observer = shm.get_transport_observer()
        for slot, frame in enumerate(frames):
            if (same_layout and slot < len(self._inputs)
                    and self._inputs[slot] is frame):
                flags.append(True)
                self.hits += 1
                if observer is not None:
                    observer.cache_attach("driver", id(frame), 0, 0)
            elif self._result is frame:
                copy_cycles += -(-config.fmt.pixels // 2)
                flags.append(True)
                self.result_reuses += 1
                if observer is not None:
                    observer.cache_attach("driver", id(frame), 0, 0)
            else:
                flags.append(False)
                self.misses += 1
                if observer is not None:
                    observer.cache_attach("driver", id(frame), 0, None)
        return flags, copy_cycles

    def record_call(self, config: EngineConfig, frames: List[Frame],
                    result_frame: Optional[Frame]) -> None:
        """Remember what the call just left in the banks."""
        self._layout_kind = config.images_in
        self._inputs = tuple(frames)
        self._result = result_frame
        self._recorded_at = self._generation

    def contains(self, frame: Frame) -> bool:
        """Whether ``frame`` is in the banks right now (identity test;
        placement affinity scores boards with this, without the counter
        side effects of :meth:`plan`)."""
        if self.max_age is not None and self._recorded_at is not None:
            if self._generation - self._recorded_at >= self.max_age:
                return False
        if self._result is frame:
            return True
        return any(cached is frame for cached in self._inputs)

    def invalidate(self) -> None:
        """Forget the board state (e.g. after a reconfiguration)."""
        self._layout_kind = None
        self._inputs = ()
        self._result = None
        self._recorded_at = None

    # -- bounding the strong references --------------------------------------

    def new_generation(self) -> None:
        """Mark a generation boundary (e.g. one processed video frame);
        expiry is measured in these."""
        self._generation += 1

    def release(self, frame: Frame) -> None:
        """Drop one frame from the modelled banks: the host reclaimed
        its buffer, so treating it as resident would read stale banks.
        Slot positions of the remaining inputs are preserved."""
        dropped = 0
        if self._result is frame:
            self._result = None
            dropped += 1
        if any(f is frame for f in self._inputs):
            dropped += sum(1 for f in self._inputs if f is frame)
            self._inputs = tuple(None if f is frame else f
                                 for f in self._inputs)
        self.evictions += dropped
        if dropped:
            self._notify_evicted(frame)

    def _expire_stale(self) -> None:
        """Evict state older than ``max_age`` generations."""
        if (self.max_age is None or self._recorded_at is None
                or self._generation - self._recorded_at < self.max_age):
            return
        self.evictions += self.held_frames
        for cached in (*self._inputs, self._result):
            if cached is not None:
                self._notify_evicted(cached)
        self.invalidate()

    @staticmethod
    def _notify_evicted(frame: Frame) -> None:
        # The driver's banks carry no generation counter: the cache
        # compares frames by identity, so the sanitizer's residency
        # books key these events at a fixed generation 0 -- enough for
        # the RES002 evict-then-reship check, inert for RES001.
        observer = shm.get_transport_observer()
        if observer is not None:
            observer.cache_evicted("driver", id(frame), 0)


@dataclass(frozen=True)
class CallPrice:
    """The analytic (closed-form) cost of one AddressEngine call."""

    #: Board-side time (cycles at the PCI clock).
    board_seconds: float
    #: Host driver/interrupt overhead on top of the board time.
    host_overhead_seconds: float
    #: PCI payload words moved.
    pci_words: int
    #: Interrupts the host services (one per DMA job + completion).
    interrupts: int

    @property
    def call_seconds(self) -> float:
        """Host-visible call latency."""
        return self.board_seconds + self.host_overhead_seconds


@dataclass
class DriverResult:
    """What one driver submission returns to the application."""

    #: The result image, or ``None`` for scalar-reduce calls.
    frame: Optional[Frame]
    #: The scalar result, or ``None`` for image-producing calls.
    scalar: Optional[int]
    #: Host-visible call latency (board time + driver overhead).
    call_seconds: float
    #: Board-side time only.
    board_seconds: float
    #: PCI payload words moved.
    pci_words: int
    #: Present only when the call was cycle-simulated.
    run: Optional[EngineRunResult] = None


@dataclass
class AddressEngineDriver:
    """Submits statically-configured calls to the (modelled) board."""

    timing: EngineTimingModel = field(default_factory=EngineTimingModel)
    #: Run every call through the cycle-level model instead of the
    #: closed-form timing (slow; for tests and microarchitecture benches).
    simulate: bool = False
    engine: AddressEngine = field(default_factory=AddressEngine)
    #: Run the AddressCheck static analyzer before dispatching each call
    #: and refuse (``ProgramCheckError``) anything it flags as an error:
    #: rejects-before-execute instead of a mid-run ``EngineDeadlock``.
    preflight: bool = False
    interrupts_serviced: int = 0
    calls_submitted: int = 0
    calls_rejected: int = 0
    #: Calls a service front end shed before they reached the board
    #: (admission control, expired deadlines); they cost the driver no
    #: interrupts, but the books must still show them.
    calls_shed: int = 0
    #: Submitted calls tallied per tenant label (only submissions that
    #: carried a tenant through ``options`` appear here).
    calls_by_tenant: Dict[str, int] = field(default_factory=dict)

    def check(self, config: EngineConfig) -> None:
        """Pre-flight one call; raise :class:`ProgramCheckError` on
        errors (capacity overflows, guaranteed deadlocks, ...).

        Residency flags are *not* part of the single-call check: the
        driver's :class:`FrameResidencyCache` derives them from the
        previous call's actual bank state, which a one-call program
        cannot see.  Chain-level residency claims are validated by
        :func:`repro.analysis.analyze_program` over the full program.
        """
        params = EngineParams.from_engine(self.engine)
        report = analyze_config(config, params)
        if not report.ok:
            self.calls_rejected += 1
            raise ProgramCheckError(report)

    def price_call(self, config: EngineConfig, resident_count: int = 0,
                   onboard_copy_cycles: int = 0) -> CallPrice:
        """Closed-form cost of one call, without executing it.

        The call scheduler uses this to price batched calls it has
        already executed in worker processes; :meth:`submit` uses the
        same arithmetic so priced and submitted calls account alike.
        """
        pci_words = (self.timing.input_words_raw(
            config.fmt.pixels, config.images_in, resident_count)
            + self.timing.readback_words(config))
        host_overhead = self.timing.host_overhead_seconds_raw(
            config.fmt.strips, config.images_in, resident_count)
        board_cycles = (self.timing.call_cycles_raw(
            config.fmt.pixels, config.fmt.strips, config.images_in,
            config.produces_image, config.requires_full_frames,
            resident_count) + onboard_copy_cycles)
        interrupts = self.timing.dma_jobs_raw(
            config.fmt.strips, config.images_in, resident_count) + 1
        return CallPrice(
            board_seconds=board_cycles / self.timing.clock_hz,
            host_overhead_seconds=host_overhead,
            pci_words=pci_words, interrupts=interrupts)

    def account_scheduled(self, price: CallPrice) -> None:
        """Book one scheduler-executed call into the driver counters."""
        self.calls_submitted += 1
        self.interrupts_serviced += price.interrupts

    def account_shed(self, calls: int = 1) -> None:
        """Book calls a service layer dropped before submission.

        The service front end (:mod:`repro.service`) sheds load at
        admission time and expires requests whose deadline has passed;
        neither ever reaches :meth:`submit`, so this is the only place
        they enter the driver's books.
        """
        if calls < 0:
            raise ValueError(f"cannot shed {calls} calls")
        self.calls_shed += calls

    def submit(self, config: EngineConfig, frame_a: Frame,
               frame_b: Optional[Frame] = None,
               *legacy: object,
               options: Optional["SubmitOptions"] = None,
               resident: Optional[Sequence[bool]] = None,
               onboard_copy_cycles: int = 0
               ) -> DriverResult:
        """Execute one AddressEngine call and wait for its interrupt.

        ``resident`` flags inputs already on the board (call chaining);
        ``onboard_copy_cycles`` charges a result-bank-to-input-bank move
        when the previous call's *result* is reused as an input.  Both
        are keyword-only; ``options`` (a
        :class:`~repro.api.SubmitOptions`) contributes the tenant label
        the per-tenant books tally this submission under.  The old
        positional ``resident``/``onboard_copy_cycles`` still work but
        warn with :class:`DeprecationWarning`.
        """
        if legacy:
            if (len(legacy) > 2 or resident is not None
                    or onboard_copy_cycles):
                raise TypeError(
                    "AddressEngineDriver.submit takes resident/"
                    "onboard_copy_cycles keyword-only")
            warnings.warn(
                "positional resident/onboard_copy_cycles to "
                "AddressEngineDriver.submit are deprecated; pass them "
                "as keywords",
                DeprecationWarning, stacklevel=2)
            legacy_resident = legacy[0]
            assert legacy_resident is None or isinstance(
                legacy_resident, (list, tuple))
            resident = legacy_resident
            if len(legacy) == 2:
                legacy_copy = legacy[1]
                assert isinstance(legacy_copy, int)
                onboard_copy_cycles = legacy_copy
        tenant = getattr(options, "tenant", None)
        if tenant is not None:
            self.calls_by_tenant[tenant] = (
                self.calls_by_tenant.get(tenant, 0) + 1)
        if self.preflight:
            self.check(config)
        self.calls_submitted += 1
        resident = list(resident or [False] * config.images_in)
        resident_count = sum(resident)
        price = self.price_call(config, resident_count,
                                onboard_copy_cycles)
        if self.simulate:
            run = self.engine.run_call(config, frame_a, frame_b,
                                       resident=resident)
            # Interrupts: one per DMA job plus the completion interrupt.
            self.interrupts_serviced += len(run.pci.interrupts)
            board = (run.seconds
                     + onboard_copy_cycles / self.timing.clock_hz)
            return DriverResult(
                frame=run.frame, scalar=run.scalar,
                call_seconds=board + price.host_overhead_seconds,
                board_seconds=board,
                pci_words=price.pci_words, run=run)
        result = AddressEngine.run_functional(config, frame_a, frame_b)
        self.interrupts_serviced += price.interrupts
        frame: Optional[Frame]
        scalar: Optional[int]
        if isinstance(result, Frame):
            frame, scalar = result, None
        else:
            frame, scalar = None, int(result)
        return DriverResult(
            frame=frame, scalar=scalar,
            call_seconds=price.call_seconds,
            board_seconds=price.board_seconds,
            pci_words=price.pci_words)
