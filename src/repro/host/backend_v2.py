"""The v2 backend: inter + intra + hardware segment addressing.

Extends :class:`~repro.host.backend.EngineBackend` with the modelled
segment unit of :mod:`repro.core.segment_unit` -- the paper's announced
next step.  Segment-indexed addressing stays on the host (the side
tables are algorithm-defined), as does any call whose criterion or
connectivity the unit cannot express.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..addresslib.addressing import AddressingMode
from ..addresslib.library import CallRecord
from ..addresslib.ops import ChannelSet
from ..addresslib.segment import LumaDeltaCriterion, SegmentResult
from ..core.segment_unit import SegmentCallConfig, SegmentUnit
from ..image.frame import Frame
from .backend import EngineBackend
from .driver import AddressEngineDriver


class EngineBackendV2(EngineBackend):
    """v1 inter/intra offload plus the v2 segment unit."""

    name = "address_engine_v2"

    def __init__(self, driver: Optional[AddressEngineDriver] = None,
                 special_inter_ops: Tuple[str, ...] = (),
                 segment_unit: Optional[SegmentUnit] = None) -> None:
        super().__init__(driver, special_inter_ops)
        self.segment_unit = segment_unit or SegmentUnit()
        #: Whether the frame of the previous call is still resident in
        #: the ZBT (enables the call-chaining optimisation).
        self._resident_frame_id: Optional[int] = None

    def supports(self, mode: AddressingMode) -> bool:
        return mode is not AddressingMode.SEGMENT_INDEXED

    def segment(self, frame: Frame, seeds: Sequence[Tuple[int, int]],
                criterion: LumaDeltaCriterion,
                max_pixels: Optional[int] = None
                ) -> Tuple[SegmentResult, CallRecord]:
        """Execute a segment call on the modelled hardware unit."""
        resident = self._resident_frame_id == id(frame)
        config = SegmentCallConfig(fmt=frame.format,
                                   luma_delta=criterion.max_delta,
                                   frame_resident=resident)
        run = self.segment_unit.run_call(config, frame, seeds,
                                         max_pixels=max_pixels)
        self._resident_frame_id = id(frame)
        result = SegmentResult(labels=run.labels, distance=run.distance,
                               order=[], statistics=None,
                               processed_count=run.pixels_processed)
        seconds = (run.seconds(self.segment_unit.clock_hz)
                   + self.driver.timing.host_overhead_seconds_raw(
                       0 if resident else frame.format.strips, 1))
        record = CallRecord(
            mode=AddressingMode.SEGMENT, op_name="segment_expand_v2",
            channels=ChannelSet.Y, format_name=frame.format.name,
            pixels=run.pixels_processed, profile=None,
            extra={
                "call_seconds": seconds,
                "board_seconds": run.seconds(self.segment_unit.clock_hz),
                "expansion_cycles": float(run.expansion_cycles),
                "queue_peak": float(run.queue_peak),
                "frame_resident": float(resident),
            })
        return result, record
