"""Host-side runtime: driver, engine backend, evaluation platforms."""

from ..analysis.diagnostics import ProgramCheckError
from .backend import EngineBackend
from .backend_v2 import EngineBackendV2
from .driver import (AddressEngineDriver, CallPrice, DriverResult,
                     FrameResidencyCache)
from .runtime import (RunReport, Runtime, engine_platform,
                      software_platform)
from .scheduler import (BatchReport, CallScheduler, ProgramOutcome)

__all__ = [
    "AddressEngineDriver",
    "BatchReport",
    "CallPrice",
    "CallScheduler",
    "DriverResult",
    "EngineBackend",
    "FrameResidencyCache",
    "EngineBackendV2",
    "ProgramCheckError",
    "ProgramOutcome",
    "RunReport",
    "Runtime",
    "engine_platform",
    "software_platform",
]
