"""Host-side runtime: driver, engine backend, evaluation platforms."""

from ..analysis.diagnostics import ProgramCheckError
from .backend import EngineBackend
from .backend_v2 import EngineBackendV2
from .driver import (AddressEngineDriver, CallPrice, DriverResult,
                     FrameResidencyCache)
from .runtime import (RunReport, Runtime, engine_platform,
                      software_platform)
from .scheduler import (BatchReport, CallScheduler, ProgramOutcome)
from .shm import (SHARED_MEMORY_AVAILABLE, FrameHandle, PlaneStore,
                  ResultHandle, frame_payload_bytes)

__all__ = [
    "AddressEngineDriver",
    "BatchReport",
    "CallPrice",
    "CallScheduler",
    "DriverResult",
    "EngineBackend",
    "FrameHandle",
    "FrameResidencyCache",
    "EngineBackendV2",
    "PlaneStore",
    "ProgramCheckError",
    "ProgramOutcome",
    "ResultHandle",
    "SHARED_MEMORY_AVAILABLE",
    "frame_payload_bytes",
    "RunReport",
    "Runtime",
    "engine_platform",
    "software_platform",
]
