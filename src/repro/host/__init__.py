"""Host-side runtime: driver, engine backend, evaluation platforms."""

from ..analysis.diagnostics import ProgramCheckError
from .backend import EngineBackend
from .backend_v2 import EngineBackendV2
from .driver import (AddressEngineDriver, DriverResult,
                     FrameResidencyCache)
from .runtime import (RunReport, Runtime, engine_platform,
                      software_platform)

__all__ = [
    "AddressEngineDriver",
    "DriverResult",
    "EngineBackend",
    "FrameResidencyCache",
    "EngineBackendV2",
    "ProgramCheckError",
    "RunReport",
    "Runtime",
    "engine_platform",
    "software_platform",
]
