"""The evaluation runtime: run one workload on one platform, keep books.

Table 3's experiment shape: the *same* application (MPEG-7 GME) runs
twice -- once all-software on the Pentium M, once with AddressLib calls
offloaded to the board on a Pentium 4 host -- and the wall clocks are
compared.  :class:`Runtime` reproduces that: it owns an
:class:`~repro.addresslib.library.AddressLib` over the platform's
backend, charges each call with the platform's cost rule, and lets the
workload charge its high-level (host-resident) work separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..addresslib.library import AddressLib, Backend, SoftwareBackend
from ..addresslib.profiling import OpProfile
from ..core.pci import PCI_CLOCK_HZ
from ..perf.cpu_model import CpuModel, PENTIUM_4_3000, PENTIUM_M_1600
from ..perf.report import base_report_dict
from .backend import EngineBackend


@dataclass
class RunReport:
    """The books of one workload execution on one platform."""

    platform: str
    intra_calls: int
    inter_calls: int
    segment_calls: int
    call_seconds: float
    high_level_seconds: float
    #: Residency-cache counters (all zero for software platforms).
    residency_hits: int = 0
    residency_misses: int = 0
    residency_result_reuses: int = 0
    residency_evictions: int = 0

    @property
    def total_calls(self) -> int:
        return self.intra_calls + self.inter_calls + self.segment_calls

    @property
    def total_seconds(self) -> float:
        return self.call_seconds + self.high_level_seconds

    def to_dict(self, clock_hz: float = PCI_CLOCK_HZ) -> Dict[str, object]:
        """Schema-conforming books (see ``perf.report``)."""
        return base_report_dict(
            "run",
            calls=self.total_calls,
            cycles=self.call_seconds * clock_hz,
            cache={"hits": self.residency_hits,
                   "misses": self.residency_misses,
                   "result_reuses": self.residency_result_reuses,
                   "evictions": self.residency_evictions},
            shed=0,
            platform=self.platform,
            intra_calls=self.intra_calls,
            inter_calls=self.inter_calls,
            segment_calls=self.segment_calls,
            call_seconds=self.call_seconds,
            high_level_seconds=self.high_level_seconds,
            total_seconds=self.total_seconds,
        )


class Runtime:
    """One platform: a backend, a host CPU, and the accounting rules."""

    def __init__(self, backend: Backend, host_cpu: CpuModel,
                 platform_name: Optional[str] = None) -> None:
        self.backend = backend
        self.host_cpu = host_cpu
        self.platform_name = platform_name or (
            f"{backend.name} on {host_cpu.name}")
        self.lib = AddressLib(backend)
        self._high_level_seconds = 0.0

    # -- high-level (host-resident) work --------------------------------------

    def charge_high_level(self, instructions: float,
                          mean_cpi: float = 1.5) -> None:
        """Charge host-side control work (decode, model fitting, I/O)."""
        self._high_level_seconds += self.host_cpu.seconds_for_instructions(
            instructions, mean_cpi)

    def charge_high_level_profile(self, profile: OpProfile) -> None:
        """Charge host-side work described by an instruction profile."""
        self._high_level_seconds += self.host_cpu.seconds(profile)

    # -- accounting -----------------------------------------------------------

    def _call_seconds(self) -> float:
        total = 0.0
        for record in self.lib.log.records:
            if "call_seconds" in record.extra:
                # Engine-backed call: the driver measured it.
                total += record.extra["call_seconds"]
            elif record.profile is not None:
                # Software call: time its instruction profile on this host.
                total += self.host_cpu.seconds(record.profile)
        return total

    def report(self) -> RunReport:
        """The books so far."""
        from ..addresslib.addressing import AddressingMode
        log = self.lib.log
        segment_calls = (log.count(AddressingMode.SEGMENT)
                         + log.count(AddressingMode.SEGMENT_INDEXED))
        residency = getattr(self.backend, "residency", None)
        return RunReport(
            platform=self.platform_name,
            intra_calls=log.intra_calls,
            inter_calls=log.inter_calls,
            segment_calls=segment_calls,
            call_seconds=self._call_seconds(),
            high_level_seconds=self._high_level_seconds,
            residency_hits=residency.hits if residency else 0,
            residency_misses=residency.misses if residency else 0,
            residency_result_reuses=(
                residency.result_reuses if residency else 0),
            residency_evictions=residency.evictions if residency else 0)

    def reset(self) -> None:
        self.lib.log.clear()
        self._high_level_seconds = 0.0


def software_platform(cpu: CpuModel = PENTIUM_M_1600,
                      backend: Optional[SoftwareBackend] = None) -> Runtime:
    """The Table 3 software baseline: everything on the Pentium M."""
    return Runtime(backend or SoftwareBackend(), cpu,
                   platform_name=f"software ({cpu.name})")


def engine_platform(cpu: CpuModel = PENTIUM_4_3000,
                    backend: Optional[EngineBackend] = None) -> Runtime:
    """The Table 3 coprocessor platform: AddressEngine behind a P4 host."""
    return Runtime(backend or EngineBackend(), cpu,
                   platform_name=f"AddressEngine ({cpu.name} host)")
