"""The pipelined call scheduler: multi-worker sharding of call batches.

The paper's engine overlaps DMA and processing *within* one call via the
block_A/block_B double buffer (section 4.1); the natural host-side dual
is overlapping *whole calls* that do not depend on each other.  This
module supplies that second axis:

* :class:`CallScheduler` executes batches of independent AddressLib
  calls concurrently across a pool of engine worker processes, and
  executes whole :class:`~repro.addresslib.program.CallProgram` traces
  wavefront by wavefront using the dependency edges derived by
  :func:`~repro.addresslib.program.dependency_edges`;
* every batch is also *priced* under both timing models -- the serial
  (sum) model and the double-buffered overlap model of
  :class:`~repro.perf.timing.EngineTimingModel` -- list-scheduled onto
  ``max_workers`` virtual engines, so a batch reports the modelled
  makespan speedup a multi-board deployment would see, independent of
  how many CPUs this host happens to have.

Bit-exactness is by construction: workers run the *same*
:class:`~repro.addresslib.executor.VectorExecutor` the serial path
runs, and outcomes are collected by submission index, so results are
identical to serial execution regardless of completion order.

Ops carry lambdas and do not pickle, so the parent never ships an op
object: it ships the op *name* and the worker re-resolves it from the
registries (:data:`~repro.addresslib.ops.INTER_OPS`,
:data:`~repro.addresslib.ops.INTRA_OPS`, the kernel book).  A call
whose op is not *identical* to its registry entry (e.g. a parameterized
``threshold_op``) is executed inline in the parent instead -- never
guessed from a name collision.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..addresslib.addressing import AddressingMode
from ..addresslib.executor import VectorExecutor
from ..addresslib.kernels import KERNEL_FACTORIES, kernel_by_name
from ..addresslib.library import BatchCall, BatchExecutor, BatchOutcome
from ..addresslib.ops import (ChannelSet, InterOp, INTER_OPS, INTRA_OPS,
                              IntraOp)
from ..addresslib.program import (CallProgram, ProgramStep,
                                  dependency_levels)
from ..core.pci import PCI_CLOCK_HZ
from ..image.frame import Frame
from ..perf.report import base_report_dict
from ..perf.timing import EngineTimingModel, list_scheduled_makespan

_KERNEL_PREFIX = "kernel_"


def _execute_remote(mode_value: str, op_name: str, reduce_to_scalar: bool,
                    channels: ChannelSet, frames: Tuple[Frame, ...]
                    ) -> Tuple[str, Union[Frame, int]]:
    """Worker-side execution of one call.

    Runs in an engine worker process: the op arrives by *name* (ops hold
    lambdas and do not pickle) and is re-resolved from the registries,
    then executed with the same :class:`VectorExecutor` the serial path
    uses.
    """
    if mode_value == AddressingMode.INTER.value:
        inter_op = INTER_OPS[op_name]
        if reduce_to_scalar:
            return "scalar", VectorExecutor.inter_reduce(
                inter_op, frames[0], frames[1], channels)
        return "frame", VectorExecutor.inter(
            inter_op, frames[0], frames[1], channels)
    if op_name in INTRA_OPS:
        intra_op = INTRA_OPS[op_name]
    else:
        intra_op = kernel_by_name(op_name[len(_KERNEL_PREFIX):])
    return "frame", VectorExecutor.intra(intra_op, frames[0], channels)


@dataclass
class BatchReport:
    """The books of one (or the cumulative run of) scheduled batches."""

    calls: int = 0
    waves: int = 0
    workers: int = 1
    #: Calls executed in worker processes.
    pool_calls: int = 0
    #: Calls executed inline (unresolvable op, or a broken pool).
    inline_calls: int = 0
    #: Modelled time of the batch on one engine, no overlap (sum model).
    modeled_serial_seconds: float = 0.0
    #: Modelled makespan across ``workers`` engines with the
    #: block_A/block_B overlap model per call.
    modeled_pipelined_seconds: float = 0.0

    @property
    def modeled_speedup(self) -> float:
        """Serial-over-pipelined; 1.0 for an empty report."""
        if self.modeled_pipelined_seconds <= 0.0:
            return 1.0
        return self.modeled_serial_seconds / self.modeled_pipelined_seconds

    def to_dict(self, clock_hz: float = PCI_CLOCK_HZ) -> Dict[str, object]:
        """Schema-conforming books (see ``perf.report``)."""
        return base_report_dict(
            "batch",
            calls=self.calls,
            cycles=self.modeled_pipelined_seconds * clock_hz,
            shed=0,
            waves=self.waves,
            workers=self.workers,
            pool_calls=self.pool_calls,
            inline_calls=self.inline_calls,
            modeled_serial_seconds=self.modeled_serial_seconds,
            modeled_pipelined_seconds=self.modeled_pipelined_seconds,
            modeled_speedup=self.modeled_speedup,
        )


@dataclass
class ProgramOutcome:
    """Everything a scheduled program run produced."""

    #: Every named plane: the program inputs plus each step's output.
    planes: Dict[str, Frame] = field(default_factory=dict)
    #: Scalar results of reduce steps, keyed by step index.
    scalars: Dict[int, int] = field(default_factory=dict)

    def results(self, program: CallProgram) -> Tuple[Frame, ...]:
        """The program's declared result planes, in order."""
        return tuple(self.planes[name] for name in program.results)


class CallScheduler(BatchExecutor):
    """Shards independent AddressLib calls across engine workers.

    The pool is created lazily on the first batched call and survives
    across batches (worker warm-up is paid once).  Any pool failure --
    a worker that cannot start, dies, or cannot unpickle -- flips the
    scheduler into inline mode for the rest of its life: results are
    then computed serially in the parent, still bit-exact, never lost.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 timing: Optional[EngineTimingModel] = None,
                 special_inter_ops: Sequence[str] = ()) -> None:
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.timing = timing or EngineTimingModel()
        #: Inter ops priced with ``requires_full_frames`` (the modelled
        #: overlap gives them no credit; see section 4.1).
        self.special_inter_ops = frozenset(special_inter_ops)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        #: Books of the most recent batch.
        self.last_report: Optional[BatchReport] = None
        #: Cumulative books across every batch this scheduler ran.
        self.total = BatchReport(workers=self.max_workers)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CallScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool_broken or self.max_workers < 2:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers)
            except Exception:
                self._pool_broken = True
                return None
        return self._pool

    # -- op shipping ----------------------------------------------------------

    @staticmethod
    def _op_token(call: BatchCall) -> Optional[str]:
        """The name a worker can re-resolve to *exactly* ``call.op``.

        Identity (not name) is the test: a custom op that happens to
        share a registry name must not silently run the registry's code
        in a worker.  ``None`` means "execute inline".
        """
        name = call.op.name
        if call.mode is AddressingMode.INTER:
            return name if INTER_OPS.get(name) is call.op else None
        if INTRA_OPS.get(name) is call.op:
            return name
        if name.startswith(_KERNEL_PREFIX):
            base = name[len(_KERNEL_PREFIX):]
            if base in KERNEL_FACTORIES and kernel_by_name(base) is call.op:
                return name
        return None

    @staticmethod
    def _execute_inline(call: BatchCall) -> BatchOutcome:
        if call.mode is AddressingMode.INTER:
            assert isinstance(call.op, InterOp)
            if call.reduce_to_scalar:
                return BatchOutcome(scalar=VectorExecutor.inter_reduce(
                    call.op, call.frames[0], call.frames[1],
                    call.channels))
            return BatchOutcome(frame=VectorExecutor.inter(
                call.op, call.frames[0], call.frames[1], call.channels))
        assert isinstance(call.op, IntraOp)
        return BatchOutcome(frame=VectorExecutor.intra(
            call.op, call.frames[0], call.channels))

    @staticmethod
    def _outcome(kind: str, value: Union[Frame, int]) -> BatchOutcome:
        if kind == "scalar":
            assert isinstance(value, int)
            return BatchOutcome(scalar=value)
        assert isinstance(value, Frame)
        return BatchOutcome(frame=value)

    # -- modelled timing ------------------------------------------------------

    def _call_costs(self, call: BatchCall) -> Tuple[float, float]:
        """(serial-model, overlap-model) seconds of one call.

        Delegates to the stack's one pricing definition
        (:func:`repro.pool.pricing.call_cost_seconds`); imported lazily
        because the pool package itself builds on this module.
        """
        from ..pool.pricing import call_cost_seconds
        return call_cost_seconds(call, self.timing,
                                 self.special_inter_ops)

    def _modeled_wave(self, calls: Sequence[BatchCall]
                      ) -> Tuple[float, float]:
        """Price one wave: serial sum vs the list-scheduled makespan of
        per-call overlap-model costs across ``max_workers`` engines."""
        serial = 0.0
        costs: List[float] = []
        for call in calls:
            call_serial, call_overlapped = self._call_costs(call)
            serial += call_serial
            costs.append(call_overlapped)
        return serial, list_scheduled_makespan(costs, self.max_workers)

    # -- batch execution ------------------------------------------------------

    def compute_batch(self,
                      calls: Sequence[BatchCall]) -> List[BatchOutcome]:
        """Execute one wave of independent calls; outcomes in order."""
        calls = list(calls)
        outcomes: List[Optional[BatchOutcome]] = [None] * len(calls)
        report = BatchReport(calls=len(calls), waves=1,
                             workers=self.max_workers)
        pending: List[Tuple[int, Future]] = []
        pool = self._ensure_pool() if len(calls) > 1 else None
        for index, call in enumerate(calls):
            token = self._op_token(call) if pool is not None else None
            if token is None or self._pool_broken:
                outcomes[index] = self._execute_inline(call)
                report.inline_calls += 1
                continue
            try:
                assert pool is not None
                future = pool.submit(
                    _execute_remote, call.mode.value, token,
                    call.reduce_to_scalar, call.channels, call.frames)
            except Exception:
                self._pool_broken = True
                outcomes[index] = self._execute_inline(call)
                report.inline_calls += 1
                continue
            pending.append((index, future))
        for index, future in pending:
            try:
                kind, value = future.result()
                outcomes[index] = self._outcome(kind, value)
                report.pool_calls += 1
            except Exception:
                # Worker died or the payload would not round-trip:
                # recompute inline, flag the pool, keep the batch whole.
                self._pool_broken = True
                outcomes[index] = self._execute_inline(calls[index])
                report.inline_calls += 1
        serial, pipelined = self._modeled_wave(calls)
        report.modeled_serial_seconds = serial
        report.modeled_pipelined_seconds = pipelined
        self._account(report)
        assert all(outcome is not None for outcome in outcomes)
        return [outcome for outcome in outcomes if outcome is not None]

    def _account(self, report: BatchReport) -> None:
        self.last_report = report
        self.total.calls += report.calls
        self.total.waves += report.waves
        self.total.pool_calls += report.pool_calls
        self.total.inline_calls += report.inline_calls
        self.total.modeled_serial_seconds += report.modeled_serial_seconds
        self.total.modeled_pipelined_seconds += (
            report.modeled_pipelined_seconds)

    # -- whole-program execution ----------------------------------------------

    @staticmethod
    def _step_call(step: ProgramStep,
                   planes: Dict[str, Frame]) -> BatchCall:
        try:
            frames = tuple(planes[name] for name in step.inputs)
        except KeyError as missing:
            raise ValueError(
                f"program step {step.index} reads undefined plane "
                f"{missing.args[0]!r}") from None
        return BatchCall(mode=step.mode, op=step.op, frames=frames,
                         channels=step.channels,
                         reduce_to_scalar=step.reduce_to_scalar)

    def run_program(self, program: CallProgram,
                    inputs: Sequence[Frame]) -> ProgramOutcome:
        """Execute a whole call program, wavefront by wavefront.

        Steps inside one dependency level are mutually independent (the
        RAW/WAW/WAR edges of
        :func:`~repro.addresslib.program.dependency_edges` all cross
        levels), so each level is one :meth:`compute_batch` wave.
        Results are bit-exact with executing the steps in program order.
        """
        if len(inputs) != len(program.inputs):
            raise ValueError(
                f"program {program.name!r} takes {len(program.inputs)} "
                f"inputs, got {len(inputs)}")
        outcome = ProgramOutcome(
            planes=dict(zip(program.inputs, inputs)))
        for level in dependency_levels(program):
            steps = [program.steps[index] for index in level]
            batch = [self._step_call(step, outcome.planes)
                     for step in steps]
            results = self.compute_batch(batch)
            for step, result in zip(steps, results):
                if step.reduce_to_scalar:
                    assert result.scalar is not None
                    outcome.scalars[step.index] = result.scalar
                else:
                    assert result.frame is not None
                    if step.output is not None:
                        outcome.planes[step.output] = result.frame
        return outcome
