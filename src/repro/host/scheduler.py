"""The pipelined call scheduler: multi-worker sharding of call batches.

The paper's engine overlaps DMA and processing *within* one call via the
block_A/block_B double buffer (section 4.1); the natural host-side dual
is overlapping *whole calls* that do not depend on each other.  This
module supplies that second axis:

* :class:`CallScheduler` executes batches of independent AddressLib
  calls concurrently across a pool of engine worker processes, and
  executes whole :class:`~repro.addresslib.program.CallProgram` traces
  wavefront by wavefront using the dependency edges derived by
  :func:`~repro.addresslib.program.dependency_edges`;
* frames move to workers *zero-copy and at most once*: each distinct
  input frame is registered in a shared-memory
  :class:`~repro.host.shm.PlaneStore` and shipped as a small handle,
  workers keep attached segments in a resident cache across waves, and
  a wave is dispatched as one grouped submission per worker (one round
  trip per worker per wave, not one future per call);
* a cost-model-driven *inline bypass* keeps cheap calls in the parent:
  when the modeled compute saving of shipping a call (its
  :class:`~repro.addresslib.executor.SoftwareCostModel` estimate times
  the fraction other workers absorb) is below its modeled shipping
  cost (:class:`~repro.perf.timing.TransportCostModel`, with the round
  trip measured live), the call executes inline -- small frames never
  pay IPC at all, and a single-CPU host degrades to serial speed
  instead of a slowdown;
* every batch is also *priced* under both timing models -- the serial
  (sum) model and the double-buffered overlap model of
  :class:`~repro.perf.timing.EngineTimingModel` -- list-scheduled onto
  ``max_workers`` virtual engines, so a batch reports the modelled
  makespan speedup a multi-board deployment would see, independent of
  how many CPUs this host happens to have.

Bit-exactness is by construction: workers run the *same*
:class:`~repro.addresslib.executor.VectorExecutor` the serial path
runs, and outcomes are collected by submission index, so results are
identical to serial execution whatever the transport (shared memory,
pickle fallback, inline bypass, or inline recovery after a worker
death).

Ops carry lambdas and do not pickle, so the parent never ships an op
object: it ships the op *name* and the worker re-resolves it from the
registries (:data:`~repro.addresslib.ops.INTER_OPS`,
:data:`~repro.addresslib.ops.INTRA_OPS`, the kernel book).  A call
whose op is not *identical* to its registry entry (e.g. a parameterized
``threshold_op``) is executed inline in the parent instead -- never
guessed from a name collision.
"""

from __future__ import annotations

import os
import time
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence, Set,
                    Tuple, Union)

if TYPE_CHECKING:
    from ..analysis.diagnostics import Diagnostic

from ..addresslib.addressing import AddressingMode
from ..addresslib.executor import SoftwareCostModel, VectorExecutor
from ..addresslib.kernels import KERNEL_FACTORIES, kernel_by_name
from ..addresslib.library import BatchCall, BatchExecutor, BatchOutcome
from ..addresslib.ops import (ChannelSet, InterOp, INTER_OPS, INTRA_OPS,
                              IntraOp)
from ..addresslib.program import (CallProgram, ProgramStep,
                                  dependency_levels)
from ..core.pci import PCI_CLOCK_HZ
from ..image.frame import Frame
from ..perf.report import base_report_dict
from ..perf.timing import (EngineTimingModel, TransportCostModel,
                           list_scheduled_makespan)
from . import shm

_KERNEL_PREFIX = "kernel_"

#: One call as shipped to a worker: mode, op token, reduce flag,
#: channel set, and per-frame transport specs (``("shm", FrameHandle)``
#: or ``("pickle", Frame)``).
_Job = Tuple[str, str, bool, ChannelSet, Tuple[Tuple[str, object], ...]]


def _resolve_op(mode_value: str, op_name: str) -> Union[InterOp, IntraOp]:
    """Re-resolve a shipped op token against the worker's registries."""
    if mode_value == AddressingMode.INTER.value:
        return INTER_OPS[op_name]
    if op_name in INTRA_OPS:
        return INTRA_OPS[op_name]
    return kernel_by_name(op_name[len(_KERNEL_PREFIX):])


def _execute_call(mode_value: str, op_name: str, reduce_to_scalar: bool,
                  channels: ChannelSet, frames: Tuple[Frame, ...]
                  ) -> Tuple[str, Union[Frame, int]]:
    """Execute one resolved call with the shared vector executor."""
    op = _resolve_op(mode_value, op_name)
    if mode_value == AddressingMode.INTER.value:
        assert isinstance(op, InterOp)
        if reduce_to_scalar:
            return "scalar", VectorExecutor.inter_reduce(
                op, frames[0], frames[1], channels)
        return "frame", VectorExecutor.inter(
            op, frames[0], frames[1], channels)
    assert isinstance(op, IntraOp)
    return "frame", VectorExecutor.intra(op, frames[0], channels)


def _noop() -> bool:
    """Round-trip probe: measures the pool's fixed submission cost."""
    return True


#: Per-wave worker options: (ship results via shm, sanitize domains).
#: Bundled into one tuple so a wave submission stays one function and
#: two positional arguments however the options grow.
_WaveOptions = Tuple[bool, Tuple[str, ...]]


def _worker_init(sanitize_domains: Tuple[str, ...] = ()) -> None:
    """Pool-worker initializer: fork hygiene plus optional sanitizing.

    Drops worker-cache entries and any transport observer inherited
    over ``fork()`` (both belong to the parent process), then installs
    a fresh worker-side sanitizer when the scheduler runs sanitized --
    its findings ship back with each wave's stats.
    """
    shm.reset_worker_cache()
    shm.set_transport_observer(None)
    if sanitize_domains:
        try:
            from ..analysis import sanitize as _sanitize
            _sanitize.reset_for_worker()
            _sanitize.install_sanitizer(sanitize_domains)
        except Exception:  # pragma: no cover - sanitizing is advisory
            pass


def _execute_wave(jobs: Sequence[_Job], wave_options: _WaveOptions
                  ) -> Tuple[List[Tuple[str, object]], Dict[str, object]]:
    """Worker-side execution of one worker's share of a wave.

    Runs in an engine worker process.  Input frames arrive as
    shared-memory handles (attached through the worker-resident cache)
    or as pickled frames; result frames leave as shared-memory handles
    when possible, falling back to pickling them.  Returns the per-call
    results in job order plus the cache counters (and, when sanitized,
    the worker's drained findings) of this trip.
    """
    ship_results_shm, sanitize_domains = wave_options
    results: List[Tuple[str, object]] = []
    stats: Dict[str, object] = {"cache_hits": 0, "attaches": 0}
    for mode_value, op_name, reduce_to_scalar, channels, specs in jobs:
        frames: List[Frame] = []
        for spec_kind, payload in specs:
            if spec_kind == "shm":
                assert isinstance(payload, shm.FrameHandle)
                frame, hit = shm.worker_attach(payload)
                stats["cache_hits" if hit else "attaches"] += 1
                frames.append(frame)
            else:
                assert isinstance(payload, Frame)
                frames.append(payload)
        kind, value = _execute_call(mode_value, op_name,
                                    reduce_to_scalar, channels,
                                    tuple(frames))
        if kind == "frame" and ship_results_shm:
            assert isinstance(value, Frame)
            handle = shm.ship_result(value)
            if handle is not None:
                results.append(("shm", handle))
                continue
        results.append((kind, value))
    if sanitize_domains:
        try:
            from ..analysis import sanitize as _sanitize
            sanitizer = _sanitize.active_sanitizer()
            if sanitizer is not None:
                stats["findings"] = sanitizer.drain()
        except Exception:  # pragma: no cover - sanitizing is advisory
            pass
    return results, stats


@dataclass
class BatchReport:
    """The books of one (or the cumulative run of) scheduled batches."""

    calls: int = 0
    waves: int = 0
    workers: int = 1
    #: Calls executed in worker processes.
    pool_calls: int = 0
    #: Calls executed inline (unresolvable op, a broken pool, or a
    #: failed transport).
    inline_calls: int = 0
    #: Calls the cost model kept in the parent: modeled compute saving
    #: below modeled shipping cost.
    bypass_calls: int = 0
    #: Pool calls whose inputs moved as shared-memory handles.
    shm_calls: int = 0
    #: Pool calls whose inputs were pickled (shm unavailable/broken).
    pickle_calls: int = 0
    #: Grouped submissions (one per worker per wave).
    round_trips: int = 0
    #: Wall seconds registering frames and submitting groups.
    ship_seconds: float = 0.0
    #: Wall seconds executing (inline calls plus waiting on workers).
    compute_seconds: float = 0.0
    #: Wall seconds adopting result segments in the parent.
    gather_seconds: float = 0.0
    #: Worker-resident cache hits / fresh segment attaches.
    worker_cache_hits: int = 0
    worker_cache_attaches: int = 0
    #: Modelled time of the batch on one engine, no overlap (sum model).
    modeled_serial_seconds: float = 0.0
    #: Modelled makespan across ``workers`` engines with the
    #: block_A/block_B overlap model per call.
    modeled_pipelined_seconds: float = 0.0

    @property
    def modeled_speedup(self) -> float:
        """Serial-over-pipelined; 1.0 for an empty report."""
        if self.modeled_pipelined_seconds <= 0.0:
            return 1.0
        return self.modeled_serial_seconds / self.modeled_pipelined_seconds

    def to_dict(self, clock_hz: float = PCI_CLOCK_HZ) -> Dict[str, object]:
        """Schema-conforming books (see ``perf.report``)."""
        return base_report_dict(
            "batch",
            calls=self.calls,
            cycles=self.modeled_pipelined_seconds * clock_hz,
            cache={"worker_hits": self.worker_cache_hits,
                   "worker_attaches": self.worker_cache_attaches},
            shed=0,
            waves=self.waves,
            workers=self.workers,
            pool_calls=self.pool_calls,
            inline_calls=self.inline_calls,
            bypass_calls=self.bypass_calls,
            shm_calls=self.shm_calls,
            pickle_calls=self.pickle_calls,
            round_trips=self.round_trips,
            ship_seconds=self.ship_seconds,
            compute_seconds=self.compute_seconds,
            gather_seconds=self.gather_seconds,
            modeled_serial_seconds=self.modeled_serial_seconds,
            modeled_pipelined_seconds=self.modeled_pipelined_seconds,
            modeled_speedup=self.modeled_speedup,
        )


@dataclass
class ProgramOutcome:
    """Everything a scheduled program run produced."""

    #: Every named plane: the program inputs plus each step's output.
    planes: Dict[str, Frame] = field(default_factory=dict)
    #: Scalar results of reduce steps, keyed by step index.
    scalars: Dict[int, int] = field(default_factory=dict)

    def results(self, program: CallProgram) -> Tuple[Frame, ...]:
        """The program's declared result planes, in order."""
        return tuple(self.planes[name] for name in program.results)


class _PoolResources:
    """The teardown state of one scheduler, held *outside* it.

    ``weakref.finalize`` must not reference the scheduler (that would
    keep it alive forever), so the pool and the plane store live here:
    an abandoned scheduler is collectable, and its finalizer still
    shuts the pool down and unlinks every shared-memory segment --
    whether triggered by ``close()``, garbage collection, or interpreter
    exit.
    """

    __slots__ = ("pool", "store")

    def __init__(self) -> None:
        self.pool: Optional[ProcessPoolExecutor] = None
        self.store: Optional[shm.PlaneStore] = None

    def release(self) -> None:
        pool, self.pool = self.pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        store, self.store = self.store, None
        if store is not None:
            store.close()


class CallScheduler(BatchExecutor):
    """Shards independent AddressLib calls across engine workers.

    The pool is created lazily on the first batched call and survives
    across batches (worker warm-up is paid once).  Any pool failure --
    a worker that cannot start, dies, or cannot unpickle -- flips the
    scheduler into inline mode for the rest of its life: results are
    then computed serially in the parent, still bit-exact, never lost.

    ``transport`` selects the input data path: ``"auto"`` (shared
    memory when available, pickle otherwise), ``"shm"`` (require shared
    memory), ``"pickle"`` (never use shared memory).  ``bypass``
    selects the inline-bypass policy: ``"auto"`` (cost model decides
    per call), ``"never"`` (ship every shippable call), ``"always"``
    (run everything inline in the parent).
    """

    def __init__(self, max_workers: Optional[int] = None,
                 timing: Optional[EngineTimingModel] = None,
                 special_inter_ops: Sequence[str] = (), *,
                 transport: str = "auto", bypass: str = "auto",
                 transport_model: Optional[TransportCostModel] = None,
                 sanitize: Optional[Sequence[str]] = None
                 ) -> None:
        if transport not in ("auto", "shm", "pickle"):
            raise ValueError(f"unknown transport {transport!r}")
        if bypass not in ("auto", "never", "always"):
            raise ValueError(f"unknown bypass policy {bypass!r}")
        if transport == "shm" and not shm.SHARED_MEMORY_AVAILABLE:
            raise ValueError("transport='shm' requires "
                             "multiprocessing.shared_memory")
        if sanitize is None:
            env = os.environ.get("REPRO_SANITIZE", "")
            sanitize = [part.strip() for part in env.split(",")
                        if part.strip()]
        self.sanitize_domains: Tuple[str, ...] = ()
        if sanitize:
            # Lazy: an unsanitized scheduler never imports the
            # sanitizer (or anything under repro.analysis).
            from ..analysis.sanitize import (ensure_sanitizer,
                                             normalize_domains)
            self.sanitize_domains = normalize_domains(sanitize)
            ensure_sanitizer(self.sanitize_domains)
        #: Runtime findings: the parent sanitizer's drained diagnostics
        #: plus every worker's, in collection order.
        self.sanitizer_findings: List["Diagnostic"] = []
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.timing = timing or EngineTimingModel()
        #: Inter ops priced with ``requires_full_frames`` (the modelled
        #: overlap gives them no credit; see section 4.1).
        self.special_inter_ops = frozenset(special_inter_ops)
        self.transport = transport
        self.bypass = bypass
        self.transport_model = transport_model or TransportCostModel()
        self._resources = _PoolResources()
        self._finalizer = weakref.finalize(self, _PoolResources.release,
                                           self._resources)
        self._pool_broken = False
        self._closed = False
        self._cost_model = SoftwareCostModel()
        self._inline_cache: Dict[Tuple, float] = {}
        #: Measured pool round trip (None until the pool is probed).
        self._round_trip_s: Optional[float] = None
        #: Books of the most recent batch.
        self.last_report: Optional[BatchReport] = None
        #: Cumulative books across every batch this scheduler ran.
        self.total = BatchReport(workers=self.max_workers)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory segment.

        Idempotent, and safe from ``__del__``/atexit: teardown runs
        through a ``weakref.finalize`` that holds no reference to the
        scheduler, so an abandoned scheduler cleans up at garbage
        collection or interpreter exit.  A closed scheduler still
        computes batches -- inline, in the parent.
        """
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "CallScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._closed or self._pool_broken or self.max_workers < 2:
            return None
        if self._resources.pool is None:
            try:
                # The initializer drops worker-cache entries inherited
                # over fork(): they belong to the parent's store.
                self._resources.pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_worker_init,
                    initargs=(self.sanitize_domains,))
            except Exception:
                self._pool_broken = True
                return None
        return self._resources.pool

    def _ensure_store(self) -> Optional[shm.PlaneStore]:
        if self.transport == "pickle" or self._closed:
            return None
        store = self._resources.store
        if store is None:
            store = self._resources.store = shm.PlaneStore()
        return None if store.broken else store

    # -- op shipping ----------------------------------------------------------

    @staticmethod
    def _op_token(call: BatchCall) -> Optional[str]:
        """The name a worker can re-resolve to *exactly* ``call.op``.

        Identity (not name) is the test: a custom op that happens to
        share a registry name must not silently run the registry's code
        in a worker.  ``None`` means "execute inline".
        """
        name = call.op.name
        if call.mode is AddressingMode.INTER:
            return name if INTER_OPS.get(name) is call.op else None
        if INTRA_OPS.get(name) is call.op:
            return name
        if name.startswith(_KERNEL_PREFIX):
            base = name[len(_KERNEL_PREFIX):]
            if base in KERNEL_FACTORIES and kernel_by_name(base) is call.op:
                return name
        return None

    @staticmethod
    def _execute_inline(call: BatchCall) -> BatchOutcome:
        if call.mode is AddressingMode.INTER:
            assert isinstance(call.op, InterOp)
            if call.reduce_to_scalar:
                return BatchOutcome(scalar=VectorExecutor.inter_reduce(
                    call.op, call.frames[0], call.frames[1],
                    call.channels))
            return BatchOutcome(frame=VectorExecutor.inter(
                call.op, call.frames[0], call.frames[1], call.channels))
        assert isinstance(call.op, IntraOp)
        return BatchOutcome(frame=VectorExecutor.intra(
            call.op, call.frames[0], call.channels))

    @staticmethod
    def _outcome(kind: str, value: object) -> BatchOutcome:
        if kind == "scalar":
            assert isinstance(value, int)
            return BatchOutcome(scalar=value)
        assert isinstance(value, Frame)
        return BatchOutcome(frame=value)

    # -- modelled timing ------------------------------------------------------

    def _call_costs(self, call: BatchCall) -> Tuple[float, float]:
        """(serial-model, overlap-model) seconds of one call.

        Delegates to the stack's one pricing definition
        (:func:`repro.pool.pricing.call_cost_seconds`); imported lazily
        because the pool package itself builds on this module.
        """
        from ..pool.pricing import call_cost_seconds
        return call_cost_seconds(call, self.timing,
                                 self.special_inter_ops)

    def _modeled_wave(self, calls: Sequence[BatchCall]
                      ) -> Tuple[float, float]:
        """Price one wave: serial sum vs the list-scheduled makespan of
        per-call overlap-model costs across ``max_workers`` engines."""
        serial = 0.0
        costs: List[float] = []
        for call in calls:
            call_serial, call_overlapped = self._call_costs(call)
            serial += call_serial
            costs.append(call_overlapped)
        return serial, list_scheduled_makespan(costs, self.max_workers)

    # -- transport cost model -------------------------------------------------

    @property
    def _effective_workers(self) -> int:
        """Workers that can actually run concurrently on this host."""
        return min(self.max_workers, os.cpu_count() or 1)

    def _measured_round_trip(self, pool: ProcessPoolExecutor) -> float:
        """The pool's fixed submission cost, measured once.

        The first probe absorbs worker process start-up; only the
        second is timed.  A failed probe marks the pool broken and
        answers the model default.
        """
        if self._round_trip_s is None:
            try:
                pool.submit(_noop).result(timeout=60)
                start = time.perf_counter()
                pool.submit(_noop).result(timeout=60)
                self._round_trip_s = max(
                    time.perf_counter() - start, 1e-5)
            except Exception:
                self._pool_broken = True
                self._round_trip_s = self.transport_model.round_trip_s
        return self._round_trip_s

    def _inline_seconds(self, call: BatchCall) -> float:
        """Modeled parent-side execution time of one call (cached by
        call shape -- only registry ops reach this, so the op name is
        an exact identity)."""
        fmt = call.fmt
        key = (call.mode.value, call.op.name, fmt.name, fmt.width,
               fmt.height, call.channels, call.reduce_to_scalar)
        cached = self._inline_cache.get(key)
        if cached is None:
            if call.mode is AddressingMode.INTER:
                assert isinstance(call.op, InterOp)
                profile = self._cost_model.inter_profile(
                    call.op, fmt, call.channels)
            else:
                assert isinstance(call.op, IntraOp)
                profile = self._cost_model.intra_profile(
                    call.op, fmt, call.channels)
            cached = self.transport_model.inline_seconds(
                profile.total_instructions)
            self._inline_cache[key] = cached
        return cached

    def _ship_seconds(self, call: BatchCall, amortized_calls: int,
                      round_trip_s: float) -> float:
        """Modeled cost of shipping ``call`` to a worker and back."""
        store = self._resources.store
        zero_copy = (self.transport != "pickle"
                     and shm.SHARED_MEMORY_AVAILABLE
                     and (store is None or not store.broken))
        moved_frames = len(call.frames) + (0 if call.reduce_to_scalar
                                           else 1)
        payload = (0 if zero_copy
                   else shm.frame_payload_bytes(call.fmt) * moved_frames)
        return self.transport_model.ship_seconds(
            payload, moved_frames, zero_copy,
            amortized_calls=amortized_calls, round_trip_s=round_trip_s)

    def _should_bypass(self, call: BatchCall, amortized_calls: int,
                       round_trip_s: float) -> bool:
        """Inline when shipping cannot pay for itself.

        Shipping a call buys at most the fraction of its compute the
        other workers absorb (``1 - 1/effective_workers``); if that
        saving is below the modeled shipping cost, keep the call in
        the parent.
        """
        effective = self._effective_workers
        if effective < 2:
            return True
        saving = self._inline_seconds(call) * (1.0 - 1.0 / effective)
        return saving <= self._ship_seconds(call, amortized_calls,
                                            round_trip_s)

    # -- batch execution ------------------------------------------------------

    def compute_batch(self,
                      calls: Sequence[BatchCall]) -> List[BatchOutcome]:
        """Execute one wave of independent calls; outcomes in order.

        Four phases, each timed into the report: *plan* (op tokens and
        bypass decisions), *ship* (register frames, one grouped
        submission per worker), *compute* (inline calls plus waiting on
        workers, with whole-group inline fallback on any pool failure),
        *gather* (adopt shared-memory results).
        """
        calls = list(calls)
        outcomes: List[Optional[BatchOutcome]] = [None] * len(calls)
        report = BatchReport(calls=len(calls), waves=1,
                             workers=self.max_workers)

        observer = shm.get_transport_observer()
        if observer is not None:
            observer.wave_opened()
        tokens = [self._op_token(call) for call in calls]
        pool = self._ensure_pool() if len(calls) > 1 else None
        shipped, bypassed = self._plan(calls, tokens, pool, report)
        shipped_set: Set[int] = set(shipped)

        # Ship: register every distinct frame once, submit one grouped
        # job list per worker.
        groups: List[Tuple[List[int], List[str], Optional[Future]]] = []
        if shipped:
            start = time.perf_counter()
            groups = self._ship(calls, tokens, shipped, pool, report)
            report.ship_seconds = time.perf_counter() - start

        # Compute: inline work runs while the workers chew on theirs;
        # then collect each group, falling back inline group-wise.
        start = time.perf_counter()
        for index, call in enumerate(calls):
            if index in shipped_set:
                continue
            outcomes[index] = self._execute_inline(call)
            if index in bypassed:
                report.bypass_calls += 1
            else:
                report.inline_calls += 1
        collected = []
        for indices, transports, future in groups:
            items = self._collect(future, report)
            if items is None or len(items) != len(indices):
                self._pool_broken = True
                for index in indices:
                    outcomes[index] = self._execute_inline(calls[index])
                    report.inline_calls += 1
                continue
            collected.append((indices, transports, items))
        report.compute_seconds = time.perf_counter() - start

        # Gather: adopt shared-memory results as zero-copy frames.
        start = time.perf_counter()
        store = self._resources.store
        for indices, transports, items in collected:
            for index, transport, (kind, value) in zip(
                    indices, transports, items):
                if kind == "shm":
                    assert isinstance(value, shm.ResultHandle)
                    frame = (store.adopt_result(value)
                             if store is not None else None)
                    if frame is None:
                        outcomes[index] = self._execute_inline(
                            calls[index])
                        report.inline_calls += 1
                        continue
                    outcomes[index] = BatchOutcome(frame=frame)
                else:
                    outcomes[index] = self._outcome(kind, value)
                report.pool_calls += 1
                if transport == "shm":
                    report.shm_calls += 1
                else:
                    report.pickle_calls += 1
        report.gather_seconds = time.perf_counter() - start

        serial, pipelined = self._modeled_wave(calls)
        report.modeled_serial_seconds = serial
        report.modeled_pipelined_seconds = pipelined
        self._account(report)
        if observer is not None:
            observer.wave_closed()
        if self.sanitize_domains:
            from ..analysis import sanitize as _sanitize
            sanitizer = _sanitize.active_sanitizer()
            if sanitizer is not None:
                self.sanitizer_findings.extend(sanitizer.drain())
        assert all(outcome is not None for outcome in outcomes)
        return [outcome for outcome in outcomes if outcome is not None]

    def _plan(self, calls: Sequence[BatchCall],
              tokens: Sequence[Optional[str]],
              pool: Optional[ProcessPoolExecutor],
              report: BatchReport) -> Tuple[List[int], Set[int]]:
        """Split the wave into shipped and bypassed call indices.

        Calls without a pool or a registry token are neither: they run
        inline unconditionally (counted as ``inline_calls``).
        """
        candidates = [index for index, token in enumerate(tokens)
                      if token is not None and pool is not None]
        if not candidates:
            return [], set()
        if self.bypass == "always":
            return [], set(candidates)
        if self.bypass == "never":
            return candidates, set()
        if self._effective_workers < 2:
            # Nothing can run concurrently: shipping only adds cost.
            return [], set(candidates)
        assert pool is not None
        round_trip = self._measured_round_trip(pool)
        if self._pool_broken:
            return [], set(candidates)
        groups = min(self.max_workers, len(candidates))
        amortized = max(1, -(-len(candidates) // groups))
        shipped, bypassed = [], set()
        for index in candidates:
            if self._should_bypass(calls[index], amortized, round_trip):
                bypassed.add(index)
            else:
                shipped.append(index)
        return shipped, bypassed

    def _ship(self, calls: Sequence[BatchCall],
              tokens: Sequence[Optional[str]], shipped: List[int],
              pool: Optional[ProcessPoolExecutor], report: BatchReport
              ) -> List[Tuple[List[int], List[str], Optional[Future]]]:
        """Register input frames and submit one job group per worker."""
        store = self._ensure_store()
        observer = shm.get_transport_observer()
        groups = []
        for indices in self._group_by_worker(shipped, calls):
            jobs: List[_Job] = []
            transports: List[str] = []
            for index in indices:
                call = calls[index]
                specs = []
                for frame in call.frames:
                    handle = (store.register(frame)
                              if store is not None else None)
                    if handle is not None:
                        if observer is not None:
                            observer.handle_shipped(handle)
                        specs.append(("shm", handle))
                    else:
                        specs.append(("pickle", frame))
                transports.append(
                    "shm" if all(k == "shm" for k, _ in specs)
                    else "pickle")
                token = tokens[index]
                assert token is not None
                jobs.append((call.mode.value, token,
                             call.reduce_to_scalar, call.channels,
                             tuple(specs)))
            ship_results = store is not None and not store.broken
            wave_options: _WaveOptions = (ship_results,
                                          self.sanitize_domains)
            future: Optional[Future] = None
            try:
                assert pool is not None
                future = pool.submit(_execute_wave, jobs, wave_options)
                report.round_trips += 1
            except Exception:
                self._pool_broken = True
            groups.append((list(indices), transports, future))
        return groups

    def _group_by_worker(self, indices: List[int],
                         calls: Sequence[BatchCall]) -> List[List[int]]:
        """Deterministic LPT grouping of the shipped calls onto at most
        ``max_workers`` groups -- one submission (round trip) each.

        Costs come from the overlap timing model (the same figures the
        modelled makespan uses); ties break on submission index, so the
        grouping is stable across runs.
        """
        n_groups = min(self.max_workers, len(indices))
        if n_groups <= 1:
            return [list(indices)]
        ranked = sorted(((self._call_costs(calls[i])[1], i)
                         for i in indices),
                        key=lambda pair: (-pair[0], pair[1]))
        loads = [0.0] * n_groups
        groups: List[List[int]] = [[] for _ in range(n_groups)]
        for cost, index in ranked:
            slot = min(range(n_groups), key=lambda g: (loads[g], g))
            loads[slot] += cost
            groups[slot].append(index)
        for group in groups:
            group.sort()
        return [group for group in groups if group]

    def _collect(self, future: Optional[Future], report: BatchReport
                 ) -> Optional[List[Tuple[str, object]]]:
        """One group's results, or ``None`` after any pool failure."""
        if future is None:
            return None
        try:
            items, stats = future.result()
        except Exception:
            # Worker died or the payload would not round-trip:
            # recompute inline, flag the pool, keep the batch whole.
            self._pool_broken = True
            return None
        hits = stats.get("cache_hits", 0)
        attaches = stats.get("attaches", 0)
        report.worker_cache_hits += hits if isinstance(hits, int) else 0
        report.worker_cache_attaches += (attaches
                                         if isinstance(attaches, int)
                                         else 0)
        findings = stats.get("findings")
        if isinstance(findings, list):
            self.sanitizer_findings.extend(findings)
        return items

    def _account(self, report: BatchReport) -> None:
        self.last_report = report
        self.total.calls += report.calls
        self.total.waves += report.waves
        self.total.pool_calls += report.pool_calls
        self.total.inline_calls += report.inline_calls
        self.total.bypass_calls += report.bypass_calls
        self.total.shm_calls += report.shm_calls
        self.total.pickle_calls += report.pickle_calls
        self.total.round_trips += report.round_trips
        self.total.ship_seconds += report.ship_seconds
        self.total.compute_seconds += report.compute_seconds
        self.total.gather_seconds += report.gather_seconds
        self.total.worker_cache_hits += report.worker_cache_hits
        self.total.worker_cache_attaches += report.worker_cache_attaches
        self.total.modeled_serial_seconds += report.modeled_serial_seconds
        self.total.modeled_pipelined_seconds += (
            report.modeled_pipelined_seconds)

    def transport_stats(self) -> Dict[str, object]:
        """The transport books: scheduler counters plus store state."""
        store = self._resources.store
        return {
            "transport": self.transport,
            "bypass": self.bypass,
            "round_trip_s": self._round_trip_s,
            "round_trips": self.total.round_trips,
            "pool_calls": self.total.pool_calls,
            "inline_calls": self.total.inline_calls,
            "bypass_calls": self.total.bypass_calls,
            "shm_calls": self.total.shm_calls,
            "pickle_calls": self.total.pickle_calls,
            "worker_cache_hits": self.total.worker_cache_hits,
            "worker_cache_attaches": self.total.worker_cache_attaches,
            "store": store.stats() if store is not None else {},
        }

    # -- whole-program execution ----------------------------------------------

    @staticmethod
    def _step_call(step: ProgramStep,
                   planes: Dict[str, Frame]) -> BatchCall:
        try:
            frames = tuple(planes[name] for name in step.inputs)
        except KeyError as missing:
            raise ValueError(
                f"program step {step.index} reads undefined plane "
                f"{missing.args[0]!r}") from None
        return BatchCall(mode=step.mode, op=step.op, frames=frames,
                         channels=step.channels,
                         reduce_to_scalar=step.reduce_to_scalar)

    def run_program(self, program: CallProgram,
                    inputs: Sequence[Frame]) -> ProgramOutcome:
        """Execute a whole call program, wavefront by wavefront.

        Steps inside one dependency level are mutually independent (the
        RAW/WAW/WAR edges of
        :func:`~repro.addresslib.program.dependency_edges` all cross
        levels), so each level is one :meth:`compute_batch` wave.
        Results are bit-exact with executing the steps in program order.
        """
        if len(inputs) != len(program.inputs):
            raise ValueError(
                f"program {program.name!r} takes {len(program.inputs)} "
                f"inputs, got {len(inputs)}")
        outcome = ProgramOutcome(
            planes=dict(zip(program.inputs, inputs)))
        for level in dependency_levels(program):
            steps = [program.steps[index] for index in level]
            batch = [self._step_call(step, outcome.planes)
                     for step in steps]
            results = self.compute_batch(batch)
            for step, result in zip(steps, results):
                if step.reduce_to_scalar:
                    assert result.scalar is not None
                    outcome.scalars[step.index] = result.scalar
                else:
                    assert result.frame is not None
                    if step.output is not None:
                        outcome.planes[step.output] = result.frame
        return outcome
