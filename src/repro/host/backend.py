"""The AddressLib backend that offloads calls to the AddressEngine.

Swapping :class:`EngineBackend` for the default software backend is the
paper's deployment model: the application's top level stays untouched on
the host, and every AddressLib inter/intra call crosses the PCI bus to
the board.  Segment and segment-indexed addressing are not offloaded (v1
hardware limitation), so :class:`~repro.addresslib.library.AddressLib`
routes those to its software fallback automatically.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..addresslib.addressing import AddressingMode
from ..addresslib.library import Backend, BatchCall, CallRecord
from ..addresslib.ops import ChannelSet, InterOp, IntraOp
from ..core.config import EngineConfig, inter_config, intra_config
from ..image.frame import Frame
from .driver import AddressEngineDriver, FrameResidencyCache


class EngineBackend(Backend):
    """Executes inter/intra AddressLib calls on the coprocessor model.

    With ``chain_frames=True`` the backend exploits the on-board memory
    between calls: an input that is still resident in its ZBT banks from
    the previous call ships no PCI transfer, and the previous call's
    *result* can be reused as an input for a cheap on-board copy instead
    of a round trip through the host.  (The paper keeps the images on
    the board per call only; chaining is the natural extension its
    "replace the PCI with an on-chip bus" outlook gestures at.)
    """

    name = "address_engine"
    can_record_batches = True

    def __init__(self, driver: Optional[AddressEngineDriver] = None,
                 special_inter_ops: Tuple[str, ...] = (),
                 chain_frames: bool = False,
                 residency_max_age: Optional[int] = None) -> None:
        self.driver = driver or AddressEngineDriver()
        #: Names of inter ops that must wait for both frames on the board
        #: (section 4.1's "special inter operations").
        self.special_inter_ops = frozenset(special_inter_ops)
        self.chain_frames = chain_frames
        #: On-board state between calls (strong-referenced frames).
        self.residency = FrameResidencyCache(max_age=residency_max_age)

    def supports(self, mode: AddressingMode) -> bool:
        return mode.engine_supported_v1

    # -- residency tracking ---------------------------------------------------

    def _residency(self, config, frames):
        """Which inputs are already on the board, and the copy cost of
        reusing the previous result as an input."""
        if not self.chain_frames:
            return [False] * len(frames), 0
        return self.residency.plan(config, frames)

    def _after_call(self, config, frames, result_frame) -> None:
        if not self.chain_frames:
            return
        self.residency.record_call(config, frames, result_frame)

    def _submit(self, config, frames):
        resident, copy_cycles = self._residency(config, frames)
        can_simulate_residency = copy_cycles == 0
        if self.driver.simulate and not can_simulate_residency:
            # The cycle model has no result-to-input mover; ship instead.
            resident = [False] * len(frames)
        result = self.driver.submit(config, *frames, resident=resident,
                                    onboard_copy_cycles=copy_cycles)
        self._after_call(config, frames, result.frame)
        record = self._record(config, result)
        record.extra["resident_inputs"] = float(sum(resident))
        return result, record

    # -- call execution -------------------------------------------------------

    def inter(self, op: InterOp, frame_a: Frame, frame_b: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        config = inter_config(
            op, frame_a.format, channels,
            requires_full_frames=op.name in self.special_inter_ops)
        result, record = self._submit(config, [frame_a, frame_b])
        assert result.frame is not None
        return result.frame, record

    def intra(self, op: IntraOp, frame: Frame,
              channels: ChannelSet) -> Tuple[Frame, CallRecord]:
        config = intra_config(op, frame.format, channels)
        result, record = self._submit(config, [frame])
        assert result.frame is not None
        return result.frame, record

    def inter_reduce(self, op: InterOp, frame_a: Frame, frame_b: Frame,
                     channels: ChannelSet) -> Tuple[int, CallRecord]:
        config = inter_config(
            op, frame_a.format, channels, reduce_to_scalar=True,
            requires_full_frames=op.name in self.special_inter_ops)
        result, record = self._submit(config, [frame_a, frame_b])
        assert result.scalar is not None
        return result.scalar, record

    # -- batched (scheduler-executed) calls -----------------------------------

    def begin_parallel_wave(self) -> None:
        """Concurrent calls leave the bank state undefined: drop it."""
        if self.chain_frames:
            self.residency.invalidate()

    def _config_for(self, call: BatchCall) -> EngineConfig:
        """The engine configuration a serial submission would build."""
        if call.mode is AddressingMode.INTER:
            assert isinstance(call.op, InterOp)
            return inter_config(
                call.op, call.fmt, call.channels,
                reduce_to_scalar=call.reduce_to_scalar,
                requires_full_frames=(call.op.name
                                      in self.special_inter_ops))
        assert isinstance(call.op, IntraOp)
        return intra_config(call.op, call.fmt, call.channels)

    def batch_record(self, call: BatchCall) -> CallRecord:
        """Price and book one scheduler-executed call.

        The functional result was computed in a worker; the board cost
        comes from the same :meth:`~AddressEngineDriver.price_call`
        arithmetic a serial :meth:`~AddressEngineDriver.submit` uses.
        Batched calls never claim residency (the wave invalidated it).
        """
        config = self._config_for(call)
        price = self.driver.price_call(config)
        self.driver.account_scheduled(price)
        record = self._base_record(
            config, price.call_seconds, price.board_seconds,
            price.pci_words)
        record.extra["resident_inputs"] = 0.0
        return record

    # -- accounting -----------------------------------------------------------

    @staticmethod
    def _base_record(config: EngineConfig, call_seconds: float,
                     board_seconds: float, pci_words: int) -> CallRecord:
        extra = {
            "call_seconds": call_seconds,
            "board_seconds": board_seconds,
            "pci_words": float(pci_words),
        }
        return CallRecord(
            mode=config.mode,
            op_name=config.op_name
            + ("+reduce" if config.reduce_to_scalar else ""),
            channels=config.channels, format_name=config.fmt.name,
            pixels=config.fmt.pixels, profile=None, extra=extra)

    @staticmethod
    def _record(config: EngineConfig, result) -> CallRecord:
        record = EngineBackend._base_record(
            config, result.call_seconds, result.board_seconds,
            result.pci_words)
        if result.run is not None:
            record.extra["cycles"] = float(result.run.cycles)
            record.extra["zbt_pixel_ops"] = float(result.run.zbt_pixel_ops)
        return record
